//! End-to-end fault tolerance: the subsystems (checksummed storage, fault
//! injection + retry, checkpoint/resume, graceful degradation) composed
//! through the full mining pipeline on generated data.

use negassoc::config::MinerConfig;
use negassoc::NegativeMiner;
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets};
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::fault::{
    FaultPlan, FaultySource, RetryPolicy, RetryingSource, SourceFault, SourceFaultKind,
};
use negassoc_txdb::{binfmt, TransactionDb};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique temp path, removed (file or directory) on drop so panicking
/// tests leak nothing and parallel runs never collide.
struct TmpPath(PathBuf);

impl TmpPath {
    fn new(name: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!("negassoc-ft-{}-{n}-{name}", std::process::id())))
    }
}

impl Drop for TmpPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scenario() -> (Taxonomy, TransactionDb) {
    let ds = generate(&presets::scaled(presets::short(), 400));
    (ds.taxonomy, ds.db)
}

fn config() -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(0.04),
        min_ri: 0.4,
        max_negative_size: Some(2),
        ..MinerConfig::default()
    }
}

/// Rules as comparable tuples (bitwise on the floats: the runs under test
/// must be *identical*, not merely close).
fn rule_keys(out: &negassoc::MiningOutcome) -> Vec<(Vec<ItemId>, Vec<ItemId>, u64, u64)> {
    let mut keys: Vec<_> = out
        .rules
        .iter()
        .map(|r| {
            (
                r.antecedent.items().to_vec(),
                r.consequent.items().to_vec(),
                r.ri.to_bits(),
                r.actual,
            )
        })
        .collect();
    keys.sort();
    keys
}

#[test]
fn transient_faults_healed_by_retry_leave_results_unchanged() {
    let (tax, db) = scenario();
    let miner = NegativeMiner::new(config());
    let clean = miner.mine(&db, &tax).unwrap();

    // Four deterministic transient failures spread over the first passes;
    // the retrying wrapper re-drives each failed pass with exactly-once
    // delivery, so the miner never notices.
    let plan = FaultPlan::seeded_transient(0xFA57, 6, db.len().max(1) as u64, 4);
    let n_faults = plan.len() as u32;
    let faulty = FaultySource::new(&db, plan);
    let retrying = RetryingSource::new(faulty, RetryPolicy::new(n_faults, Duration::ZERO));
    let healed = miner.mine(&retrying, &tax).unwrap();

    assert!(retrying.retries_used() > 0, "the plan must actually fire");
    assert_eq!(rule_keys(&healed), rule_keys(&clean));
}

#[test]
fn interrupted_run_resumes_from_checkpoints_with_identical_results() {
    let (tax, db) = scenario();
    let miner = NegativeMiner::new(config());
    let clean = miner.mine(&db, &tax).unwrap();

    let dir = TmpPath::new("ckpt");
    // First attempt dies on a permanent fault partway through mining.
    let plan = FaultPlan::new(vec![SourceFault {
        pass: 2,
        at_transaction: 10,
        kind: SourceFaultKind::PermanentError,
    }]);
    let faulty = FaultySource::new(&db, plan);
    miner
        .mine_with_recovery(&faulty, &tax, None, &dir.0)
        .unwrap_err();
    let leftover = std::fs::read_dir(&dir.0).unwrap().count();
    assert!(leftover > 0, "the failed run must leave checkpoints behind");

    // Second attempt resumes from the surviving checkpoints and must be
    // indistinguishable from the uninterrupted run.
    let resumed = miner.mine_with_recovery(&db, &tax, None, &dir.0).unwrap();
    assert_eq!(rule_keys(&resumed), rule_keys(&clean));
    // Success clears the checkpoints.
    assert_eq!(std::fs::read_dir(&dir.0).unwrap().count(), 0);
}

#[test]
fn corrupted_storage_fails_strictly_and_salvages_a_certified_subset() {
    let (tax, db) = scenario();
    let file = TmpPath::new("db.nadb");
    binfmt::save(&db, &file.0).unwrap();

    // Corrupt one payload byte in the middle of the file.
    let mut bytes = std::fs::read(&file.0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&file.0, &bytes).unwrap();

    // Strict load refuses.
    let err = binfmt::load(&file.0).unwrap_err();
    assert!(
        err.get_ref()
            .is_some_and(|e| e.downcast_ref::<binfmt::CorruptBlock>().is_some()),
        "strict failure must carry the corrupt-block report, got: {err}"
    );

    // Salvage recovers the intact blocks, reports the losses exactly, and
    // the recovered subset is still minable.
    let (salvaged, report) = binfmt::load_salvage(&file.0).unwrap();
    assert!(!report.is_clean());
    assert_eq!(
        report.recovered + report.lost_transactions(),
        db.len() as u64
    );
    assert_eq!(salvaged.len() as u64, report.recovered);
    NegativeMiner::new(config()).mine(&salvaged, &tax).unwrap();
}

#[test]
fn memory_budget_degrades_gracefully_instead_of_growing_unbounded() {
    let (tax, db) = scenario();
    let clean = NegativeMiner::new(config()).mine(&db, &tax).unwrap();

    // A budget too small for the level-wise candidate sets: the driver
    // must fall back to the partitioned path and still produce identical
    // results from this in-memory database.
    let budgeted = NegativeMiner::new(MinerConfig {
        memory_budget: Some(64 << 10),
        ..config()
    })
    .mine(&db, &tax);
    match budgeted {
        Ok(out) => assert_eq!(rule_keys(&out), rule_keys(&clean)),
        // A budget that even the degraded path cannot honor must surface
        // as the typed budget error, never an abort.
        Err(negassoc::Error::Budget(msg)) => {
            assert!(msg.contains("budget"), "{msg}");
        }
        Err(other) => panic!("unexpected error kind: {other}"),
    }
}
