//! End-to-end reproduction of the paper's worked example (§2.1.3,
//! Tables 1–2, Figure 2 taxonomy).
//!
//! Supports are injected exactly as published (with the Evian/Perrier
//! correction derived in DESIGN.md: Table 2's expected supports force
//! sup(Evian) = 12,000 and sup(Perrier) = 8,000 under the paper's own
//! formula). MinSup = 4,000.
//!
//! Checks:
//! * the two Perrier candidates of Table 2 are generated with exactly the
//!   published expected supports (4,000 / 2,000);
//! * {Bryers, Evian} and {Healthy Choice, Evian} are *excluded* (already
//!   large), as the paper states;
//! * with the published actual supports, the only negative itemset is
//!   {Bryers, Perrier};
//! * the only rule is `Perrier ≠> Bryers` (the paper's conclusion); the RI
//!   at which it fires is 3,500/8,000 = 0.4375 under the corrected
//!   supports, so the test uses MinRI = 0.4 (see DESIGN.md).

use negassoc::candidates::{CandidateGenerator, CandidateSet};
use negassoc::expected::is_negative;
use negassoc::rules::generate_negative_rules;
use negassoc::NegativeItemset;
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};

struct Example {
    tax: Taxonomy,
    large: LargeItemsets,
    bryers: ItemId,
    healthy_choice: ItemId,
    evian: ItemId,
    perrier: ItemId,
}

const MIN_SUP: u64 = 4_000;
const MIN_RI: f64 = 0.5;

fn build() -> Example {
    // Figure 2: beverages -> {bottled water -> {Evian, Perrier}, bottled
    // juices}; desserts -> {frozen yogurt -> {Bryers, Healthy Choice},
    // ice creams}. (The carbonated/non-carbonated upper levels don't
    // matter for the example.)
    let mut b = TaxonomyBuilder::new();
    let beverages = b.add_root("beverages");
    let water = b.add_child(beverages, "bottled water").unwrap();
    let perrier = b.add_child(water, "Perrier").unwrap();
    let evian = b.add_child(water, "Evian").unwrap();
    b.add_child(beverages, "bottled juices").unwrap();
    let desserts = b.add_root("desserts");
    let yogurt = b.add_child(desserts, "frozen yogurt").unwrap();
    let bryers = b.add_child(yogurt, "Bryers").unwrap();
    let healthy_choice = b.add_child(yogurt, "Healthy Choice").unwrap();
    b.add_child(desserts, "ice creams").unwrap();
    let tax = b.build();

    // Table 1 supports (absolute), with the DESIGN.md correction for the
    // water brands.
    let mut large = LargeItemsets::new(1_000_000, MIN_SUP);
    large.insert(Itemset::singleton(bryers), 20_000);
    large.insert(Itemset::singleton(healthy_choice), 10_000);
    large.insert(Itemset::singleton(evian), 12_000);
    large.insert(Itemset::singleton(perrier), 8_000);
    large.insert(Itemset::singleton(yogurt), 30_000);
    large.insert(Itemset::singleton(water), 20_000);
    large.insert(Itemset::from_unsorted(vec![yogurt, water]), 15_000);
    // The two brand pairs the paper says "will already be found to be
    // large" (actual supports from Table 2).
    large.insert(Itemset::from_unsorted(vec![bryers, evian]), 7_500);
    large.insert(Itemset::from_unsorted(vec![healthy_choice, evian]), 4_200);

    Example {
        tax,
        large,
        bryers,
        healthy_choice,
        evian,
        perrier,
    }
}

fn candidates(ex: &Example) -> Vec<(Itemset, f64)> {
    // The paper's Table 2 derives every candidate from the single large
    // itemset {frozen yogurt, bottled water}; seed exactly that (the large
    // brand pairs would otherwise contribute additional sibling-derived
    // expectations and the max would win).
    let generator = CandidateGenerator::new(&ex.tax, &ex.large, MIN_RI);
    let mut set = CandidateSet::new();
    let seed = Itemset::from_unsorted(vec![
        ex.tax.id_of("frozen yogurt").unwrap(),
        ex.tax.id_of("bottled water").unwrap(),
    ]);
    let support = ex.large.support_of_set(&seed).unwrap();
    generator
        .extend_from_itemset(&seed, support, &mut set)
        .unwrap();
    let (cands, _) = set.into_candidates();
    cands.into_iter().map(|c| (c.itemset, c.expected)).collect()
}

fn expected_of(cands: &[(Itemset, f64)], a: ItemId, b: ItemId) -> Option<f64> {
    let want = Itemset::from_unsorted(vec![a, b]);
    cands.iter().find(|(s, _)| *s == want).map(|(_, e)| *e)
}

#[test]
fn table2_expected_supports() {
    let ex = build();
    let cands = candidates(&ex);

    // The two Perrier pairs are candidates with the published expectations.
    let bp = expected_of(&cands, ex.bryers, ex.perrier).expect("{Bryers, Perrier} candidate");
    assert!((bp - 4_000.0).abs() < 1e-9, "Bryers&Perrier E = {bp}");
    let hp = expected_of(&cands, ex.healthy_choice, ex.perrier)
        .expect("{Healthy Choice, Perrier} candidate");
    assert!((hp - 2_000.0).abs() < 1e-9, "HC&Perrier E = {hp}");

    // The Evian pairs are already large -> not candidates (paper text).
    assert!(expected_of(&cands, ex.bryers, ex.evian).is_none());
    assert!(expected_of(&cands, ex.healthy_choice, ex.evian).is_none());

    // Had they not been large, their expectations would be 6,000 and
    // 3,000; verify through the formula module directly.
    use negassoc::expected::{expected_support, Ratio};
    let be = expected_support(
        15_000,
        &[
            Ratio {
                new_support: 20_000,
                base_support: 30_000,
            },
            Ratio {
                new_support: 12_000,
                base_support: 20_000,
            },
        ],
    );
    assert!((be.unwrap() - 6_000.0).abs() < 1e-9);
    let he = expected_support(
        15_000,
        &[
            Ratio {
                new_support: 10_000,
                base_support: 30_000,
            },
            Ratio {
                new_support: 12_000,
                base_support: 20_000,
            },
        ],
    );
    assert!((he.unwrap() - 3_000.0).abs() < 1e-9);
}

#[test]
fn only_bryers_perrier_is_negative() {
    let ex = build();
    // Table 2 actual supports.
    let actuals = [
        (vec![ex.bryers, ex.perrier], 4_000.0, 500u64),
        (vec![ex.healthy_choice, ex.perrier], 2_000.0, 2_500),
    ];
    let mut negatives = Vec::new();
    for (items, expected, actual) in actuals {
        if is_negative(expected, actual, MIN_SUP, MIN_RI) {
            negatives.push(NegativeItemset {
                itemset: Itemset::from_unsorted(items),
                expected,
                actual,
                derivation: None,
            });
        }
    }
    assert_eq!(negatives.len(), 1);
    assert_eq!(
        negatives[0].itemset,
        Itemset::from_unsorted(vec![ex.bryers, ex.perrier])
    );
    // Deviation 3,500 >= MinSup·MinRI = 2,000.
    assert!((negatives[0].expected - negatives[0].actual as f64 - 3_500.0).abs() < 1e-9);
}

#[test]
fn only_rule_is_perrier_implies_not_bryers() {
    let ex = build();
    let negatives = vec![NegativeItemset {
        itemset: Itemset::from_unsorted(vec![ex.bryers, ex.perrier]),
        expected: 4_000.0,
        actual: 500,
        derivation: None,
    }];
    // Under the corrected Table 1 supports the rule's RI is
    // 3,500 / 8,000 = 0.4375 (see the module docs), so mine at 0.4.
    let rules = generate_negative_rules(&negatives, &ex.large, 0.4).unwrap();
    assert_eq!(rules.len(), 1, "{rules:?}");
    let r = &rules[0];
    assert_eq!(r.antecedent, Itemset::singleton(ex.perrier));
    assert_eq!(r.consequent, Itemset::singleton(ex.bryers));
    assert!((r.ri - 0.4375).abs() < 1e-12);

    // The reverse direction (Bryers ≠> Perrier) has RI 0.175 and never
    // fires, matching the paper's "the only negative association rule will
    // be Perrier ≠> Bryers".
    let loose = generate_negative_rules(&negatives, &ex.large, 0.2).unwrap();
    assert_eq!(loose.len(), 1);
    assert_eq!(loose[0].antecedent, Itemset::singleton(ex.perrier));
}
