//! Semantic invariants of the full pipeline on generated data: everything
//! the problem statement (§2) promises about the output is re-verified
//! against brute-force counting.

use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets};
use negassoc_taxonomy::ItemId;
use negassoc_txdb::TransactionDb;

/// Brute-force generalized support: a transaction supports the itemset
/// when every member is contained directly or via a descendant.
fn gen_support(db: &TransactionDb, tax: &negassoc_taxonomy::Taxonomy, items: &[ItemId]) -> u64 {
    db.iter()
        .filter(|t| {
            items.iter().all(|&m| {
                t.items()
                    .iter()
                    .any(|&it| it == m || tax.is_ancestor(m, it))
            })
        })
        .count() as u64
}

#[test]
fn mined_output_satisfies_problem_statement() {
    let ds = generate(&presets::scaled(presets::short(), 800));
    let min_ri = 0.35;
    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.03),
        min_ri,
        ..MinerConfig::default()
    };
    let out = NegativeMiner::new(config)
        .mine(&ds.db, &ds.taxonomy)
        .unwrap();
    let minsup = out.large.min_support_count();
    let threshold = minsup as f64 * min_ri;

    // Large itemsets: supports exact, all above MinSup.
    for (set, sup) in out.large.iter() {
        assert!(sup >= minsup);
        assert_eq!(
            sup,
            gen_support(&ds.db, &ds.taxonomy, set.items()),
            "{set:?}"
        );
    }

    // Negative itemsets: actual support exact; deviation over threshold;
    // expected support over threshold; every 1-item large; no
    // ancestor/descendant pairs; not large.
    assert!(!out.negatives.is_empty(), "scenario should find negatives");
    for n in &out.negatives {
        assert_eq!(
            n.actual,
            gen_support(&ds.db, &ds.taxonomy, n.itemset.items()),
            "{:?}",
            n.itemset
        );
        assert!(n.expected - n.actual as f64 >= threshold);
        assert!(n.expected >= threshold);
        assert!(!out.large.contains(&n.itemset));
        for &item in n.itemset.items() {
            assert!(out.large.support_of(&[item]).is_some());
        }
        for (i, &a) in n.itemset.items().iter().enumerate() {
            for &b in &n.itemset.items()[i + 1..] {
                assert!(!ds.taxonomy.related(a, b), "{:?}", n.itemset);
            }
        }
        // Provenance: the expectation's seed is a large itemset of the same
        // size with the recorded support.
        let d = n
            .derivation
            .as_ref()
            .expect("miner output carries provenance");
        assert_eq!(d.seed.len(), n.itemset.len());
        assert_eq!(out.large.support_of_set(&d.seed), Some(d.seed_support));
    }

    // Rules: RI arithmetic, threshold, largeness and disjointness.
    assert!(!out.rules.is_empty());
    for r in &out.rules {
        let asup = out
            .large
            .support_of_set(&r.antecedent)
            .expect("antecedent must be large");
        assert!(out.large.support_of_set(&r.consequent).is_some());
        let want_ri = (r.expected - r.actual as f64) / asup as f64;
        assert!((r.ri - want_ri).abs() < 1e-9);
        assert!(r.ri >= min_ri);
        assert_eq!(r.antecedent.minus(&r.consequent), r.antecedent);
        // The union is one of the negative itemsets.
        let union = r.antecedent.union(&r.consequent);
        assert!(out.negatives.iter().any(|n| n.itemset == union));
    }
}

#[test]
fn tighter_thresholds_are_monotone() {
    let ds = generate(&presets::scaled(presets::short(), 800));
    let mine = |min_sup: f64, min_ri: f64| {
        NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(min_sup),
            min_ri,
            ..MinerConfig::default()
        })
        .mine(&ds.db, &ds.taxonomy)
        .unwrap()
    };
    let loose = mine(0.03, 0.3);
    let tight_ri = mine(0.03, 0.6);
    let tight_sup = mine(0.06, 0.3);

    // Raising MinRI can only shrink the rule set; every surviving rule also
    // existed at the looser threshold.
    assert!(tight_ri.rules.len() <= loose.rules.len());
    for r in &tight_ri.rules {
        assert!(
            loose
                .rules
                .iter()
                .any(|l| l.antecedent == r.antecedent && l.consequent == r.consequent),
            "{r}"
        );
    }
    // Raising MinSup shrinks the large itemsets.
    assert!(tight_sup.large.total() <= loose.large.total());
}

#[test]
fn substitute_knowledge_extends_candidates() {
    use negassoc::substitutes::SubstituteKnowledge;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::TransactionDbBuilder;

    // Two categories; coke/juice declared substitutes across categories
    // (the taxonomy alone would never relate them as siblings).
    let mut tb = TaxonomyBuilder::new();
    let drinks = tb.add_root("drinks");
    let coke = tb.add_child(drinks, "coke").unwrap();
    let juices = tb.add_root("juices");
    let orange = tb.add_child(juices, "orange juice").unwrap();
    let snacks = tb.add_root("snacks");
    let chips = tb.add_child(snacks, "chips").unwrap();
    let tax = tb.build();

    let mut db = TransactionDbBuilder::new();
    for _ in 0..40 {
        db.add([coke, chips]);
    }
    for _ in 0..30 {
        db.add([orange]);
    }
    let db = db.build();

    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.2),
        min_ri: 0.3,
        ..MinerConfig::default()
    };
    let plain = NegativeMiner::new(config).mine(&db, &tax).unwrap();
    // Without substitute knowledge, {orange, chips} has no expectation
    // source: coke and orange juice are not taxonomy siblings.
    assert!(!plain
        .negatives
        .iter()
        .any(|n| n.itemset.contains(orange) && n.itemset.contains(chips)));

    let mut subs = SubstituteKnowledge::new();
    assert!(subs.add_group([coke, orange]));
    let with = NegativeMiner::new(config)
        .mine_with_substitutes(&db, &tax, Some(&subs))
        .unwrap();
    // With it, the {coke, chips} association induces an expectation for
    // {orange juice, chips}, whose actual support is zero -> negative.
    assert!(with
        .negatives
        .iter()
        .any(|n| n.itemset.contains(orange) && n.itemset.contains(chips)));
    assert!(with.negatives.len() >= plain.negatives.len());
}
