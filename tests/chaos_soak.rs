//! Chaos soak for the run control plane: seeded random schedules that
//! combine source fault injection, cooperative cancellation at arbitrary
//! pass/transaction positions, thread-count and counting-backend changes
//! between attempts, and checkpoint resume. However a run is battered, the finally-completed
//! rule set must be *bitwise* identical to an uninterrupted sequential
//! run — cancellation may cost passes, never correctness.

use negassoc::config::MinerConfig;
use negassoc::{
    CancelReason, CancelToken, Completeness, Deadline, Error, MiningOutcome, NegativeMiner,
    Parallelism, RunControl,
};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets};
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::fault::{FaultPlan, FaultySource, RetryPolicy, RetryingSource};
use negassoc_txdb::{Transaction, TransactionDb, TransactionSource};
use std::cell::Cell;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique temp dir, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(name: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!("negassoc-chaos-{}-{n}-{name}", std::process::id())))
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic PRNG (splitmix64) so every soak schedule replays exactly
/// from its seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source wrapper that trips a [`CancelToken`] when pass `at_pass`
/// (0-based, counted per `pass()` call on *this* wrapper) reaches
/// transaction `at_transaction` — the chaos schedule's "the user hit
/// Ctrl-C right here" lever, deterministic down to the transaction.
struct CancelAt<'a, S> {
    inner: &'a S,
    token: CancelToken,
    pass_no: Cell<u64>,
    at_pass: u64,
    at_transaction: u64,
}

impl<'a, S> CancelAt<'a, S> {
    fn new(inner: &'a S, token: CancelToken, at_pass: u64, at_transaction: u64) -> Self {
        Self {
            inner,
            token,
            pass_no: Cell::new(0),
            at_pass,
            at_transaction,
        }
    }
}

impl<S: TransactionSource> TransactionSource for CancelAt<'_, S> {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        let pass = self.pass_no.get();
        self.pass_no.set(pass + 1);
        let mut offset = 0u64;
        self.inner.pass(&mut |t| {
            if pass == self.at_pass && offset == self.at_transaction {
                self.token.cancel(CancelReason::UserInterrupt);
            }
            offset += 1;
            f(t);
        })
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    // Identity hooks forward: a wrapped sharded source must keep its
    // checkpoint fingerprint (resume across the wrapper) and its
    // degraded-completeness report. Pass semantics (`as_db`/`as_shards`)
    // stay hidden, as for every instrumenting wrapper.
    fn content_digest(&self) -> Option<u64> {
        self.inner.content_digest()
    }

    fn quarantined_shards(&self) -> Vec<String> {
        self.inner.quarantined_shards()
    }
}

fn scenario() -> (Taxonomy, TransactionDb) {
    let ds = generate(&presets::scaled(presets::short(), 400));
    (ds.taxonomy, ds.db)
}

fn config(parallelism: Parallelism, backend: CountingBackend) -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(0.04),
        min_ri: 0.4,
        max_negative_size: Some(2),
        parallelism,
        backend,
        ..MinerConfig::default()
    }
}

/// Deal a counting backend from the chaos schedule: like thread counts,
/// backends may change freely between attempts without moving the answer.
fn pick_backend(rng: &mut u64) -> CountingBackend {
    match splitmix64(rng) % 3 {
        0 => CountingBackend::HashTree,
        1 => CountingBackend::SubsetHashMap,
        _ => CountingBackend::TidBitmap,
    }
}

/// Every number a run reports, floats taken bitwise.
fn outcome_key(out: &MiningOutcome) -> Vec<(Vec<ItemId>, Vec<ItemId>, u64, u64, u64)> {
    let mut keys: Vec<_> = out
        .rules
        .iter()
        .map(|r| {
            (
                r.antecedent.items().to_vec(),
                r.consequent.items().to_vec(),
                r.ri.to_bits(),
                r.expected.to_bits(),
                r.actual,
            )
        })
        .collect();
    keys.sort();
    keys
}

/// A cancelled run's error must be internally consistent: typed, carrying
/// the schedule's reason, and claiming a checkpoint exactly when its
/// completeness says durable state exists.
fn assert_cancellation_shape(err: &Error) {
    let Error::Cancelled {
        reason,
        checkpoint,
        completeness,
    } = err
    else {
        panic!("expected Error::Cancelled, got {err:?}");
    };
    assert_eq!(*reason, CancelReason::UserInterrupt);
    assert_eq!(
        checkpoint.is_some(),
        *completeness != Completeness::NoCheckpoint,
        "checkpoint {checkpoint:?} vs completeness {completeness}"
    );
}

/// One seeded soak: batter a checkpointed run with random interrupts,
/// transient source faults, and thread-count and backend flips until it
/// completes, then demand the answer match the clean sequential run bit
/// for bit.
fn soak(seed: u64) {
    let (tax, db) = scenario();
    let total = db.len() as u64;
    let clean = NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
        .mine(&db, &tax)
        .unwrap();

    let dir = TmpDir::new("soak");
    let mut rng = seed;
    let mut cancelled_attempts = 0u32;
    let mut completed: Option<MiningOutcome> = None;
    for _attempt in 0..8 {
        let r = splitmix64(&mut rng);
        let at_pass = r % 5;
        let at_transaction = splitmix64(&mut rng) % total;
        let parallelism = if splitmix64(&mut rng) % 2 == 0 {
            Parallelism::Sequential
        } else {
            Parallelism::Threads(4)
        };
        let backend = pick_backend(&mut rng);
        let with_fault = splitmix64(&mut rng) % 3 == 0;

        let ctrl = RunControl::new();
        let miner = NegativeMiner::new(config(parallelism, backend));
        let run = |source: &dyn TransactionSource| {
            miner.mine_with_controls(source, &tax, None, Some(&dir.0), &ctrl)
        };
        let result = if with_fault {
            // A transient read fault on top of the interrupt: the retry
            // layer must heal it without confusing the control plane.
            let faulty = RetryingSource::new(
                FaultySource::new(
                    &db,
                    FaultPlan::seeded_transient(splitmix64(&mut rng), 4, total, 2),
                ),
                RetryPolicy::new(4, Duration::ZERO),
            );
            run(&CancelAt::new(
                &faulty,
                ctrl.token().clone(),
                at_pass,
                at_transaction,
            ))
        } else {
            run(&CancelAt::new(
                &db,
                ctrl.token().clone(),
                at_pass,
                at_transaction,
            ))
        };
        match result {
            Ok(out) => {
                completed = Some(out);
                break;
            }
            Err(err) => {
                assert_cancellation_shape(&err);
                cancelled_attempts += 1;
            }
        }
    }
    // However the schedule went, an unmolested final attempt finishes the
    // job from whatever checkpoints survived.
    let out = match completed {
        Some(out) => out,
        None => {
            // The final attempt deliberately mines with the bitmap
            // backend: whatever backend wrote the surviving checkpoints,
            // the resume must cross over cleanly.
            let ctrl = RunControl::new();
            NegativeMiner::new(config(Parallelism::Threads(4), CountingBackend::TidBitmap))
                .mine_with_controls(&db, &tax, None, Some(&dir.0), &ctrl)
                .unwrap()
        }
    };
    assert_eq!(
        outcome_key(&out),
        outcome_key(&clean),
        "seed {seed} diverged after {cancelled_attempts} cancelled attempts"
    );
    assert_eq!(out.large.total(), clean.large.total());
    assert_eq!(out.negatives.len(), clean.negatives.len());
    // Success cleared the checkpoint directory.
    if dir.0.exists() {
        assert_eq!(std::fs::read_dir(&dir.0).unwrap().count(), 0);
    }
}

#[test]
fn chaos_seed_1_converges_to_the_uninterrupted_answer() {
    soak(1);
}

#[test]
fn chaos_seed_2_converges_to_the_uninterrupted_answer() {
    soak(2);
}

#[test]
fn chaos_seed_3_converges_to_the_uninterrupted_answer() {
    soak(3);
}

#[test]
fn chaos_seed_4_converges_to_the_uninterrupted_answer() {
    soak(4);
}

/// The satellite property: cancelling at *every* pass boundary in turn,
/// then resuming — under a different thread count *and* a different
/// counting backend — must reproduce the uninterrupted rule set exactly,
/// every time. Backends share checkpoint fingerprints by design.
#[test]
fn cancelling_at_every_pass_boundary_then_resuming_is_exact() {
    let (tax, db) = scenario();
    let clean = NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
        .mine(&db, &tax)
        .unwrap();
    let passes = clean.report.passes;
    assert!(passes >= 2, "scenario too shallow to interrupt");

    for boundary in 0..passes {
        let dir = TmpDir::new("boundary");
        // Interrupt exactly as pass `boundary` begins streaming.
        let (cancel_par, resume_par) = if boundary % 2 == 0 {
            (Parallelism::Sequential, Parallelism::Threads(4))
        } else {
            (Parallelism::Threads(4), Parallelism::Sequential)
        };
        let (cancel_be, resume_be) = match boundary % 3 {
            0 => (CountingBackend::HashTree, CountingBackend::TidBitmap),
            1 => (CountingBackend::TidBitmap, CountingBackend::SubsetHashMap),
            _ => (CountingBackend::SubsetHashMap, CountingBackend::HashTree),
        };
        let ctrl = RunControl::new();
        let err = NegativeMiner::new(config(cancel_par, cancel_be))
            .mine_with_controls(
                &CancelAt::new(&db, ctrl.token().clone(), boundary, 0),
                &tax,
                None,
                Some(&dir.0),
                &ctrl,
            )
            .unwrap_err();
        assert_cancellation_shape(&err);

        let resumed = NegativeMiner::new(config(resume_par, resume_be))
            .mine_with_recovery(&db, &tax, None, &dir.0)
            .unwrap();
        assert_eq!(
            outcome_key(&resumed),
            outcome_key(&clean),
            "boundary {boundary} ({cancel_par:?}/{cancel_be:?} -> {resume_par:?}/{resume_be:?})"
        );
    }
}

/// The interrupted-run telemetry contract behind the CLI's exit-code-3
/// `--pass-stats` audit: a cancelled run's recorded trace carries a
/// `pass_end` only for passes that completed their full scan — the
/// in-flight pass announces a `pass_start` but never a `pass_end`, so a
/// consumer that renders completed passes can never mistake a partial
/// scan's numbers for real telemetry — and the cancellation itself is on
/// the record.
#[test]
fn interrupted_run_records_only_completed_passes() {
    use negassoc::obs::{Event, Obs, RingBufferSink};
    use std::sync::Arc;

    let (tax, db) = scenario();
    let total = db.len() as u64;
    let clean = NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
        .mine(&db, &tax)
        .unwrap();
    assert!(
        clean.report.passes >= 2,
        "scenario too shallow to interrupt"
    );

    // Cancel at the very first transaction of the first pass: at most one
    // pass can complete before the control plane notices.
    let dir = TmpDir::new("obs");
    let ring = Arc::new(RingBufferSink::new(4096));
    let ctrl = RunControl::new().with_observer(Obs::disabled().with_sink(ring.clone()));
    let err = NegativeMiner::new(config(Parallelism::Threads(4), CountingBackend::TidBitmap))
        .mine_with_controls(
            &CancelAt::new(&db, ctrl.token().clone(), 0, 0),
            &tax,
            None,
            Some(&dir.0),
            &ctrl,
        )
        .unwrap_err();
    assert_cancellation_shape(&err);

    let events = ring.snapshot();
    let starts = events
        .iter()
        .filter(|e| matches!(e, Event::PassStart { .. }))
        .count();
    let completed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::PassEnd { stats } => Some(stats.clone()),
            _ => None,
        })
        .collect();
    assert!(starts > 0, "the interrupted pass must announce itself");
    assert!(
        starts > completed.len(),
        "the in-flight pass must not record a pass_end ({starts} starts vs {} ends)",
        completed.len()
    );
    assert!(
        (completed.len() as u64) < clean.report.passes,
        "an interrupted run must not report a full pass table ({} vs {})",
        completed.len(),
        clean.report.passes
    );
    for s in &completed {
        assert_eq!(
            s.transactions, total,
            "a recorded pass_end must describe a complete scan: {s:?}"
        );
    }
    assert!(
        events.iter().any(|e| matches!(e, Event::Cancelled { .. })),
        "the cancellation must appear in the trace"
    );
}

/// The shard corruption matrix: for each shard k of N, corrupt it beyond
/// salvage and mine the degraded manifest under each thread count — the
/// rules must be bitwise equal to mining the N−1 healthy shards alone,
/// the report must name the quarantined shard, and a mid-run cancel +
/// resume over the degraded source must converge to the same answer.
/// With nothing corrupted, the sharded mine must equal the unsharded one.
#[test]
fn shard_corruption_matrix_degrades_to_the_healthy_shards_exactly() {
    use negassoc_txdb::binfmt;
    use negassoc_txdb::shard::{write_sharded, ShardedSource};
    use negassoc_txdb::TransactionDbBuilder;
    use std::io::{Seek, SeekFrom, Write};

    const SHARDS: usize = 4;
    let (tax, db) = scenario();

    // Baseline: all shards healthy ≡ the unsharded database, bitwise.
    let clean = NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
        .mine(&db, &tax)
        .unwrap();
    {
        let dir = TmpDir::new("shard-healthy");
        std::fs::create_dir_all(&dir.0).unwrap();
        let manifest_path = dir.0.join("db.manifest");
        write_sharded(&db, &manifest_path, SHARDS).unwrap();
        let src = ShardedSource::open(&manifest_path).unwrap();
        for (parallelism, backend) in [
            (Parallelism::Sequential, CountingBackend::HashTree),
            (Parallelism::Threads(4), CountingBackend::TidBitmap),
        ] {
            let out = NegativeMiner::new(config(parallelism, backend))
                .mine(&src, &tax)
                .unwrap();
            assert_eq!(
                outcome_key(&out),
                outcome_key(&clean),
                "{parallelism:?}/{backend:?}"
            );
            assert!(out.report.completeness.is_none());
        }
    }

    for k in 0..SHARDS {
        let dir = TmpDir::new("shard-matrix");
        std::fs::create_dir_all(&dir.0).unwrap();
        let manifest_path = dir.0.join("db.manifest");
        let manifest = write_sharded(&db, &manifest_path, SHARDS).unwrap();
        // Destroy shard k's magic: unreadable, salvage recovers nothing.
        let victim = manifest.shard_path(k);
        {
            let mut f = std::fs::OpenOptions::new()
                .write(true)
                .open(&victim)
                .unwrap();
            f.seek(SeekFrom::Start(0)).unwrap();
            f.write_all(b"XXXX").unwrap();
        }

        // Reference: the healthy shards concatenated in manifest order,
        // mined directly.
        let mut b = TransactionDbBuilder::new();
        for (i, _) in manifest.entries().iter().enumerate() {
            if i == k {
                continue;
            }
            binfmt::load(manifest.shard_path(i))
                .unwrap()
                .pass(&mut |t| b.add_with_tid(t.tid(), t.items().iter().copied()))
                .unwrap();
        }
        let healthy = b.build();
        let reference =
            NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
                .mine(&healthy, &tax)
                .unwrap();

        let src = ShardedSource::open_degraded(&manifest_path).unwrap();
        assert_eq!(src.quarantine().shards.len(), 1);
        assert_eq!(src.quarantine().shards[0].index, k);

        for (parallelism, backend) in [
            (Parallelism::Sequential, CountingBackend::HashTree),
            (Parallelism::Threads(4), CountingBackend::TidBitmap),
        ] {
            let out = NegativeMiner::new(config(parallelism, backend))
                .mine(&src, &tax)
                .unwrap();
            assert_eq!(
                outcome_key(&out),
                outcome_key(&reference),
                "shard {k}, {parallelism:?}/{backend:?}"
            );
            let Some(Completeness::Degraded { quarantined_shards }) = &out.report.completeness
            else {
                panic!("shard {k}: expected degraded completeness");
            };
            assert_eq!(
                quarantined_shards,
                &vec![victim.display().to_string()],
                "shard {k}"
            );
        }

        // Mid-run cancel over the degraded source, then resume: the
        // checkpoint fingerprint (content digest through the CancelAt
        // wrapper) must match and the answer must not move.
        let ckpt = TmpDir::new("shard-resume");
        let ctrl = RunControl::new();
        let err = NegativeMiner::new(config(Parallelism::Threads(4), CountingBackend::TidBitmap))
            .mine_with_controls(
                &CancelAt::new(&src, ctrl.token().clone(), 1, 0),
                &tax,
                None,
                Some(&ckpt.0),
                &ctrl,
            )
            .unwrap_err();
        assert_cancellation_shape(&err);
        let resumed =
            NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
                .mine_with_recovery(&src, &tax, None, &ckpt.0)
                .unwrap();
        assert_eq!(
            outcome_key(&resumed),
            outcome_key(&reference),
            "shard {k} resume"
        );
    }
}

/// An already-expired deadline cancels before the first pass: typed error,
/// deadline reason, no checkpoint, and an untouched source.
#[test]
fn expired_deadline_cancels_before_any_pass() {
    let (tax, db) = scenario();
    let pc = negassoc_txdb::PassCounter::new(db);
    let ctrl = RunControl::new().with_deadline(Deadline::after(Duration::ZERO));
    let dir = TmpDir::new("deadline");
    let err = NegativeMiner::new(config(Parallelism::Sequential, CountingBackend::HashTree))
        .mine_with_controls(&pc, &tax, None, Some(&dir.0), &ctrl)
        .unwrap_err();
    match err {
        Error::Cancelled {
            reason,
            checkpoint,
            completeness,
        } => {
            assert_eq!(reason, CancelReason::DeadlineExceeded);
            assert_eq!(checkpoint, None);
            assert_eq!(completeness, Completeness::NoCheckpoint);
        }
        other => panic!("expected Error::Cancelled, got {other:?}"),
    }
    assert_eq!(
        pc.passes(),
        0,
        "no pass may start under an expired deadline"
    );
}
