//! Checkpoint/resume composed with the parallel counting layer: a run
//! interrupted mid-pass and resumed under `--threads 4` must be
//! *bitwise* identical to an uninterrupted sequential run, and
//! checkpoints must be interchangeable across thread counts (the
//! fingerprint deliberately ignores the parallelism policy).

use negassoc::config::MinerConfig;
use negassoc::{NegativeMiner, Parallelism};
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets};
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::fault::{FaultPlan, FaultySource, SourceFault, SourceFaultKind};
use negassoc_txdb::TransactionDb;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp dir, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(name: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!("negassoc-pr-{}-{n}-{name}", std::process::id())))
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scenario() -> (Taxonomy, TransactionDb) {
    let ds = generate(&presets::scaled(presets::short(), 400));
    (ds.taxonomy, ds.db)
}

fn config(parallelism: Parallelism) -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(0.04),
        min_ri: 0.4,
        max_negative_size: Some(2),
        parallelism,
        ..MinerConfig::default()
    }
}

/// Every number a run reports, floats taken bitwise: two runs compare
/// equal here only when they are indistinguishable to a caller.
fn outcome_key(out: &negassoc::MiningOutcome) -> Vec<(Vec<ItemId>, Vec<ItemId>, u64, u64, u64)> {
    let mut keys: Vec<_> = out
        .rules
        .iter()
        .map(|r| {
            (
                r.antecedent.items().to_vec(),
                r.consequent.items().to_vec(),
                r.ri.to_bits(),
                r.expected.to_bits(),
                r.actual,
            )
        })
        .collect();
    keys.sort();
    keys
}

/// Kill pass 2 mid-flight, then resume with a different parallelism
/// policy; the resumed outcome must match the clean sequential run in
/// every reported bit.
fn interrupt_and_resume_with(resume_parallelism: Parallelism) {
    let (tax, db) = scenario();
    let sequential = NegativeMiner::new(config(Parallelism::Sequential));
    let clean = sequential.mine(&db, &tax).unwrap();

    let dir = TmpDir::new("ckpt");
    let plan = FaultPlan::new(vec![SourceFault {
        pass: 1,
        at_transaction: 10,
        kind: SourceFaultKind::PermanentError,
    }]);
    sequential
        .mine_with_recovery(&FaultySource::new(&db, plan), &tax, None, &dir.0)
        .unwrap_err();
    assert!(
        std::fs::read_dir(&dir.0).unwrap().count() > 0,
        "the failed run must leave checkpoints behind"
    );

    let resumed = NegativeMiner::new(config(resume_parallelism))
        .mine_with_recovery(&db, &tax, None, &dir.0)
        .unwrap();
    assert_eq!(outcome_key(&resumed), outcome_key(&clean));
    assert_eq!(resumed.large.total(), clean.large.total());
    assert_eq!(resumed.negatives.len(), clean.negatives.len());
    assert_eq!(std::fs::read_dir(&dir.0).unwrap().count(), 0);
}

#[test]
fn resume_with_four_threads_is_bitwise_identical_to_sequential() {
    interrupt_and_resume_with(Parallelism::Threads(4));
}

#[test]
fn resume_with_auto_threads_is_bitwise_identical_to_sequential() {
    interrupt_and_resume_with(Parallelism::Auto);
}

#[test]
fn parallel_interruption_resumes_sequentially_with_identical_results() {
    // The mirror image: crash under 4 threads, heal with 1. Checkpoints
    // written by a parallel run must be readable by a sequential one.
    let (tax, db) = scenario();
    let clean = NegativeMiner::new(config(Parallelism::Sequential))
        .mine(&db, &tax)
        .unwrap();

    let dir = TmpDir::new("ckpt-rev");
    let plan = FaultPlan::new(vec![SourceFault {
        pass: 1,
        at_transaction: 10,
        kind: SourceFaultKind::PermanentError,
    }]);
    NegativeMiner::new(config(Parallelism::Threads(4)))
        .mine_with_recovery(&FaultySource::new(&db, plan), &tax, None, &dir.0)
        .unwrap_err();
    assert!(std::fs::read_dir(&dir.0).unwrap().count() > 0);

    let resumed = NegativeMiner::new(config(Parallelism::Sequential))
        .mine_with_recovery(&db, &tax, None, &dir.0)
        .unwrap();
    assert_eq!(outcome_key(&resumed), outcome_key(&clean));
}

#[test]
fn uninterrupted_runs_are_thread_count_invariant_end_to_end() {
    let (tax, db) = scenario();
    let reference = NegativeMiner::new(config(Parallelism::Sequential))
        .mine(&db, &tax)
        .unwrap();
    for parallelism in [
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ] {
        let out = NegativeMiner::new(config(parallelism))
            .mine(&db, &tax)
            .unwrap();
        assert_eq!(
            outcome_key(&out),
            outcome_key(&reference),
            "{parallelism:?}"
        );
        // The telemetry reflects the policy while the results ignore it.
        let threads = parallelism.resolve();
        assert!(out.report.pass_stats.iter().all(|s| s.threads == threads));
        assert_eq!(
            out.report.pass_stats.len(),
            reference.report.pass_stats.len()
        );
    }
}
