//! Property-based cross-crate invariants of the negative miner.

use negassoc::config::Driver;
use negassoc::expected::approx_ge;
use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::MinSupport;
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};
use negassoc_txdb::{TransactionDb, TransactionDbBuilder};
use proptest::prelude::*;

/// A two-level taxonomy: `cats` categories with 2–4 leaves each. Two
/// levels keep candidate generation meaningful (children + siblings) while
/// staying fast.
fn arb_world() -> impl Strategy<Value = (Taxonomy, TransactionDb)> {
    (2usize..5, any::<u64>()).prop_flat_map(|(cats, seed)| {
        let leaf_counts = prop::collection::vec(2usize..5, cats);
        let txs = prop::collection::vec(prop::collection::vec(0usize..16, 1..6), 5..60);
        (leaf_counts, txs, Just(seed)).prop_map(|(leaf_counts, txs, _seed)| {
            let mut b = TaxonomyBuilder::new();
            let mut leaves: Vec<ItemId> = Vec::new();
            for (ci, &n) in leaf_counts.iter().enumerate() {
                let cat = b.add_root(&format!("cat{ci}"));
                for li in 0..n {
                    leaves.push(b.add_child(cat, &format!("leaf{ci}-{li}")).unwrap());
                }
            }
            let tax = b.build();
            let mut db = TransactionDbBuilder::new();
            for t in txs {
                db.add(t.into_iter().map(|i| leaves[i % leaves.len()]));
            }
            (tax, db.build())
        })
    })
}

fn mine(tax: &Taxonomy, db: &TransactionDb, config: MinerConfig) -> negassoc::MiningOutcome {
    NegativeMiner::new(config).mine(db, tax).unwrap()
}

fn base_config() -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(0.15),
        min_ri: 0.3,
        ..MinerConfig::default()
    }
}

fn norm(out: &negassoc::MiningOutcome) -> Vec<String> {
    let mut v: Vec<String> = out
        .negatives
        .iter()
        .map(|n| format!("{:?}@{}~{:.6}", n.itemset, n.actual, n.expected))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Naive and improved drivers agree on arbitrary inputs.
    #[test]
    fn drivers_agree((tax, db) in arb_world()) {
        let a = mine(&tax, &db, base_config());
        let b = mine(&tax, &db, MinerConfig { driver: Driver::Naive, ..base_config() });
        prop_assert_eq!(norm(&a), norm(&b));
        prop_assert_eq!(a.rules.len(), b.rules.len());
    }

    /// Taxonomy compression and the memory cap never change the answer.
    #[test]
    fn ablations_preserve_output((tax, db) in arb_world(), cap in 1usize..5) {
        let a = mine(&tax, &db, base_config());
        let b = mine(&tax, &db, MinerConfig { compress_taxonomy: false, ..base_config() });
        let c = mine(&tax, &db, MinerConfig {
            max_candidates_per_pass: Some(cap),
            ..base_config()
        });
        let d = mine(&tax, &db, MinerConfig {
            backend: CountingBackend::SubsetHashMap,
            ..base_config()
        });
        prop_assert_eq!(norm(&a), norm(&b));
        prop_assert_eq!(norm(&a), norm(&c));
        prop_assert_eq!(norm(&a), norm(&d));
    }

    /// Output semantics hold on arbitrary inputs (lighter version of the
    /// deterministic pipeline test).
    #[test]
    fn output_semantics((tax, db) in arb_world()) {
        let out = mine(&tax, &db, base_config());
        let minsup = out.large.min_support_count();
        let threshold = minsup as f64 * 0.3;
        for n in &out.negatives {
            // Brute-force actual support.
            let brute = db
                .iter()
                .filter(|t| {
                    n.itemset.items().iter().all(|&m| {
                        t.items().iter().any(|&it| it == m || tax.is_ancestor(m, it))
                    })
                })
                .count() as u64;
            prop_assert_eq!(n.actual, brute);
            // Thresholds are epsilon-tolerant (see the core
            // float-comparison contract).
            prop_assert!(approx_ge(n.expected - n.actual as f64, threshold));
            prop_assert!(!out.large.contains(&n.itemset));
        }
        for r in &out.rules {
            prop_assert!(approx_ge(r.ri, 0.3));
            let union = r.antecedent.union(&r.consequent);
            prop_assert!(out.negatives.iter().any(|n| n.itemset == union));
        }
    }

    /// The miner is a pure function of its inputs.
    #[test]
    fn mining_is_deterministic((tax, db) in arb_world()) {
        let a = mine(&tax, &db, base_config());
        let b = mine(&tax, &db, base_config());
        prop_assert_eq!(norm(&a), norm(&b));
        prop_assert_eq!(a.report.passes, b.report.passes);
    }
}
