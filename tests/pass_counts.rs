//! Pins the paper's pass-count claims (§2.2): the naive driver makes two
//! passes per level (`2n` shape) while the improved driver makes one pass
//! per positive level plus a single negative-counting pass (`n + 1`), with
//! extra passes only under the §2.5 memory cap.

use negassoc::config::Driver;
use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_taxonomy::{Taxonomy, TaxonomyBuilder};
use negassoc_txdb::{PassCounter, TransactionDb, TransactionDbBuilder};

/// Three categories of two brands each; one brand-triple dominates, so
/// large itemsets reach size 3 and negative candidates exist at sizes 2
/// and 3.
fn deep_scenario() -> (Taxonomy, TransactionDb) {
    let mut tb = TaxonomyBuilder::new();
    let mut brands = Vec::new();
    for cat in ["drinks", "snacks", "dips"] {
        let c = tb.add_root(cat);
        for brand in ["alpha", "beta"] {
            brands.push(tb.add_child(c, &format!("{cat}-{brand}")).unwrap());
        }
    }
    let tax = tb.build();
    let [da, db_, sa, sb, pa, pb]: [negassoc_taxonomy::ItemId; 6] = brands.try_into().unwrap();

    let mut db = TransactionDbBuilder::new();
    // The dominant triple: alpha everything.
    for _ in 0..40 {
        db.add([da, sa, pa]);
    }
    // Make the beta brands individually large, never with the alphas.
    for _ in 0..25 {
        db.add([db_, sb, pb]);
    }
    for _ in 0..15 {
        db.add([db_]);
    }
    for _ in 0..10 {
        db.add([sb]);
    }
    for _ in 0..10 {
        db.add([pb]);
    }
    (tax, db.build())
}

fn config(driver: Driver) -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(0.15),
        min_ri: 0.2,
        driver,
        ..MinerConfig::default()
    }
}

#[test]
fn improved_beats_naive_on_passes() {
    let (tax, db) = deep_scenario();
    let pc = PassCounter::new(db);

    let improved = NegativeMiner::new(config(Driver::Improved))
        .mine(&pc, &tax)
        .unwrap();
    let improved_passes = pc.passes();
    assert_eq!(improved.report.passes, improved_passes);

    pc.reset();
    let naive = NegativeMiner::new(config(Driver::Naive))
        .mine(&pc, &tax)
        .unwrap();
    let naive_passes = pc.passes();
    assert_eq!(naive.report.passes, naive_passes);

    // Positive mining reaches at least level 3 (the alpha triple and the
    // generalized triples are large), so there are >= 2 negative levels
    // and the naive driver must pay for each one.
    assert!(
        improved.report.levels >= 3,
        "levels {}",
        improved.report.levels
    );
    assert!(
        improved_passes < naive_passes,
        "improved {improved_passes} vs naive {naive_passes}"
    );
    // The exact shapes: improved = positive passes + 1.
    // Naive pays one extra pass per level >= 2 with candidates.
    assert_eq!(improved.negatives.len(), naive.negatives.len());
}

#[test]
fn improved_is_positive_passes_plus_one() {
    let (tax, db) = deep_scenario();
    // Measure pure positive mining passes with the same algorithm.
    let pc = PassCounter::new(db);
    negassoc_apriori::cumulate::cumulate(
        &pc,
        &tax,
        MinSupport::Fraction(0.15),
        Default::default(),
        Default::default(),
    )
    .unwrap();
    let positive_passes = pc.passes();

    pc.reset();
    let out = NegativeMiner::new(config(Driver::Improved))
        .mine(&pc, &tax)
        .unwrap();
    assert_eq!(pc.passes(), positive_passes + 1);
    assert!(!out.negatives.is_empty());
}

#[test]
fn memory_cap_adds_exactly_ceil_passes() {
    let (tax, db) = deep_scenario();
    let pc = PassCounter::new(db);
    let base = NegativeMiner::new(config(Driver::Improved))
        .mine(&pc, &tax)
        .unwrap();
    let base_passes = pc.passes();
    let total_candidates = base.report.candidates.unique as usize;
    assert!(total_candidates >= 2);

    // Cap at half the candidates: the single counting pass becomes two.
    pc.reset();
    let cap = total_candidates.div_ceil(2);
    let capped = NegativeMiner::new(MinerConfig {
        max_candidates_per_pass: Some(cap),
        ..config(Driver::Improved)
    })
    .mine(&pc, &tax)
    .unwrap();
    assert_eq!(pc.passes(), base_passes + 1);
    assert_eq!(capped.negatives.len(), base.negatives.len());
    assert_eq!(capped.rules.len(), base.rules.len());

    // Cap of one candidate per pass: counting passes equal the number of
    // candidates.
    pc.reset();
    let single = NegativeMiner::new(MinerConfig {
        max_candidates_per_pass: Some(1),
        ..config(Driver::Improved)
    })
    .mine(&pc, &tax)
    .unwrap();
    assert_eq!(pc.passes(), base_passes - 1 + total_candidates as u64);
    assert_eq!(single.negatives.len(), base.negatives.len());
}

#[test]
fn file_backed_source_counts_identically() {
    // The same mining run over a streamed file source must make the same
    // passes and find the same rules as the in-memory database.
    let (tax, db) = deep_scenario();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("negassoc-pass-{}.nadb", std::process::id()));
    negassoc_txdb::binfmt::save(&db, &path).unwrap();
    let file_source = negassoc_txdb::binfmt::FileSource::open(&path).unwrap();

    let mem = NegativeMiner::new(config(Driver::Improved))
        .mine(&db, &tax)
        .unwrap();
    let file = NegativeMiner::new(config(Driver::Improved))
        .mine(&file_source, &tax)
        .unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(mem.report.passes, file.report.passes);
    assert_eq!(mem.negatives.len(), file.negatives.len());
    assert_eq!(mem.rules.len(), file.rules.len());
}
