//! Cross-algorithm agreement on generated data: every combination of
//! positive algorithm (Basic / Cumulate / EstMerge), driver (naive /
//! improved) and counting backend must produce the same large itemsets,
//! negative itemsets and rules.

use negassoc::config::{Driver, GenAlgorithm};
use negassoc::{MinerConfig, MiningOutcome, NegativeMiner};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::est_merge::EstMergeConfig;
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets};

fn dataset() -> negassoc_datagen::Dataset {
    generate(&presets::scaled(presets::short(), 800))
}

fn normalize(out: &MiningOutcome) -> (Vec<String>, Vec<String>) {
    let mut negs: Vec<String> = out
        .negatives
        .iter()
        .map(|n| format!("{:?}@{}", n.itemset, n.actual))
        .collect();
    negs.sort();
    let mut rules: Vec<String> = out
        .rules
        .iter()
        .map(|r| format!("{:?}=/=>{:?}", r.antecedent, r.consequent))
        .collect();
    rules.sort();
    (negs, rules)
}

#[test]
fn all_configurations_agree() {
    let ds = dataset();
    let base_config = MinerConfig {
        min_support: MinSupport::Fraction(0.03),
        min_ri: 0.4,
        ..MinerConfig::default()
    };
    let reference = NegativeMiner::new(base_config)
        .mine(&ds.db, &ds.taxonomy)
        .unwrap();
    let (ref_negs, ref_rules) = normalize(&reference);
    assert!(
        reference.large.total() > 0,
        "scenario must produce large itemsets"
    );

    let variants: Vec<(&str, MinerConfig)> = vec![
        (
            "basic+improved",
            MinerConfig {
                algorithm: GenAlgorithm::Basic,
                ..base_config
            },
        ),
        (
            "cumulate+naive",
            MinerConfig {
                driver: Driver::Naive,
                ..base_config
            },
        ),
        (
            "basic+naive",
            MinerConfig {
                algorithm: GenAlgorithm::Basic,
                driver: Driver::Naive,
                ..base_config
            },
        ),
        (
            "estmerge+improved",
            MinerConfig {
                algorithm: GenAlgorithm::EstMerge(EstMergeConfig::default()),
                ..base_config
            },
        ),
        (
            "subset-hashmap backend",
            MinerConfig {
                backend: CountingBackend::SubsetHashMap,
                ..base_config
            },
        ),
        (
            "no taxonomy compression",
            MinerConfig {
                compress_taxonomy: false,
                ..base_config
            },
        ),
        (
            "capped counting",
            MinerConfig {
                max_candidates_per_pass: Some(7),
                ..base_config
            },
        ),
    ];

    for (name, config) in variants {
        let out = NegativeMiner::new(config)
            .mine(&ds.db, &ds.taxonomy)
            .unwrap();
        assert_eq!(out.large.total(), reference.large.total(), "{name}: large");
        let (negs, rules) = normalize(&out);
        assert_eq!(negs, ref_negs, "{name}: negative itemsets");
        assert_eq!(rules, ref_rules, "{name}: rules");
    }
}

#[test]
fn tall_and_short_presets_both_mine() {
    for preset in [presets::short(), presets::tall()] {
        let ds = generate(&presets::scaled(preset, 500));
        let out = NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.04),
            min_ri: 0.4,
            ..MinerConfig::default()
        })
        .mine(&ds.db, &ds.taxonomy)
        .unwrap();
        // The skewed nested-logit data reliably produces large itemsets;
        // negatives depend on the draw, so only structural invariants are
        // asserted here (semantics are pinned elsewhere).
        assert!(out.large.total() > 0);
        for n in &out.negatives {
            assert!(n.expected - n.actual as f64 > 0.0);
        }
    }
}
