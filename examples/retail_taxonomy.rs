//! A realistic end-to-end scenario on generated retail data: synthesize a
//! "Short"-shaped dataset with the paper's nested-logit generator, mine
//! positive *and* negative generalized rules, and print the most
//! interesting of each — the cross-marketing view a category manager would
//! look at.
//!
//! Run with `cargo run --release -p negassoc --example retail_taxonomy`.

use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::rules::generate_rules;
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets};

fn main() {
    // A laptop-sized slice of the paper's "Short" dataset (Table 4).
    let params = presets::scaled(presets::short(), 5_000);
    println!(
        "generating {} transactions over {} items (fanout {})...",
        params.num_transactions, params.num_items, params.fanout
    );
    let ds = generate(&params);
    let tax = &ds.taxonomy;
    println!(
        "taxonomy: {} leaves, {} categories, depth {}",
        tax.num_leaves(),
        tax.num_categories(),
        tax.max_depth()
    );

    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.02),
        min_ri: 0.4,
        ..MinerConfig::default()
    };
    let outcome = NegativeMiner::new(config)
        .mine(&ds.db, tax)
        .expect("mining failed");
    let rep = &outcome.report;
    println!(
        "mined in {:?}: {} passes, {} large itemsets, {} negative candidates, {} negatives",
        rep.mining_time,
        rep.passes,
        rep.large_itemsets,
        rep.candidates.unique,
        rep.negative_itemsets,
    );

    // Positive rules from the same large itemsets, for contrast — filtered
    // with Srikant & Agrawal's R-interest measure (the paper's §1.2
    // "closest work"): rules already predicted by an ancestor rule are
    // dropped.
    let positive = generate_rules(&outcome.large, 0.6);
    let judged = negassoc::positive::r_interesting(positive, &outcome.large, tax, 1.1)
        .expect("R-interest filtering");
    let kept = judged.iter().filter(|j| j.interesting).count();
    println!(
        "\npositive rules: {} raw, {} survive R-interest pruning (R = 1.1)",
        judged.len(),
        kept
    );
    let positive: Vec<_> = judged
        .into_iter()
        .filter(|j| j.interesting)
        .map(|j| j.rule)
        .collect();
    println!("\n== top positive rules (confidence >= 0.6, R-interesting) ==");
    let mut pos = positive;
    pos.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.cmp(&a.support))
    });
    for r in pos.iter().take(8) {
        let lhs: Vec<&str> = r.antecedent.items().iter().map(|&i| tax.name(i)).collect();
        let rhs: Vec<&str> = r.consequent.items().iter().map(|&i| tax.name(i)).collect();
        println!(
            "  {} => {}  (conf {:.2}, sup {})",
            lhs.join(" + "),
            rhs.join(" + "),
            r.confidence,
            r.support
        );
    }

    println!("\n== top negative rules (RI >= 0.4) ==");
    let mut neg = outcome.rules;
    neg.sort_by(|a, b| b.ri.total_cmp(&a.ri));
    for r in neg.iter().take(12) {
        let lhs: Vec<&str> = r.antecedent.items().iter().map(|&i| tax.name(i)).collect();
        let rhs: Vec<&str> = r.consequent.items().iter().map(|&i| tax.name(i)).collect();
        println!(
            "  {} =/=> {}  (RI {:.2}, expected {:.0}, saw {})",
            lhs.join(" + "),
            rhs.join(" + "),
            r.ri,
            r.expected,
            r.actual
        );
    }
    if neg.is_empty() {
        println!("  (none at this threshold — try lowering min_ri)");
    }

    println!(
        "\nInterpretation: a negative rule \"A =/=> B\" flags that customers \
         buying A avoid B far more than the taxonomy suggests — a substitution \
         or brand-loyalty effect worth a merchandising look."
    );
}
