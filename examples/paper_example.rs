//! Reproduces the paper's worked example (§2.1.3, Tables 1 and 2): the
//! frozen-yogurt / bottled-water taxonomy of Figure 2, the published brand
//! supports, the candidate negative itemsets with their expected supports,
//! and the single resulting rule `Perrier ≠> Bryers`.
//!
//! Supports are injected (the published numbers are not exactly realizable
//! as a concrete database; see DESIGN.md "Paper ambiguities" — the water
//! brand supports are the corrected 12,000 / 8,000 that make Table 2
//! internally consistent).
//!
//! Run with `cargo run -p negassoc --example paper_example`.

use negassoc::candidates::{CandidateGenerator, CandidateSet};
use negassoc::expected::is_negative;
use negassoc::rules::generate_negative_rules;
use negassoc::NegativeItemset;
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::TaxonomyBuilder;

const MIN_SUP: u64 = 4_000;
const MIN_RI: f64 = 0.4;

fn main() {
    let mut b = TaxonomyBuilder::new();
    let beverages = b.add_root("beverages");
    let water = b.add_child(beverages, "bottled water").unwrap();
    let perrier = b.add_child(water, "Perrier").unwrap();
    let evian = b.add_child(water, "Evian").unwrap();
    let desserts = b.add_root("desserts");
    let yogurt = b.add_child(desserts, "frozen yogurt").unwrap();
    let bryers = b.add_child(yogurt, "Bryers").unwrap();
    let hc = b.add_child(yogurt, "Healthy Choice").unwrap();
    let tax = b.build();

    println!(
        "Taxonomy (paper Figure 2):\n{}",
        negassoc_taxonomy::render::to_ascii(&tax)
    );

    // Table 1 (with the corrected water-brand supports).
    let supports = [
        (bryers, 20_000u64),
        (hc, 10_000),
        (evian, 12_000),
        (perrier, 8_000),
        (yogurt, 30_000),
        (water, 20_000),
    ];
    let mut large = LargeItemsets::new(1_000_000, MIN_SUP);
    println!("Table 1 — supports:");
    for (item, sup) in supports {
        println!("  {:<16} {:>7}", tax.name(item), sup);
        large.insert(Itemset::singleton(item), sup);
    }
    let seed = Itemset::from_unsorted(vec![yogurt, water]);
    large.insert(seed.clone(), 15_000);
    println!("  {:<16} {:>7}", "yogurt & water", 15_000);
    large.insert(Itemset::from_unsorted(vec![bryers, evian]), 7_500);
    large.insert(Itemset::from_unsorted(vec![hc, evian]), 4_200);

    // Candidates from the large itemset {frozen yogurt, bottled water}.
    let generator = CandidateGenerator::new(&tax, &large, MIN_RI);
    let mut set = CandidateSet::new();
    generator
        .extend_from_itemset(&seed, 15_000, &mut set)
        .expect("candidate generation");
    let (cands, _) = set.into_candidates();

    // Table 2 actual supports for the surviving candidates.
    let actual_of = |s: &Itemset| -> u64 {
        if *s == Itemset::from_unsorted(vec![bryers, perrier]) {
            500
        } else if *s == Itemset::from_unsorted(vec![hc, perrier]) {
            2_500
        } else {
            0
        }
    };

    println!("\nTable 2 — candidate negative itemsets:");
    println!("  {:<34} {:>9} {:>9}", "itemset", "expected", "actual");
    let mut negatives: Vec<NegativeItemset> = Vec::new();
    let mut sorted = cands;
    sorted.sort_by(|a, b| a.itemset.cmp(&b.itemset));
    for c in sorted {
        // The paper's table only discusses the brand-level pairs.
        if !c.itemset.items().iter().all(|&i| tax.is_leaf(i)) {
            continue;
        }
        let names: Vec<&str> = c.itemset.items().iter().map(|&i| tax.name(i)).collect();
        let actual = actual_of(&c.itemset);
        println!(
            "  {:<34} {:>9.0} {:>9}",
            names.join(" & "),
            c.expected,
            actual
        );
        if is_negative(c.expected, actual, MIN_SUP, MIN_RI) {
            negatives.push(NegativeItemset {
                itemset: c.itemset,
                expected: c.expected,
                actual,
                derivation: Some(c.derivation),
            });
        }
    }

    println!(
        "\nNegative itemsets (deviation >= MinSup * MinRI = {:.0}):",
        MIN_SUP as f64 * MIN_RI
    );
    for n in &negatives {
        let names: Vec<&str> = n.itemset.items().iter().map(|&i| tax.name(i)).collect();
        println!("  {{{}}}", names.join(", "));
    }

    let rules = generate_negative_rules(&negatives, &large, MIN_RI).expect("rule generation");
    println!("\nNegative rules at MinRI = {MIN_RI}:");
    for r in &rules {
        let lhs: Vec<&str> = r.antecedent.items().iter().map(|&i| tax.name(i)).collect();
        let rhs: Vec<&str> = r.consequent.items().iter().map(|&i| tax.name(i)).collect();
        println!(
            "  {} =/=> {}   (RI {:.4})",
            lhs.join(" + "),
            rhs.join(" + "),
            r.ri
        );
    }
    assert_eq!(rules.len(), 1, "the paper's conclusion: exactly one rule");
    println!("\nMatches the paper: the only rule is Perrier =/=> Bryers.");
}
