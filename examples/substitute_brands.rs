//! The paper's §4.1 future-work extension in action: *substitute-item
//! knowledge* beyond the taxonomy.
//!
//! The taxonomy only relates items under the same parent. But a category
//! manager knows that, say, cola and orange juice compete for the same
//! lunch-combo slot even though they live in different departments.
//! Declaring them substitutes lets the miner derive an expected support for
//! {orange juice, chips} from the observed {cola, chips} association — and
//! flag its absence as a negative rule.
//!
//! Run with `cargo run -p negassoc --example substitute_brands`.

use negassoc::substitutes::SubstituteKnowledge;
use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_taxonomy::TaxonomyBuilder;
use negassoc_txdb::TransactionDbBuilder;

fn main() {
    let mut tb = TaxonomyBuilder::new();
    let sodas = tb.add_root("sodas");
    let cola = tb.add_child(sodas, "cola").unwrap();
    let lemonade = tb.add_child(sodas, "lemonade").unwrap();
    let juices = tb.add_root("juices");
    let orange = tb.add_child(juices, "orange juice").unwrap();
    let apple = tb.add_child(juices, "apple juice").unwrap();
    let snacks = tb.add_root("snacks");
    let chips = tb.add_child(snacks, "chips").unwrap();
    let tax = tb.build();

    // Lunch-combo data: cola + chips is the classic; juice buyers skip
    // chips entirely, so no taxonomy sibling of orange juice can induce an
    // expectation for {orange juice, chips} — only the declared substitute
    // relation to cola can.
    let mut db = TransactionDbBuilder::new();
    for _ in 0..50 {
        db.add([cola, chips]);
    }
    for _ in 0..25 {
        db.add([orange]);
    }
    for _ in 0..15 {
        db.add([apple]);
    }
    for _ in 0..15 {
        db.add([lemonade, chips]);
    }
    let db = db.build();

    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.1),
        min_ri: 0.3,
        ..MinerConfig::default()
    };

    let print_rules = |label: &str, outcome: &negassoc::MiningOutcome| {
        println!("== {label} ==");
        if outcome.rules.is_empty() {
            println!("  (no negative rules)");
        }
        for r in &outcome.rules {
            let lhs: Vec<&str> = r.antecedent.items().iter().map(|&i| tax.name(i)).collect();
            let rhs: Vec<&str> = r.consequent.items().iter().map(|&i| tax.name(i)).collect();
            println!(
                "  {} =/=> {}  (RI {:.2})",
                lhs.join(" + "),
                rhs.join(" + "),
                r.ri
            );
        }
        println!();
    };

    // Taxonomy only: cola's siblings are sodas, so orange juice is out of
    // reach for candidate generation.
    let plain = NegativeMiner::new(config).mine(&db, &tax).unwrap();
    print_rules("taxonomy knowledge only", &plain);

    // Declare the cross-department substitution.
    let mut subs = SubstituteKnowledge::new();
    subs.add_group([cola, orange]);
    let informed = NegativeMiner::new(config)
        .mine_with_substitutes(&db, &tax, Some(&subs))
        .unwrap();
    print_rules("with cola ~ orange-juice substitute knowledge", &informed);

    let found = informed
        .rules
        .iter()
        .any(|r| r.antecedent.contains(orange) || r.consequent.contains(orange));
    assert!(
        found,
        "substitute knowledge should surface an orange-juice rule"
    );
    println!(
        "The substitute declaration surfaced {} additional negative itemset(s).",
        informed.negatives.len() - plain.negatives.len()
    );
}
