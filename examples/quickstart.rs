//! Quickstart: build a tiny taxonomy and transaction database, mine
//! negative association rules, and print everything the miner reports.
//!
//! Run with `cargo run -p negassoc --example quickstart`.

use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_taxonomy::TaxonomyBuilder;
use negassoc_txdb::TransactionDbBuilder;

fn main() {
    // Domain knowledge: a taxonomy grouping substitutable products.
    //   soft drinks -> {Coke, Pepsi}
    //   snacks      -> {Ruffles, Lays}
    let mut tb = TaxonomyBuilder::new();
    let drinks = tb.add_root("soft drinks");
    let coke = tb.add_child(drinks, "Coke").unwrap();
    let pepsi = tb.add_child(drinks, "Pepsi").unwrap();
    let snacks = tb.add_root("snacks");
    let ruffles = tb.add_child(snacks, "Ruffles").unwrap();
    let lays = tb.add_child(snacks, "Lays").unwrap();
    let tax = tb.build();

    // Checkout data: Ruffles sells with Coke, almost never with Pepsi —
    // the paper's motivating Example 1.
    let mut db = TransactionDbBuilder::new();
    for _ in 0..40 {
        db.add([ruffles, coke]);
    }
    for _ in 0..25 {
        db.add([coke]);
    }
    for _ in 0..30 {
        db.add([pepsi]);
    }
    for _ in 0..5 {
        db.add([ruffles, pepsi]);
    }
    for _ in 0..20 {
        db.add([lays, pepsi]);
    }
    let db = db.build();

    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.10),
        min_ri: 0.3,
        ..MinerConfig::default()
    };
    let outcome = NegativeMiner::new(config)
        .mine(&db, &tax)
        .expect("mining failed");

    println!("== generalized large itemsets ==");
    for k in 1..=outcome.large.max_level() {
        for (set, sup) in outcome.large.level(k) {
            let names: Vec<&str> = set.items().iter().map(|&i| tax.name(i)).collect();
            println!("  {{{}}}  support {}", names.join(", "), sup);
        }
    }

    println!("\n== negative itemsets (expected >> actual) ==");
    for n in &outcome.negatives {
        let names: Vec<&str> = n.itemset.items().iter().map(|&i| tax.name(i)).collect();
        println!(
            "  {{{}}}  expected {:.1}, actual {}",
            names.join(", "),
            n.expected,
            n.actual
        );
    }

    println!("\n== negative association rules ==");
    for r in &outcome.rules {
        let lhs: Vec<&str> = r.antecedent.items().iter().map(|&i| tax.name(i)).collect();
        let rhs: Vec<&str> = r.consequent.items().iter().map(|&i| tax.name(i)).collect();
        println!(
            "  {} =/=> {}   (RI {:.3})",
            lhs.join(" + "),
            rhs.join(" + "),
            r.ri
        );
        // Every rule is auditable: the expectation came from a concrete
        // positive association plus one substitution case.
        if let Some(d) = &r.derivation {
            let seed: Vec<&str> = d.seed.items().iter().map(|&i| tax.name(i)).collect();
            println!(
                "      because {{{}}} is large (support {}) and {:?} substitution predicted {:.1}",
                seed.join(", "),
                d.seed_support,
                d.case,
                r.expected
            );
        }
    }

    let rep = &outcome.report;
    println!(
        "\n{} passes, {} large itemsets, {} candidates, {} negatives, {} rules",
        rep.passes, rep.large_itemsets, rep.candidates.unique, rep.negative_itemsets, rep.rules
    );
}
