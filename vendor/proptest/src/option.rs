//! `Option<T>` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some(value)` with probability `prob`, `None` otherwise.
pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
    assert!(
        (0.0..=1.0).contains(&prob),
        "probability out of range: {prob}"
    );
    Weighted { prob, inner }
}

/// `Some(value)` half the time.
pub fn of<S: Strategy>(inner: S) -> Weighted<S> {
    weighted(0.5, inner)
}

/// See [`weighted`].
pub struct Weighted<S> {
    prob: f64,
    inner: S,
}

impl<S: Strategy> Strategy for Weighted<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.unit_f64() < self.prob {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_respects_probability_roughly() {
        let mut rng = TestRng::from_seed(31);
        let s = weighted(0.7, 0u32..10);
        let some = (0..10_000)
            .filter(|_| s.generate(&mut rng).is_some())
            .count();
        assert!((6_500..7_500).contains(&some), "somes {some}");
    }
}
