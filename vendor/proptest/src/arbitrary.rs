//! `any::<T>()` — the whole-domain strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates() {
        let mut rng = TestRng::from_seed(8);
        let _: u64 = any::<u64>().generate(&mut rng);
        let _: bool = any::<bool>().generate(&mut rng);
        let f = any::<f64>().generate(&mut rng);
        assert!((0.0..1.0).contains(&f));
    }
}
