//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of proptest its property tests use: the [`proptest!`] macro,
//! [`prelude`], integer-range / collection / option strategies, tuple
//! composition, `prop_map` / `prop_flat_map`, and the `prop_assert*!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (every strategy value is `Debug`); minimization is
//!   manual.
//! * **Deterministic seeding.** Each test derives its RNG stream from the
//!   test's name and the case index, so failures reproduce exactly across
//!   runs and machines.
//! * **No failure persistence files.**

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod option;

/// The `prop::` namespace (`prop::collection::vec(...)` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skip the current case when the assumption does not hold.
///
/// The generated body runs inside a per-case closure, so rejecting a case
/// is an early return; unlike real proptest, rejected cases still count
/// toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert inside a property test; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The property-test entry point:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn sums_commute(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each listed function expands to a zero-argument `#[test]` that runs the
/// body `cases` times with fresh strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let salt = $crate::test_runner::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(salt, case);
                    let run = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &$strat,
                                    &mut rng,
                                );
                            )+
                            $body
                        }),
                    );
                    if let Err(panic) = run {
                        eprintln!(
                            "proptest {}: case {}/{} failed (salt {:#x})",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            salt,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
