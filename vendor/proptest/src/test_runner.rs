//! Test configuration and the deterministic per-case RNG.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over a string — salts the RNG stream per test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The RNG strategies draw from: xoshiro256++ seeded via SplitMix64.
///
/// Deliberately deterministic — a failing case reproduces exactly given the
/// test name and case index printed in the failure banner.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for one (test, case) pair.
    pub fn for_case(salt: u64, case: u32) -> Self {
        Self::from_seed(salt ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// An RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case(fnv1a("t"), 3);
        let mut b = TestRng::for_case(fnv1a("t"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(fnv1a("t"), 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
