//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as u64 - lo as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let a = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&a));
            let b = (0usize..=3).generate(&mut rng);
            assert!(b <= 3);
            let c = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&c));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_seed(4);
        let s = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let fm = (1u64..4).prop_flat_map(|n| (0u64..n).prop_map(move |x| (n, x)));
        for _ in 0..100 {
            let (n, x) = fm.generate(&mut rng);
            assert!(x < n);
        }
        let t = (0u32..5, Just("fixed")).generate(&mut rng);
        assert!(t.0 < 5 && t.1 == "fixed");
    }
}
