//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies: an exact length, `a..b`,
/// or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min <= self.max, "empty size range");
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with cardinalities drawn from `size`.
///
/// Duplicates are redrawn a bounded number of times; when the element
/// domain is smaller than the requested cardinality the set comes out
/// smaller rather than looping forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 20 * target + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Strategy for `BTreeMap<K, V>` with cardinalities drawn from `size`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 20 * target + 100 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements() {
        let mut rng = TestRng::from_seed(21);
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let mut rng = TestRng::from_seed(22);
        let s = btree_set(0u32..1000, 3..6);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!((3..6).contains(&set.len()));
        }
        // Domain of 2 values cannot yield 5 distinct elements.
        let tiny = btree_set(0u32..2, 5usize);
        assert!(tiny.generate(&mut rng).len() <= 2);
    }

    #[test]
    fn btree_map_generates() {
        let mut rng = TestRng::from_seed(23);
        let s = btree_map(0u32..50, 0u64..9, 1..4);
        let m = s.generate(&mut rng);
        assert!((1..4).contains(&m.len()));
    }
}
