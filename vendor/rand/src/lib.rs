//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace vendors the *small, deterministic* subset of the rand 0.10 API
//! it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm rand's 64-bit
//!   `SmallRng` uses), seeded through SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random`] for `f64` in `[0, 1)`, the integer types and `bool`.
//!
//! Determinism matters more than statistical perfection here: the datagen
//! crate derives every synthetic dataset from explicit seeds, and the test
//! suite pins moments of the derived distributions.

/// A source of random 64-bit words. Object-safe; everything else is derived.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a stream of random words.
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draw a value of type `T` from the standard distribution (`f64` is
    /// uniform in `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    fn random_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "random_below bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias is
        // irrelevant at the bounds this workspace uses.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into well-mixed words for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // An all-zero state is a fixed point of xoshiro; SplitMix64
            // cannot produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_and_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
        for _ in 0..1_000 {
            assert!(rng.random_below(13) < 13);
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
