//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of the criterion 0.5 API the workspace benches use
//! — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a
//! simple median-of-samples timer instead of criterion's full statistics
//! pipeline. Good enough to keep `cargo bench` runnable and to compare
//! implementations by eye; not a substitute for real criterion output.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on measurement time. Accepted for API compatibility;
    /// the stub's cost model is per-sample, so this is a no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` with `input` under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark `f` under a plain string id.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `{function}/{parameter}`.
    pub fn new(function: impl Into<String>, parameter: impl ToString) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter.to_string()),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` executions of `payload` (after one warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        std::hint::black_box(payload()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(payload());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "  {label}: median {median:?} (min {min:?}, max {max:?}, {} samples)",
        b.samples.len()
    );
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("stub");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("add", 2), &2u64, |b, &n| {
                b.iter(|| n + 1);
            });
            g.bench_function("mul", |b| b.iter(|| 3u64 * 3));
            g.finish();
        }
        c.bench_function("top", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }
}
