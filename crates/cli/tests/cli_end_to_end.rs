//! End-to-end test of the `negrules` binary: generate → stats → mine →
//! negatives, all through the real CLI entry points.

use std::path::PathBuf;
use std::process::Command;

fn negrules() -> Command {
    Command::new(env!("CARGO_BIN_EXE_negrules"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("negrules-e2e-{}-{name}", std::process::id()))
}

#[test]
fn full_pipeline() {
    let data = tmp("d.nadb");
    let tax = tmp("t.txt");

    // generate
    let out = negrules()
        .args([
            "generate",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
            "--transactions",
            "800",
            "--items",
            "150",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote 800 transactions"), "{stdout}");

    // stats
    let out = negrules()
        .args([
            "stats",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("transactions:      800"), "{stdout}");
    assert!(stdout.contains("taxonomy:"), "{stdout}");

    // mine (positive rules)
    let out = negrules()
        .args([
            "mine",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--min-conf",
            "0.5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("generalized large itemsets"), "{stdout}");

    // negatives
    let out = negrules()
        .args([
            "negatives",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--min-ri",
            "0.4",
            "--driver",
            "improved",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("negative rules at RI >= 0.4"), "{stdout}");

    // naive driver and no-compress agree structurally (exit 0, same header)
    let out = negrules()
        .args([
            "negatives",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--driver",
            "naive",
            "--no-compress",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // CSV export writes a header plus one line per rule.
    let csv = tmp("rules.csv");
    let out = negrules()
        .args([
            "negatives",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--min-ri",
            "0.3",
            "--out",
            csv.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&csv).unwrap();
    assert!(body.starts_with("antecedent,consequent,ri,expected,actual"));
    std::fs::remove_file(&csv).ok();

    // Positive mining with the partition algorithm and R-interest pruning.
    let out = negrules()
        .args([
            "mine",
            "--data",
            data.to_str().unwrap(),
            "--taxonomy",
            tax.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--algorithm",
            "partition",
            "--partitions",
            "3",
            "--r-interest",
            "1.2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R-interest pruning"), "{stdout}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&tax).ok();
}

#[test]
fn helpful_errors() {
    // No command: usage on stderr, exit 2.
    let out = negrules().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("negrules"));

    // Unknown command: usage error, exit 2.
    let out = negrules().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required option: usage error, exit 2.
    let out = negrules().args(["stats"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));

    // Unknown option is rejected (exit 2), not ignored.
    let out = negrules()
        .args(["stats", "--data", "x", "--bogus", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));

    // A bad --deadline is a usage error too.
    let out = negrules()
        .args([
            "negatives",
            "--data",
            "x",
            "--taxonomy",
            "y",
            "--deadline",
            "-3",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deadline"));

    // Help works.
    let out = negrules().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("negatives"));
}
