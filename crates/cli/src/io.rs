//! Shared file loading for the CLI: transaction databases (binary `.nadb`
//! or whitespace text) and taxonomies (the tab-separated text format).

use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::TransactionDb;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Load a transaction database, choosing the format by extension
/// (`.nadb` = binary, anything else = text).
pub(crate) fn load_db(path: &str) -> Result<TransactionDb, String> {
    let p = Path::new(path);
    if p.extension().is_some_and(|e| e == "nadb") {
        negassoc_txdb::binfmt::load(p).map_err(|e| format!("{path}: {e}"))
    } else {
        let f = File::open(p).map_err(|e| format!("{path}: {e}"))?;
        negassoc_txdb::textfmt::read_db(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
    }
}

/// Save a transaction database, format by extension as in [`load_db`].
pub(crate) fn save_db(db: &TransactionDb, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    if p.extension().is_some_and(|e| e == "nadb") {
        negassoc_txdb::binfmt::save(db, p).map_err(|e| format!("{path}: {e}"))
    } else {
        let f = File::create(p).map_err(|e| format!("{path}: {e}"))?;
        negassoc_txdb::textfmt::write_db(db, f).map_err(|e| format!("{path}: {e}"))
    }
}

/// Load a taxonomy from the text format.
pub(crate) fn load_taxonomy(path: &str) -> Result<Taxonomy, String> {
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    negassoc_taxonomy::textfmt::read_taxonomy(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

/// Save a taxonomy in the text format.
pub(crate) fn save_taxonomy(tax: &Taxonomy, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    negassoc_taxonomy::textfmt::write_taxonomy(tax, f).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::{ItemId, TaxonomyBuilder};
    use negassoc_txdb::TransactionDbBuilder;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("negrules-io-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn db_round_trips_both_formats() {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1), ItemId(2)]);
        b.add([ItemId(3)]);
        let db = b.build();
        for name in ["t.nadb", "t.txt"] {
            let path = tmp(name);
            save_db(&db, &path).unwrap();
            let back = load_db(&path).unwrap();
            assert_eq!(back.len(), 2);
            assert_eq!(back.get(0).items(), db.get(0).items());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn taxonomy_round_trips() {
        let mut b = TaxonomyBuilder::new();
        let r = b.add_root("root");
        b.add_child(r, "leaf").unwrap();
        let tax = b.build();
        let path = tmp("tax.txt");
        save_taxonomy(&tax, &path).unwrap();
        let back = load_taxonomy(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_error_with_path() {
        let err = load_db("/nonexistent/x.nadb").unwrap_err();
        assert!(err.contains("/nonexistent/x.nadb"));
        let err = load_taxonomy("/nonexistent/t.txt").unwrap_err();
        assert!(err.contains("t.txt"));
    }
}
