//! Shared file loading for the CLI: transaction databases (binary `.nadb`
//! or whitespace text) and taxonomies (the tab-separated text format).
//!
//! Binary load failures are rendered format-aware: a checksum mismatch
//! names the corrupt block and points at `--salvage` instead of printing a
//! bare I/O error.

use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::binfmt::CorruptBlock;
use negassoc_txdb::fault::RetryPolicy;
use negassoc_txdb::obs::{Event, Obs};
use negassoc_txdb::shard::{ShardLoadError, ShardMode, ShardedSource};
use negassoc_txdb::TransactionDb;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Load a transaction database, choosing the format by extension
/// (`.nadb` = binary, anything else = text). Without `salvage` the load is
/// strict: any corruption is an error. With `salvage`, corrupt blocks in a
/// `.nadb` file are skipped and the exact losses (block indices and TID
/// ranges) are reported on stderr instead of failing the load.
pub(crate) fn load_db_opts(path: &str, salvage: bool) -> Result<TransactionDb, String> {
    load_db_observed(path, salvage, &Obs::disabled())
}

/// [`load_db_opts`] with an observer: a salvage load reports what it kept
/// and dropped as an [`Event::Salvage`].
pub(crate) fn load_db_observed(
    path: &str,
    salvage: bool,
    obs: &Obs,
) -> Result<TransactionDb, String> {
    let p = Path::new(path);
    if p.extension().is_some_and(|e| e == "nadb") {
        if salvage {
            let (db, report) =
                negassoc_txdb::binfmt::load_salvage(p).map_err(|e| format!("{path}: {e}"))?;
            obs.emit(|| Event::Salvage {
                kept: report.recovered,
                dropped: report.lost_transactions(),
            });
            if !report.is_clean() {
                eprint!("{path}: {report}");
            }
            Ok(db)
        } else {
            negassoc_txdb::binfmt::load(p).map_err(|e| describe_nadb_error(path, &e))
        }
    } else {
        if salvage {
            eprintln!(
                "{path}: --salvage only applies to .nadb files; reading the text format strictly"
            );
        }
        let f = File::open(p).map_err(|e| format!("{path}: {e}"))?;
        negassoc_txdb::textfmt::read_db(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
    }
}

/// Render a strict `.nadb` load failure, pointing corrupted-but-framed
/// files at `--salvage`.
fn describe_nadb_error(path: &str, e: &std::io::Error) -> String {
    let Some(c) = e
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<CorruptBlock>())
    else {
        return format!("{path}: {e}");
    };
    if c.header_corrupt {
        format!(
            "{path}: {c} — framing beyond this block is untrustworthy; \
             rerun with `--salvage` to recover everything before it"
        )
    } else {
        format!(
            "{path}: {c} — rerun with `--salvage` to recover the intact \
             blocks (lost TIDs are reported exactly)"
        )
    }
}

/// Open a sharded database behind a `--manifest` file. Without `salvage`
/// the open is strict — any shard failing verification fails the load,
/// with the hint naming the offending *shard* path. With `salvage`,
/// failing shards are salvaged when possible and quarantined otherwise;
/// the caller decides how to report the source's quarantine and salvage
/// state.
pub(crate) fn load_manifest_observed(
    path: &str,
    salvage: bool,
    obs: &Obs,
) -> Result<ShardedSource, String> {
    let mode = if salvage {
        ShardMode::Degrade
    } else {
        ShardMode::Strict
    };
    ShardedSource::open_with(path, mode, RetryPolicy::default(), obs.clone())
        .map_err(|e| describe_manifest_error(path, &e))
}

/// Render a strict manifest open failure. A shard-level failure names the
/// shard file — not just the manifest — so the operator knows *which* of
/// the N files is damaged, and points at `--salvage` to quarantine it and
/// mine the rest.
fn describe_manifest_error(path: &str, e: &std::io::Error) -> String {
    let Some(sle) = e
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<ShardLoadError>())
    else {
        return format!("{path}: {e}");
    };
    let corrupt = sle
        .error
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<CorruptBlock>());
    match corrupt {
        Some(c) => format!(
            "{path}: shard {} ({}): {c} — rerun with `--salvage` to salvage \
             or quarantine this shard and mine the remaining shards to \
             completion",
            sle.index,
            sle.path.display()
        ),
        None => format!(
            "{path}: {sle} — rerun with `--salvage` to degrade around the \
             failing shard instead of stopping"
        ),
    }
}

/// Save a transaction database, format by extension as in [`load_db_opts`].
pub(crate) fn save_db(db: &TransactionDb, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    if p.extension().is_some_and(|e| e == "nadb") {
        negassoc_txdb::binfmt::save(db, p).map_err(|e| format!("{path}: {e}"))
    } else {
        let f = File::create(p).map_err(|e| format!("{path}: {e}"))?;
        negassoc_txdb::textfmt::write_db(db, f).map_err(|e| format!("{path}: {e}"))
    }
}

/// Load a taxonomy from the text format.
pub(crate) fn load_taxonomy(path: &str) -> Result<Taxonomy, String> {
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    negassoc_taxonomy::textfmt::read_taxonomy(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

/// Save a taxonomy in the text format.
pub(crate) fn save_taxonomy(tax: &Taxonomy, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    negassoc_taxonomy::textfmt::write_taxonomy(tax, f).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::{ItemId, TaxonomyBuilder};
    use negassoc_txdb::TransactionDbBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A uniquely named temp file, removed on drop (even when the test
    /// panics), so concurrent test runs never collide or leak.
    struct TmpFile(String);

    impl TmpFile {
        fn new(name: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            Self(
                std::env::temp_dir()
                    .join(format!("negrules-io-{}-{n}-{name}", std::process::id()))
                    .to_string_lossy()
                    .into_owned(),
            )
        }

        fn path(&self) -> &str {
            &self.0
        }
    }

    impl Drop for TmpFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn small_db() -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1), ItemId(2)]);
        b.add([ItemId(3)]);
        b.build()
    }

    #[test]
    fn db_round_trips_both_formats() {
        let db = small_db();
        for name in ["t.nadb", "t.txt"] {
            let tmp = TmpFile::new(name);
            save_db(&db, tmp.path()).unwrap();
            let back = load_db_opts(tmp.path(), false).unwrap();
            assert_eq!(back.len(), 2);
            assert_eq!(back.get(0).items(), db.get(0).items());
        }
    }

    #[test]
    fn taxonomy_round_trips() {
        let mut b = TaxonomyBuilder::new();
        let r = b.add_root("root");
        b.add_child(r, "leaf").unwrap();
        let tax = b.build();
        let tmp = TmpFile::new("tax.txt");
        save_taxonomy(&tax, tmp.path()).unwrap();
        let back = load_taxonomy(tmp.path()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn missing_files_error_with_path() {
        let err = load_db_opts("/nonexistent/x.nadb", false).unwrap_err();
        assert!(err.contains("/nonexistent/x.nadb"));
        let err = load_taxonomy("/nonexistent/t.txt").unwrap_err();
        assert!(err.contains("t.txt"));
    }

    #[test]
    fn corrupt_nadb_error_names_the_block_and_suggests_salvage() {
        let tmp = TmpFile::new("corrupt.nadb");
        save_db(&small_db(), tmp.path()).unwrap();
        // Flip a payload byte (the last byte of the file sits inside the
        // single block's payload).
        let mut bytes = std::fs::read(tmp.path()).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        std::fs::write(tmp.path(), &bytes).unwrap();

        let err = load_db_opts(tmp.path(), false).unwrap_err();
        assert!(err.contains("checksum mismatch in block 0"), "{err}");
        assert!(err.contains("--salvage"), "{err}");

        // Salvage mode recovers what it can (here: nothing intact remains,
        // but the load itself must not fail).
        let db = load_db_opts(tmp.path(), true).unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn strict_manifest_error_names_the_offending_shard() {
        use negassoc_txdb::shard::write_sharded;

        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("negrules-io-manifest-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("db.manifest");
        let mut b = TransactionDbBuilder::new();
        for i in 0..9 {
            b.add([ItemId(i), ItemId(i + 1)]);
        }
        let written = write_sharded(&b.build(), &manifest, 3).unwrap();
        // Corrupt a payload byte of shard 1 (past the 13-byte file header
        // and 32-byte block header).
        let victim = written.shard_path(1);
        let mut bytes = std::fs::read(&victim).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();

        let path = manifest.to_string_lossy().into_owned();
        let err = load_manifest_observed(&path, false, &Obs::disabled()).unwrap_err();
        // The hint names the shard file, not just the manifest.
        assert!(err.contains("db-shard-001.nadb"), "{err}");
        assert!(err.contains("shard 1"), "{err}");
        assert!(err.contains("--salvage"), "{err}");

        // Degraded open succeeds and quarantines the damaged shard (a
        // single-block shard salvages to nothing).
        let src = load_manifest_observed(&path, true, &Obs::disabled()).unwrap();
        assert_eq!(src.quarantine().shards.len(), 1);
        assert_eq!(src.quarantine().shards[0].index, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_flag_is_harmless_on_clean_files() {
        let tmp = TmpFile::new("clean.nadb");
        save_db(&small_db(), tmp.path()).unwrap();
        let db = load_db_opts(tmp.path(), true).unwrap();
        assert_eq!(db.len(), 2);
    }
}
