//! The CLI's exit-code contract.
//!
//! | code | meaning                                                |
//! |------|--------------------------------------------------------|
//! | 0    | run completed                                          |
//! | 1    | run failed                                             |
//! | 2    | usage error (bad command line)                         |
//! | 3    | interrupted cooperatively (SIGINT, `--deadline`, stall) |
//!
//! Exit 3 means the run stopped cleanly at a pass boundary; when a
//! `--checkpoint-dir` was given the message names the directory to resume
//! from, and re-running the same command finishes the job with output
//! identical to an uninterrupted run.

use crate::opts::OptError;

/// A command failure, tagged with the exit code it maps to.
#[derive(Debug)]
pub(crate) enum CliError {
    /// Bad arguments — exit 2.
    Usage(String),
    /// The run failed — exit 1.
    Failure(String),
    /// The run was cancelled cooperatively — exit 3. The message carries
    /// the reason, completeness, and (when available) how to resume.
    Interrupted(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub(crate) fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failure(_) => 1,
            CliError::Interrupted(_) => 3,
        }
    }

    /// The human-readable message (printed to stderr).
    pub(crate) fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Failure(m) | CliError::Interrupted(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failure(msg)
    }
}

impl From<OptError> for CliError {
    fn from(e: OptError) -> Self {
        CliError::Usage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(CliError::Usage("u".into()).exit_code(), 2);
        assert_eq!(CliError::Failure("f".into()).exit_code(), 1);
        assert_eq!(CliError::Interrupted("i".into()).exit_code(), 3);
    }

    #[test]
    fn conversions_pick_the_right_class() {
        let from_string: CliError = String::from("boom").into();
        assert!(matches!(from_string, CliError::Failure(_)));
        let from_opt: CliError = OptError::Unknown("nope".into()).into();
        assert!(matches!(from_opt, CliError::Usage(_)));
        assert!(from_opt.message().contains("--nope"));
    }
}
