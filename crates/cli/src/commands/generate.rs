//! `negrules generate` — synthesize a dataset with the §3.1 generator.

use crate::exit::CliError;
use crate::io::{save_db, save_taxonomy};
use crate::opts::Opts;
use negassoc_datagen::{generate, presets, GenParams};

const KNOWN: &[&str] = &[
    "data",
    "taxonomy",
    "preset",
    "transactions",
    "items",
    "roots",
    "fanout",
    "clusters",
    "avg-len",
    "seed",
    "shards",
];

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let data_path = opts.require("data")?;
    let tax_path = opts.require("taxonomy")?;

    let mut params: GenParams = match opts.get("preset") {
        None => GenParams::default(),
        Some("short") => presets::short(),
        Some("tall") => presets::tall(),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown preset {other:?} (short|tall)"
            )))
        }
    };
    macro_rules! override_param {
        ($key:literal, $field:ident, $ty:ty) => {
            if let Some(v) = opts.get($key) {
                params.$field = v
                    .parse::<$ty>()
                    .map_err(|_| CliError::Usage(format!("invalid --{}: {v:?}", $key)))?;
            }
        };
    }
    override_param!("transactions", num_transactions, usize);
    override_param!("items", num_items, usize);
    override_param!("roots", num_roots, usize);
    override_param!("fanout", fanout, f64);
    override_param!("clusters", num_clusters, usize);
    override_param!("avg-len", avg_transaction_len, f64);
    override_param!("seed", seed, u64);

    let shards: Option<usize> = match opts.get("shards") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                return Err(CliError::Usage(format!(
                    "invalid --shards {v:?} (a positive shard count)"
                )))
            }
        },
    };

    let ds = generate(&params);
    save_taxonomy(&ds.taxonomy, tax_path)?;
    save_db(&ds.db, data_path)?;
    println!(
        "wrote {} transactions to {data_path} and a taxonomy of {} items \
         ({} leaves, depth {}) to {tax_path}",
        ds.db.len(),
        ds.taxonomy.len(),
        ds.taxonomy.num_leaves(),
        ds.taxonomy.max_depth()
    );
    if let Some(n) = shards {
        // Also emit the sharded layout: N shard files plus the checksummed
        // manifest, for `negatives --manifest` and the chaos fixtures.
        let manifest_path = std::path::Path::new(data_path).with_extension("manifest");
        let manifest = negassoc_datagen::sharding::write_sharded_fixture(&ds.db, &manifest_path, n)
            .map_err(|e| CliError::Failure(format!("{}: {e}", manifest_path.display())))?;
        println!(
            "split into {} shards behind {} ({} transactions per shard ±1)",
            manifest.len(),
            manifest_path.display(),
            manifest.total_transactions() / n as u64
        );
    }
    Ok(())
}
