//! `negrules negatives` — the paper's negative association rules.

use crate::commands::{
    itemset_names, parse_backend, parse_parallelism, print_interrupted_pass_stats, print_metrics,
    print_pass_stats,
};
use crate::exit::CliError;
use crate::io::{load_db_observed, load_manifest_observed, load_taxonomy};
use crate::opts::{parse_bytes, Opts};
use crate::signal;
use negassoc::config::{Driver, GenAlgorithm};
use negassoc::obs::{JsonLinesSink, Metrics, Obs, RingBufferSink, TraceSink};
use negassoc::{Deadline, Error, MinerConfig, NegativeMiner, RunControl};
use negassoc_apriori::MinSupport;
use negassoc_txdb::fault::{FaultPlan, FaultySource, SourceFault, SourceFaultKind};
use negassoc_txdb::shard::ShardedSource;
use negassoc_txdb::{TransactionDb, TransactionSource};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const KNOWN: &[&str] = &[
    "data",
    "manifest",
    "taxonomy",
    "min-support",
    "min-ri",
    "driver",
    "algorithm",
    "max-size",
    "cap",
    "top",
    "out",
    "checkpoint-dir",
    "deadline",
    "stall-timeout",
    "max-memory",
    "inject-fail-pass",
    "threads",
    "backend",
    "trace",
    "salvage!",
    "no-compress!",
    "audit!",
    "pass-stats!",
    "metrics!",
];

/// How many trace events the in-memory ring keeps for end-of-run reporting
/// (`--pass-stats` on interrupted runs). Plenty for any realistic pass
/// count; the JSON-lines file, when requested, keeps everything.
const RING_CAPACITY: usize = 4096;

/// Parse a non-negative, finite seconds value (`--deadline`,
/// `--stall-timeout`) into a [`Duration`]; anything else is a usage error.
fn parse_seconds(opts: &Opts, key: &str) -> Result<Option<Duration>, CliError> {
    let Some(v) = opts.get(key) else {
        return Ok(None);
    };
    match v.parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs >= 0.0 => Ok(Some(Duration::from_secs_f64(secs))),
        _ => Err(CliError::Usage(format!(
            "invalid --{key} {v:?} (non-negative seconds)"
        ))),
    }
}

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let min_support: f64 = opts.parse_or("min-support", 0.01)?;
    let min_ri: f64 = opts.parse_or("min-ri", 0.5)?;
    let top: usize = opts.parse_or("top", 20)?;

    let driver = match opts.get("driver") {
        None | Some("improved") => Driver::Improved,
        Some("naive") => Driver::Naive,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown driver {other:?} (naive|improved)"
            )))
        }
    };
    let algorithm = match opts.get("algorithm") {
        None | Some("cumulate") => GenAlgorithm::Cumulate,
        Some("basic") => GenAlgorithm::Basic,
        Some("estmerge") => GenAlgorithm::EstMerge(Default::default()),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown algorithm {other:?} (basic|cumulate|estmerge)"
            )))
        }
    };
    let max_negative_size = match opts.get("max-size") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::Usage(format!("invalid --max-size {v:?}")))?,
        ),
    };
    let max_candidates_per_pass = match opts.get("cap") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::Usage(format!("invalid --cap {v:?}")))?,
        ),
    };
    let memory_budget = match opts.get("max-memory") {
        None => None,
        Some(v) => Some(parse_bytes(v).ok_or_else(|| {
            CliError::Usage(format!(
                "invalid --max-memory {v:?} (bytes, or K/M/G suffix)"
            ))
        })?),
    };
    let inject_fail_pass: Option<u64> = match opts.get("inject-fail-pass") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::Usage(format!("invalid --inject-fail-pass {v:?}")))?,
        ),
    };
    let deadline = parse_seconds(&opts, "deadline")?;
    let stall_timeout = parse_seconds(&opts, "stall-timeout")?;

    // The observer: a JSON-lines trace file (--trace), a metrics registry
    // (--metrics), and an in-memory event ring that lets --pass-stats
    // report completed passes even when the run is interrupted. All three
    // are off by default — the no-op observer costs nothing on the hot
    // path (see DESIGN.md §11).
    let mut obs = Obs::disabled();
    let ring = Arc::new(RingBufferSink::new(RING_CAPACITY));
    if opts.get("trace").is_some() || opts.flag("metrics") || opts.flag("pass-stats") {
        obs = obs.with_sink(ring.clone());
    }
    let trace_sink = match opts.get("trace") {
        Some(path) => {
            let sink = Arc::new(
                JsonLinesSink::create(path)
                    .map_err(|e| CliError::Failure(format!("{path}: {e}")))?,
            );
            obs = obs.with_sink(sink.clone());
            Some((path.to_string(), sink))
        }
        None => None,
    };
    let metrics = Arc::new(Metrics::new());
    if opts.flag("metrics") {
        obs = obs.with_metrics(metrics.clone());
    }

    // Options validated; only now touch the filesystem.
    let db = match (opts.get("data"), opts.get("manifest")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--data and --manifest are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "missing required option --data (or --manifest for a sharded database)".into(),
            ))
        }
        (Some(path), None) => DbSource::Whole(load_db_observed(path, opts.flag("salvage"), &obs)?),
        (None, Some(path)) => {
            // Strict unless --salvage; a degraded open salvages what it
            // can and quarantines the rest, reported here exactly like a
            // single-file --salvage load.
            let sharded = load_manifest_observed(path, opts.flag("salvage"), &obs)?;
            let report = sharded.salvage_report();
            if !report.is_clean() {
                eprintln!("{path}: {report}");
            }
            if !sharded.quarantine().is_empty() {
                eprintln!("{path}: {}", sharded.quarantine());
            }
            DbSource::Sharded(sharded)
        }
    };
    let tax = load_taxonomy(opts.require("taxonomy")?)?;

    let config = MinerConfig {
        min_support: MinSupport::Fraction(min_support),
        min_ri,
        driver,
        algorithm,
        max_negative_size,
        max_candidates_per_pass,
        memory_budget,
        compress_taxonomy: !opts.flag("no-compress"),
        parallelism: parse_parallelism(&opts).map_err(CliError::Usage)?,
        backend: parse_backend(&opts).map_err(CliError::Usage)?,
        ..MinerConfig::default()
    };
    let miner = NegativeMiner::new(config);

    // One control plane for the whole run: Ctrl-C, --deadline and
    // --stall-timeout all trip the same token, and the run winds down at
    // the next pass/block boundary through the checkpoint-aware exit path.
    let mut ctrl = RunControl::new();
    if let Some(window) = deadline {
        ctrl = ctrl.with_deadline(Deadline::after(window));
    }
    if let Some(window) = stall_timeout {
        ctrl = ctrl.with_stall_window(window);
    }
    if let Some(flag) = signal::interrupt_flag() {
        ctrl = ctrl.with_interrupt_flag(flag);
    }
    ctrl = ctrl.with_observer(obs.clone());

    let checkpoint_dir = opts.get("checkpoint-dir").map(Path::new);
    let mine = |source: &dyn TransactionSource| {
        miner.mine_with_controls(source, &tax, None, checkpoint_dir, &ctrl)
    };
    let outcome = match inject_fail_pass {
        // Deterministic fault injection for exercising checkpoint/resume
        // end to end (used by the CI smoke stage): the named pass fails
        // with a permanent error at its first transaction.
        Some(pass) => {
            let plan = FaultPlan::new(vec![SourceFault {
                pass,
                at_transaction: 0,
                kind: SourceFaultKind::PermanentError,
            }]);
            mine(&FaultySource::new(db.as_dyn(), plan).with_obs(obs.clone()))
        }
        None => mine(db.as_dyn()),
    }
    .map_err(|e| match e {
        Error::Cancelled { .. } => {
            // An interrupted run still accounts for itself — but only for
            // work that finished. Completed passes come from the event
            // ring (the in-flight pass never recorded a pass_end) and the
            // table is explicitly flagged as partial.
            if opts.flag("pass-stats") {
                print_interrupted_pass_stats(&ring.snapshot());
            }
            if opts.flag("metrics") {
                print_metrics(&metrics);
            }
            let mut msg = e.to_string();
            if let Error::Cancelled {
                checkpoint: Some(_),
                ..
            } = &e
            {
                msg.push_str("; re-run the same command to resume");
            }
            CliError::Interrupted(msg)
        }
        other => CliError::Failure(other.to_string()),
    })?;
    if opts.flag("audit") {
        // Re-derive every reported support and RI from a raw scan;
        // refuses to print uncertified numbers.
        let audit = negassoc::audit::certify(db.as_dyn(), &tax, &outcome, min_ri)
            .map_err(|e| e.to_string())?;
        println!("{audit}");
    }

    let rep = &outcome.report;
    println!(
        "mined {} transactions in {:?} ({} passes)",
        db.transactions(),
        rep.mining_time + rep.rule_time,
        rep.passes
    );
    if let Some(c) = &rep.completeness {
        // A degraded run still exits 0: the rules are exact over every
        // delivered transaction, and the gap is stated rather than fatal.
        println!("completeness: {c}");
    }
    println!(
        "large itemsets: {}   negative candidates: {} (of {} generated)   negative itemsets: {}",
        rep.large_itemsets, rep.candidates.unique, rep.candidates.generated, rep.negative_itemsets
    );
    if opts.flag("pass-stats") {
        print_pass_stats(&rep.pass_stats);
    }
    if opts.flag("metrics") {
        print_metrics(&metrics);
    }
    if let Some((path, sink)) = &trace_sink {
        sink.flush();
        if sink.error() > 0 {
            eprintln!(
                "{path}: {} trace event(s) were dropped by write errors",
                sink.error()
            );
        }
        println!("wrote trace events to {path}");
    }

    let mut rules = outcome.rules;
    // Itemset tiebreaks make the listing (and any CSV diffed by the CI
    // fault-injection smoke test) deterministic across hash-order changes.
    rules.sort_by(|a, b| {
        b.ri.total_cmp(&a.ri)
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    if let Some(out_path) = opts.get("out") {
        write_rules_csv(out_path, &rules, &tax)?;
        println!("wrote {} rules to {out_path}", rules.len());
    }
    println!("\n{} negative rules at RI >= {min_ri}:", rules.len());
    for r in rules.iter().take(top) {
        println!(
            "  {} =/=> {}  (RI {:.3}, expected {:.1}, actual {})",
            itemset_names(&tax, &r.antecedent),
            itemset_names(&tax, &r.consequent),
            r.ri,
            r.expected,
            r.actual
        );
    }
    Ok(())
}

/// The mining input: one in-memory database (`--data`) or a sharded
/// on-disk one (`--manifest`).
enum DbSource {
    /// A single file, fully loaded.
    Whole(TransactionDb),
    /// A manifest of shards, streamed one shard at a time.
    Sharded(ShardedSource),
}

impl DbSource {
    fn as_dyn(&self) -> &dyn TransactionSource {
        match self {
            DbSource::Whole(db) => db,
            DbSource::Sharded(s) => s,
        }
    }

    /// Transactions the source will deliver per pass.
    fn transactions(&self) -> u64 {
        match self {
            DbSource::Whole(db) => db.len() as u64,
            DbSource::Sharded(s) => s.len_hint().unwrap_or(0),
        }
    }
}

/// Write rules as CSV: `antecedent,consequent,ri,expected,actual` with
/// multi-item sides joined by `|`. Item names are quoted when they contain
/// a comma or quote.
fn write_rules_csv(
    path: &str,
    rules: &[negassoc::NegativeRule],
    tax: &negassoc_taxonomy::Taxonomy,
) -> Result<(), String> {
    use std::io::Write;
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let side = |set: &negassoc_apriori::Itemset| -> String {
        let joined = set
            .items()
            .iter()
            .map(|&i| tax.name(i).to_owned())
            .collect::<Vec<_>>()
            .join("|");
        if joined.contains(',') || joined.contains('"') {
            format!("\"{}\"", joined.replace('"', "\"\""))
        } else {
            joined
        }
    };
    (|| -> std::io::Result<()> {
        writeln!(w, "antecedent,consequent,ri,expected,actual")?;
        for r in rules {
            writeln!(
                w,
                "{},{},{:.6},{:.3},{}",
                side(&r.antecedent),
                side(&r.consequent),
                r.ri,
                r.expected,
                r.actual
            )?;
        }
        w.flush()
    })()
    .map_err(|e| format!("{path}: {e}"))
}
