//! `negrules serve` — the long-running rule server over a NARS snapshot.

use crate::commands::print_metrics;
use crate::exit::CliError;
use crate::io::load_taxonomy;
use crate::opts::Opts;
use crate::signal;
use negassoc::obs::{Metrics, Obs};
use negassoc::RunControl;
use negassoc_serve::{serve, ServeState, Snapshot};
use std::net::TcpListener;
use std::sync::Arc;

const KNOWN: &[&str] = &["snapshot", "taxonomy", "addr", "workers", "metrics!"];

/// Worker threads when `--workers` is absent: enough to keep a query
/// batch moving without oversubscribing small CI machines.
const DEFAULT_WORKERS: usize = 4;

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let workers: usize = opts.parse_or("workers", DEFAULT_WORKERS)?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    let addr = opts.get("addr").unwrap_or("127.0.0.1:0");
    let snapshot_path = opts.require("snapshot")?;
    let tax = load_taxonomy(opts.require("taxonomy")?)?;
    let snapshot = Snapshot::load(snapshot_path, &tax)
        .map_err(|e| CliError::Failure(format!("{snapshot_path}: {e}")))?;
    let meta = *snapshot.meta();
    let num_rules = snapshot.num_rules();
    let state = ServeState::new(tax, Arc::new(snapshot)).map_err(|e| e.to_string())?;

    let mut obs = Obs::disabled();
    let metrics = Arc::new(Metrics::new());
    if opts.flag("metrics") {
        obs = obs.with_metrics(metrics.clone());
    }

    let listener =
        TcpListener::bind(addr).map_err(|e| CliError::Failure(format!("bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Failure(e.to_string()))?;
    // The readiness line the CI smoke stage greps for the actual port
    // (stdout is line-buffered, so this is visible before serving starts).
    println!(
        "listening on {local} (snapshot version {}, {num_rules} rules)",
        meta.snapshot_version
    );

    // SIGINT is the server's *normal* shutdown: the watchdog trips the
    // token, the accept loop stops, workers drain in-flight requests and
    // join, and the command exits 0 — unlike mining commands, where an
    // interrupt cuts a run short (exit 3).
    let mut ctrl = RunControl::new();
    if let Some(flag) = signal::interrupt_flag() {
        ctrl = ctrl.with_interrupt_flag(flag);
    }
    let watchdog = ctrl.arm();
    let stats = serve(listener, &state, workers, ctrl.token(), &obs)
        .map_err(|e| CliError::Failure(e.to_string()))?;
    drop(watchdog);

    println!("{stats}");
    if opts.flag("metrics") {
        print_metrics(&metrics);
    }
    Ok(())
}
