//! The `negrules` subcommands.

pub(crate) mod export_snapshot;
pub(crate) mod generate;
pub(crate) mod match_cmd;
pub(crate) mod mine;
pub(crate) mod negatives;
pub(crate) mod query;
pub(crate) mod serve;
pub(crate) mod stats;

use crate::opts::Opts;
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::parallel::{Parallelism, PassStats};
use negassoc_apriori::Itemset;
use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::obs::{Event, MetricKind, Metrics};

/// Render an itemset through the taxonomy's names when possible, falling
/// back to raw ids for items outside the taxonomy.
pub(crate) fn itemset_names(tax: &Taxonomy, set: &Itemset) -> String {
    set.items()
        .iter()
        .map(|&i| {
            if i.index() < tax.len() {
                tax.name(i).to_owned()
            } else {
                format!("#{i}")
            }
        })
        .collect::<Vec<_>>()
        .join(" + ")
}

/// Resolve `--threads N|auto` into a [`Parallelism`] policy. Absent means
/// sequential; the counts are identical for every choice, only wall time
/// differs.
pub(crate) fn parse_parallelism(opts: &Opts) -> Result<Parallelism, String> {
    match opts.get("threads") {
        None => Ok(Parallelism::Sequential),
        Some("auto") => Ok(Parallelism::Auto),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Parallelism::Threads(n)),
            _ => Err(format!(
                "invalid --threads {v:?} (a positive count, or `auto`)"
            )),
        },
    }
}

/// Resolve `--backend flat|hashtree|bitmap` into a [`CountingBackend`].
/// Absent means the hash-tree default; every backend produces the same
/// counts, only wall time and memory differ.
pub(crate) fn parse_backend(opts: &Opts) -> Result<CountingBackend, String> {
    match opts.get("backend") {
        None | Some("hashtree") => Ok(CountingBackend::HashTree),
        Some("flat") => Ok(CountingBackend::SubsetHashMap),
        Some("bitmap") => Ok(CountingBackend::TidBitmap),
        Some(v) => Err(format!(
            "invalid --backend {v:?} (expected `flat`, `hashtree`, or `bitmap`)"
        )),
    }
}

/// Print the per-pass counting telemetry table (`--pass-stats`).
pub(crate) fn print_pass_stats(stats: &[PassStats]) {
    if stats.is_empty() {
        println!("no per-pass telemetry (phase does not decompose into level passes)");
        return;
    }
    println!("pass  label     candidates  transactions  threads      wall");
    for s in stats {
        println!(
            "{:>4}  {:<8}  {:>10}  {:>12}  {:>7}  {:>8.3}s",
            s.pass,
            s.label,
            s.candidates,
            s.transactions,
            s.threads,
            s.wall.as_secs_f64()
        );
    }
}

/// Print pass telemetry for an *interrupted* run from recorded trace
/// events: only passes that recorded a `pass_end` appear (the in-flight
/// pass never did), and the table is flagged as partial so its numbers are
/// never mistaken for a complete run's.
pub(crate) fn print_interrupted_pass_stats(events: &[Event]) {
    let completed: Vec<PassStats> = events
        .iter()
        .filter_map(|e| match e {
            Event::PassEnd { stats } => Some(stats.clone()),
            _ => None,
        })
        .collect();
    if completed.is_empty() {
        println!("run interrupted before any pass completed; no pass telemetry");
        return;
    }
    println!(
        "run interrupted: {} completed pass(es); the in-flight pass is excluded",
        completed.len()
    );
    print_pass_stats(&completed);
}

/// Print the metrics registry snapshot (`--metrics`), sorted by name.
pub(crate) fn print_metrics(metrics: &Metrics) {
    let snap = metrics.snapshot();
    if snap.is_empty() {
        println!("no metrics recorded");
        return;
    }
    println!("metric                     kind     value");
    for (name, kind, value) in snap {
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        println!("{name:<25}  {kind:<7}  {value:>8}");
    }
}
