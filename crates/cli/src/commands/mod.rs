//! The four `negrules` subcommands.

pub(crate) mod generate;
pub(crate) mod mine;
pub(crate) mod negatives;
pub(crate) mod stats;

use negassoc_apriori::Itemset;
use negassoc_taxonomy::Taxonomy;

/// Render an itemset through the taxonomy's names when possible, falling
/// back to raw ids for items outside the taxonomy.
pub(crate) fn itemset_names(tax: &Taxonomy, set: &Itemset) -> String {
    set.items()
        .iter()
        .map(|&i| {
            if i.index() < tax.len() {
                tax.name(i).to_owned()
            } else {
                format!("#{i}")
            }
        })
        .collect::<Vec<_>>()
        .join(" + ")
}
