//! `negrules stats` — summarize a transaction file (and optionally its
//! taxonomy).

use crate::exit::CliError;
use crate::io::{load_db_opts, load_taxonomy};
use crate::opts::Opts;
use negassoc_txdb::stats::{collect, top_items};

const KNOWN: &[&str] = &["data", "taxonomy", "top", "salvage!"];

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let data_path = opts.require("data")?;
    let top_n: usize = opts.parse_or("top", 10)?;

    let db = load_db_opts(data_path, opts.flag("salvage"))?;
    let (s, counts) = collect(&db).map_err(|e| e.to_string())?;
    println!("transactions:      {}", s.transactions);
    println!("item occurrences:  {}", s.item_occurrences);
    println!("distinct items:    {}", s.distinct_items);
    println!(
        "basket length:     min {}, avg {:.2}, max {}",
        s.min_len, s.avg_len, s.max_len
    );

    let tax = match opts.get("taxonomy") {
        Some(p) => Some(load_taxonomy(p)?),
        None => None,
    };
    if let Some(tax) = &tax {
        let ts = negassoc_taxonomy::stats::stats(tax);
        println!(
            "taxonomy:          {} items ({} leaves, {} categories, {} roots, depth {})",
            ts.items, ts.leaves, ts.categories, ts.roots, ts.max_depth
        );
        println!(
            "taxonomy fanout:   avg {:.2}, max {}; level sizes {:?}",
            ts.avg_fanout, ts.max_fanout, ts.level_sizes
        );
    }

    println!("top items:");
    for (item, count) in top_items(&counts, top_n) {
        let name = match &tax {
            Some(t) if item.index() < t.len() => t.name(item).to_owned(),
            _ => format!("#{item}"),
        };
        println!("  {name:<30} {count}");
    }
    Ok(())
}
