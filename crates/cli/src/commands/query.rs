//! `negrules query` — the TCP client side of the serving protocol:
//! basket batches, hot-swap requests, and liveness pings.

use crate::exit::CliError;
use crate::opts::Opts;
use negassoc_serve::request;
use negassoc_serve::server::{TAG_PING, TAG_QUERY, TAG_SWAP};
use std::io::Write;
use std::net::TcpStream;

const KNOWN: &[&str] = &["addr", "baskets", "out", "swap", "ping!"];

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let addr = opts.require("addr")?;
    if !opts.flag("ping") && opts.get("swap").is_none() && opts.get("baskets").is_none() {
        return Err(CliError::Usage(
            "nothing to do: give --baskets FILE, --swap SNAPSHOT, or --ping".into(),
        ));
    }
    let mut stream =
        TcpStream::connect(addr).map_err(|e| CliError::Failure(format!("connect {addr}: {e}")))?;

    if opts.flag("ping") {
        let (ok, body) = request(&mut stream, TAG_PING, b"")
            .map_err(|e| CliError::Failure(format!("{addr}: {e}")))?;
        print!("{body}");
        if !ok {
            return Err(CliError::Failure("ping failed".into()));
        }
    }

    if let Some(path) = opts.get("swap") {
        let (ok, body) = request(&mut stream, TAG_SWAP, path.as_bytes())
            .map_err(|e| CliError::Failure(format!("{addr}: {e}")))?;
        print!("{body}");
        if !ok {
            return Err(CliError::Failure(format!("swap to {path} refused")));
        }
    }

    if let Some(baskets) = opts.get("baskets") {
        let input = std::fs::read_to_string(baskets).map_err(|e| format!("{baskets}: {e}"))?;
        // One keep-alive connection for the whole batch; bodies are
        // emitted verbatim so the CI stage can diff them byte-for-byte
        // against the offline `match` oracle over the same basket file.
        let mut answers = String::new();
        let mut lines = 0usize;
        for line in input.lines() {
            let (_ok, body) = request(&mut stream, TAG_QUERY, line.as_bytes())
                .map_err(|e| CliError::Failure(format!("{addr}: {e}")))?;
            answers.push_str(&body);
            lines += 1;
        }
        match opts.get("out") {
            Some(out) => {
                std::fs::write(out, &answers).map_err(|e| format!("{out}: {e}"))?;
                println!("wrote {lines} answers to {out}");
            }
            None => {
                print!("{answers}");
                std::io::stdout().flush().map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}
