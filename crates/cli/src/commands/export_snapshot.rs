//! `negrules export-snapshot` — mine a database and persist the rule set
//! as an immutable NARS snapshot for the serving layer.

use crate::exit::CliError;
use crate::io::{load_db_opts, load_taxonomy};
use crate::opts::Opts;
use crate::signal;
use negassoc::{Error, MinerConfig, NegativeMiner, RunControl};
use negassoc_apriori::MinSupport;
use negassoc_serve::export_snapshot;

const KNOWN: &[&str] = &[
    "data",
    "taxonomy",
    "out",
    "min-support",
    "min-ri",
    "min-conf",
    "snapshot-version",
    "salvage!",
];

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let min_support: f64 = opts.parse_or("min-support", 0.01)?;
    let min_ri: f64 = opts.parse_or("min-ri", 0.5)?;
    let min_conf: f64 = opts.parse_or("min-conf", 0.6)?;
    let snapshot_version: u64 = opts.parse_or("snapshot-version", 1)?;
    if !(0.0..=1.0).contains(&min_conf) {
        return Err(CliError::Usage(format!(
            "invalid --min-conf {min_conf} (a fraction in [0, 1])"
        )));
    }
    let out = opts.require("out")?;
    let data = opts.require("data")?;
    let tax = load_taxonomy(opts.require("taxonomy")?)?;
    let db = load_db_opts(data, opts.flag("salvage"))?;

    let config = MinerConfig {
        min_support: MinSupport::Fraction(min_support),
        min_ri,
        ..MinerConfig::default()
    };
    let miner = NegativeMiner::new(config);

    // Ctrl-C cancels cooperatively through the shared token; an
    // interrupted mine exits 3 and writes no snapshot.
    let mut ctrl = RunControl::new();
    if let Some(flag) = signal::interrupt_flag() {
        ctrl = ctrl.with_interrupt_flag(flag);
    }
    let outcome = miner
        .mine_with_controls(&db, &tax, None, None, &ctrl)
        .map_err(|e| match e {
            Error::Cancelled { .. } => CliError::Interrupted(e.to_string()),
            other => CliError::Failure(other.to_string()),
        })?;

    let export = outcome.rule_export(&tax, min_conf, min_ri);
    export_snapshot(out, &export, &tax, snapshot_version)
        .map_err(|e| CliError::Failure(format!("{out}: {e}")))?;
    println!(
        "exported snapshot version {snapshot_version} to {out}: \
         {} positive, {} negative rules over {} transactions \
         (taxonomy digest {:#018x})",
        export.positive.len(),
        export.negative.len(),
        export.num_transactions,
        export.taxonomy_digest
    );
    Ok(())
}
