//! `negrules match` — the offline basket-matching oracle.
//!
//! Answers a basket batch directly from a snapshot file with the
//! deliberately index-free full-scan matcher, producing exactly the
//! bytes the server would send for the same baskets. The CI smoke stage
//! diffs the two outputs: any divergence is an antecedent-index bug
//! surfacing as a failed diff instead of a silently wrong answer.

use crate::exit::CliError;
use crate::io::load_taxonomy;
use crate::opts::Opts;
use negassoc_serve::{answer_basket_line, Snapshot};

const KNOWN: &[&str] = &["snapshot", "taxonomy", "baskets", "out", "indexed!"];

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let snapshot_path = opts.require("snapshot")?;
    let baskets = opts.require("baskets")?;
    let tax = load_taxonomy(opts.require("taxonomy")?)?;
    let snapshot = Snapshot::load(snapshot_path, &tax)
        .map_err(|e| CliError::Failure(format!("{snapshot_path}: {e}")))?;

    let input = std::fs::read_to_string(baskets).map_err(|e| format!("{baskets}: {e}"))?;
    // Full-scan oracle by default; --indexed exercises the production
    // matcher instead (both must agree on every basket).
    let oracle = !opts.flag("indexed");
    let mut answers = String::new();
    let mut lines = 0usize;
    for line in input.lines() {
        answers.push_str(&answer_basket_line(&tax, &snapshot, line, oracle));
        lines += 1;
    }
    match opts.get("out") {
        Some(out) => {
            std::fs::write(out, &answers).map_err(|e| format!("{out}: {e}"))?;
            println!("wrote {lines} answers to {out}");
        }
        None => {
            use std::io::Write;
            print!("{answers}");
            std::io::stdout().flush().map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}
