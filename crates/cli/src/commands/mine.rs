//! `negrules mine` — positive generalized association rules (Cumulate +
//! ap-genrules), the baseline view negative mining builds on.

use crate::commands::{itemset_names, parse_backend, parse_parallelism};
use crate::exit::CliError;
use crate::io::{load_db_opts, load_taxonomy};
use crate::opts::Opts;
use negassoc_apriori::rules::generate_rules;
use negassoc_apriori::MinSupport;

const KNOWN: &[&str] = &[
    "data",
    "taxonomy",
    "min-support",
    "min-conf",
    "top",
    "algorithm",
    "partitions",
    "r-interest",
    "threads",
    "backend",
    "salvage!",
    "audit!",
];

pub(crate) fn run(args: Vec<String>) -> Result<(), CliError> {
    let opts = Opts::parse(args, KNOWN)?;
    let db = load_db_opts(opts.require("data")?, opts.flag("salvage"))?;
    let tax = load_taxonomy(opts.require("taxonomy")?)?;
    let min_support: f64 = opts.parse_or("min-support", 0.01)?;
    let min_conf: f64 = opts.parse_or("min-conf", 0.6)?;
    let top: usize = opts.parse_or("top", 20)?;

    let min_support = MinSupport::Fraction(min_support);
    let parallelism = parse_parallelism(&opts).map_err(CliError::Usage)?;
    let backend = parse_backend(&opts).map_err(CliError::Usage)?;
    let large = match opts.get("algorithm") {
        None | Some("cumulate") => {
            negassoc_apriori::cumulate::cumulate(&db, &tax, min_support, backend, parallelism)
        }
        Some("basic") => {
            negassoc_apriori::basic::basic(&db, &tax, min_support, backend, parallelism)
        }
        Some("estmerge") => negassoc_apriori::est_merge::est_merge(
            &db,
            &tax,
            min_support,
            backend,
            Default::default(),
            parallelism,
        )
        .map(|(large, _)| large),
        Some("partition") => {
            let parts: usize = opts.parse_or("partitions", 4)?;
            negassoc_apriori::partition_mine::partition_mine(
                &db,
                Some(&tax),
                min_support,
                parts,
                backend,
                parallelism,
            )
        }
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown algorithm {other:?} (basic|cumulate|estmerge|partition)"
            )))
        }
    }
    .map_err(|e| e.to_string())?;
    if opts.flag("audit") {
        let audit = negassoc::audit::certify_large(&db, &tax, &large).map_err(|e| e.to_string())?;
        println!("{audit}");
    }
    println!(
        "{} generalized large itemsets (minsup = {} transactions)",
        large.total(),
        large.min_support_count()
    );
    for k in 1..=large.max_level() {
        println!("  level {k}: {}", large.level_len(k));
    }

    let mut rules = generate_rules(&large, min_conf);
    // Optional R-interest pruning (Srikant & Agrawal's measure): drop rules
    // an ancestor rule already predicts within factor R.
    if let Some(r) = opts.get("r-interest") {
        let r: f64 = r
            .parse()
            .map_err(|_| format!("invalid --r-interest {r:?}"))?;
        let before = rules.len();
        rules = negassoc::positive::r_interesting(rules, &large, &tax, r)
            .map_err(|e| e.to_string())?
            .into_iter()
            .filter(|j| j.interesting)
            .map(|j| j.rule)
            .collect();
        println!(
            "R-interest pruning (R = {r}): {before} -> {} rules",
            rules.len()
        );
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.cmp(&a.support))
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    println!("\n{} rules at confidence >= {min_conf}:", rules.len());
    for r in rules.iter().take(top) {
        println!(
            "  {} => {}  (conf {:.3}, sup {})",
            itemset_names(&tax, &r.antecedent),
            itemset_names(&tax, &r.consequent),
            r.confidence,
            r.support
        );
    }
    Ok(())
}
