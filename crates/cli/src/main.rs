//! `negrules` — negative association rule mining from the command line.
//!
//! ```text
//! negrules generate  --data out.nadb --taxonomy out-tax.txt [--preset short|tall]
//!                    [--transactions N] [--items N] [--seed S] [--shards N]
//! negrules stats     --data D [--taxonomy T] [--salvage]
//! negrules mine      --data D --taxonomy T [--min-support F] [--min-conf F]
//!                    [--algorithm basic|cumulate|estmerge|partition]
//!                    [--r-interest R] [--salvage] [--audit]
//! negrules negatives --data D | --manifest M --taxonomy T [--min-support F] [--min-ri F]
//!                    [--driver naive|improved] [--algorithm basic|cumulate|estmerge]
//!                    [--max-size K] [--cap N] [--top N] [--out rules.csv]
//!                    [--checkpoint-dir DIR] [--max-memory BYTES] [--salvage]
//!                    [--audit] [--trace FILE] [--metrics] [--pass-stats]
//! negrules export-snapshot --data D --taxonomy T --out S.nars [--min-support F]
//!                    [--min-ri F] [--min-conf F] [--snapshot-version N] [--salvage]
//! negrules serve     --snapshot S.nars --taxonomy T [--addr HOST:PORT]
//!                    [--workers N] [--metrics]
//! negrules query     --addr HOST:PORT [--baskets FILE] [--out FILE]
//!                    [--swap S.nars] [--ping]
//! negrules match     --snapshot S.nars --taxonomy T --baskets FILE
//!                    [--out FILE] [--indexed]
//! ```

mod commands;
mod exit;
mod io;
mod opts;
mod signal;

use exit::CliError;
use std::process::ExitCode;

const USAGE: &str =
    "negrules <generate|stats|mine|negatives|export-snapshot|serve|query|match> [options]

  generate   synthesize a dataset (paper section 3.1 generator)
             --data PATH --taxonomy PATH [--preset short|tall]
             [--transactions N] [--items N] [--seed S]
             [--shards N]  (also write N shard files + checksummed manifest)
  stats      summarize a transaction file
             --data PATH [--taxonomy PATH] [--salvage]
  mine       positive generalized association rules
             --data PATH --taxonomy PATH [--min-support F=0.01]
             [--min-conf F=0.6] [--top N=20]
             [--algorithm basic|cumulate|estmerge|partition]
             [--partitions N=4] [--r-interest R] [--threads N|auto]
             [--salvage] [--audit]
  negatives  strong negative association rules (Savasere et al., ICDE '98)
             --data PATH | --manifest PATH --taxonomy PATH [--min-support F=0.01]
             [--min-ri F=0.5] [--driver naive|improved]
             [--algorithm basic|cumulate|estmerge] [--max-size K]
             [--cap N] [--top N=20] [--out rules.csv] [--no-compress]
             [--threads N|auto]      (worker threads per counting pass)
             [--pass-stats]          (per-pass counting telemetry table;
                                      on an interrupted run only completed
                                      passes are shown, flagged as partial)
             [--trace FILE]          (JSON-lines structured trace events)
             [--metrics]             (named counters/gauges after the run)
             [--checkpoint-dir DIR]  (persist progress; resume after a crash
                                      or an interrupt)
             [--deadline SECS]       (cancel cooperatively when the wall
                                      clock runs out; exits 3)
             [--stall-timeout SECS]  (cancel when counting stops making
                                      progress for SECS; exits 3)
             [--max-memory BYTES]    (degrade instead of OOM; K/M/G suffixes)
             [--inject-fail-pass N]  (fault injection for testing recovery)
             [--salvage]  (skip corrupt .nadb blocks, report exact lost TIDs;
                           with --manifest: salvage or quarantine failing
                           shards and mine the rest — still exits 0, with
                           the degraded completeness stated)
             [--audit]    (re-derive every reported number from a raw scan)
  export-snapshot  mine and persist the rule set as an immutable,
             versioned NARS snapshot for the serving layer
             --data PATH --taxonomy PATH --out S.nars
             [--min-support F=0.01] [--min-ri F=0.5] [--min-conf F=0.6]
             [--snapshot-version N=1] [--salvage]
  serve      serve basket-match queries from a snapshot over TCP
             --snapshot S.nars --taxonomy PATH
             [--addr HOST:PORT=127.0.0.1:0]  (port 0 picks a free port;
                                      the chosen address is printed first)
             [--workers N=4] [--metrics]
             SIGINT drains gracefully and exits 0; hot-swap snapshots
             with `query --swap`
  query      TCP client: answer a basket batch, swap snapshots, or ping
             --addr HOST:PORT [--baskets FILE] [--out FILE]
             [--swap S.nars]  (server-side hot-swap to that snapshot)
             [--ping]
  match      offline oracle: answer a basket batch straight from the
             snapshot with the index-free full-scan matcher; its output
             is byte-identical to served answers for the same baskets
             --snapshot S.nars --taxonomy PATH --baskets FILE
             [--out FILE] [--indexed]

Basket files: one basket per line, comma-separated item names.

With --manifest the database is a checksummed shard manifest (see
`generate --shards`): shards stream one at a time with bounded memory,
and each shard is an independent fault domain.

Transaction files: .nadb (binary) or whitespace text, one basket per line.
Taxonomy files: `name<TAB>parent` per line, `-` for roots.

Exit codes: 0 complete; 1 error; 2 usage; 3 interrupted (SIGINT, deadline,
or stall) — with --checkpoint-dir the interrupted run leaves a resumable
checkpoint and re-running the same command finishes with identical output.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest: Vec<String> = args.collect();
    let result = match command.as_str() {
        "generate" => commands::generate::run(rest),
        "stats" => commands::stats::run(rest),
        "mine" => commands::mine::run(rest),
        "negatives" => commands::negatives::run(rest),
        "export-snapshot" => commands::export_snapshot::run(rest),
        "serve" => commands::serve::run(rest),
        "query" => commands::query::run(rest),
        "match" => commands::match_cmd::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            let prefix = match &err {
                CliError::Usage(_) => "usage error",
                CliError::Failure(_) => "error",
                CliError::Interrupted(_) => "interrupted",
            };
            eprintln!("{prefix}: {}", err.message());
            ExitCode::from(err.exit_code())
        }
    }
}
