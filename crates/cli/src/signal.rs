//! The SIGINT → cancel-token bridge, dependency-free.
//!
//! Ctrl-C must not kill the process mid-pass: the handler only flips a
//! shared atomic flag, and the run control's watchdog (see
//! [`negassoc::ctrl`]) polls that flag and cancels the token, so the run
//! winds down cooperatively at the next block boundary and exits through
//! the normal checkpoint-aware error path (exit code 3).
//!
//! The handler body is async-signal-safe: one relaxed-free atomic store,
//! no allocation, no locks. The flag cell is initialized *before* the
//! handler is installed, so the handler's `OnceLock::get` is a plain
//! atomic load that can never race initialization.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static INTERRUPTED: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(flag) = INTERRUPTED.get() {
        flag.store(true, Ordering::Release);
    }
}

#[cfg(unix)]
fn install_handler() -> bool {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIG_ERR: usize = usize::MAX;
    // SAFETY: `signal(2)` is async-signal-safe to install, the handler is a
    // valid `extern "C" fn(i32)` for the life of the process, and its body
    // performs only an atomic store (see module docs).
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize) != SIG_ERR
    }
}

#[cfg(not(unix))]
fn install_handler() -> bool {
    false
}

/// Install the SIGINT handler (idempotent) and return the flag it sets.
/// `None` when the platform has no handler support — the caller simply
/// runs uninterruptible, losing nothing else.
pub(crate) fn interrupt_flag() -> Option<Arc<AtomicBool>> {
    let flag = INTERRUPTED.get_or_init(|| Arc::new(AtomicBool::new(false)));
    if install_handler() {
        Some(Arc::clone(flag))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn handler_sets_the_shared_flag() {
        let flag = interrupt_flag().expect("unix installs a SIGINT handler");
        assert!(!flag.load(Ordering::Acquire));
        // Invoke the handler directly instead of raising a real SIGINT,
        // which would kill the whole test binary if installation raced.
        on_sigint(2);
        assert!(flag.load(Ordering::Acquire));
        flag.store(false, Ordering::Release);
    }

    #[test]
    fn repeated_installs_share_one_flag() {
        let a = interrupt_flag();
        let b = interrupt_flag();
        if let (Some(a), Some(b)) = (a, b) {
            assert!(Arc::ptr_eq(&a, &b));
        }
    }
}
