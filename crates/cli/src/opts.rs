//! A small, dependency-free option parser: `--key value` and `--flag`
//! pairs after a subcommand. Unknown keys are errors so typos don't
//! silently fall back to defaults.

use std::collections::BTreeMap;

/// Parsed command line: subcommand plus `--key [value]` options.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct Opts {
    map: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from option parsing and extraction.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum OptError {
    /// A token that is not `--key`.
    Unexpected(String),
    /// `--key` given without a value.
    MissingValue(String),
    /// A key the subcommand does not know.
    Unknown(String),
    /// A required key was absent.
    Required(String),
    /// A value failed to parse.
    Invalid { key: String, value: String },
    /// The same option appeared more than once.
    Duplicate(String),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Unexpected(t) => write!(f, "unexpected argument {t:?}"),
            OptError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            OptError::Unknown(k) => write!(f, "unknown option --{k}"),
            OptError::Required(k) => write!(f, "missing required option --{k}"),
            OptError::Invalid { key, value } => {
                write!(f, "invalid value {value:?} for --{key}")
            }
            OptError::Duplicate(k) => write!(f, "option --{k} given more than once"),
        }
    }
}

impl std::error::Error for OptError {}

impl Opts {
    /// Parse `args` (after the subcommand), accepting only `known` keys.
    /// Keys in `known` ending with `!` are boolean flags (no value).
    pub(crate) fn parse<I: IntoIterator<Item = String>>(
        args: I,
        known: &'static [&'static str],
    ) -> Result<Self, OptError> {
        let mut opts = Opts::default();
        let mut iter = args.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(OptError::Unexpected(tok));
            };
            let is_flag = known.iter().any(|k| k.strip_suffix('!') == Some(key));
            if is_flag {
                if opts.flag(key) {
                    return Err(OptError::Duplicate(key.to_owned()));
                }
                opts.flags.push(key.to_owned());
            } else if known.iter().any(|k| *k == key) {
                let value = iter
                    .next()
                    .ok_or_else(|| OptError::MissingValue(key.to_owned()))?;
                if opts.map.insert(key.to_owned(), value).is_some() {
                    return Err(OptError::Duplicate(key.to_owned()));
                }
            } else {
                return Err(OptError::Unknown(key.to_owned()));
            }
        }
        Ok(opts)
    }

    /// A string value.
    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }

    /// A required string value.
    pub(crate) fn require(&self, key: &str) -> Result<&str, OptError> {
        self.get(key)
            .ok_or_else(|| OptError::Required(key.to_owned()))
    }

    /// `true` when the boolean flag was given.
    pub(crate) fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A parsed value with a default.
    pub(crate) fn parse_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, OptError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| OptError::Invalid {
                key: key.to_owned(),
                value: v.to_owned(),
            }),
        }
    }
}

/// Parse a byte count like `1048576`, `64K`, `16M`, or `2G` (binary
/// suffixes, case-insensitive). `None` on anything else.
pub(crate) fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1usize << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const KNOWN: &[&str] = &["data", "min-support", "verbose!"];

    #[test]
    fn parses_values_and_flags() {
        let o = Opts::parse(args("--data x.nadb --verbose --min-support 0.01"), KNOWN).unwrap();
        assert_eq!(o.get("data"), Some("x.nadb"));
        assert!(o.flag("verbose"));
        assert!(!o.flag("quiet"));
        assert_eq!(o.parse_or::<f64>("min-support", 1.0).unwrap(), 0.01);
        assert_eq!(o.parse_or::<u64>("missing", 7).unwrap(), 7);
        assert_eq!(o.require("data").unwrap(), "x.nadb");
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert_eq!(
            Opts::parse(args("--nope 1"), KNOWN),
            Err(OptError::Unknown("nope".into()))
        );
        assert_eq!(
            Opts::parse(args("stray"), KNOWN),
            Err(OptError::Unexpected("stray".into()))
        );
        assert_eq!(
            Opts::parse(args("--data"), KNOWN),
            Err(OptError::MissingValue("data".into()))
        );
        let o = Opts::parse(args("--data x"), KNOWN).unwrap();
        assert_eq!(
            o.require("min-support"),
            Err(OptError::Required("min-support".into()))
        );
        assert!(matches!(
            o.parse_or::<f64>("data", 0.0),
            Err(OptError::Invalid { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_options() {
        // Last-wins would silently mine with 8 threads here; the contract
        // is a Usage error instead (exit 2 through `CliError`).
        assert_eq!(
            Opts::parse(args("--min-support 0.02 --min-support 0.08"), KNOWN),
            Err(OptError::Duplicate("min-support".into()))
        );
        assert_eq!(
            Opts::parse(args("--verbose --data x --verbose"), KNOWN),
            Err(OptError::Duplicate("verbose".into()))
        );
        assert!(OptError::Duplicate("threads".into())
            .to_string()
            .contains("--threads"));
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("16m"), Some(16 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes("12X"), None);
        assert_eq!(parse_bytes("-1"), None);
    }

    #[test]
    fn error_messages_name_the_key() {
        assert!(OptError::Unknown("x".into()).to_string().contains("--x"));
        assert!(OptError::Required("y".into()).to_string().contains("--y"));
    }
}
