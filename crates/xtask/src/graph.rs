//! A conservative call graph over the symbol table, plus the fixpoint
//! propagations the flow lints run on it.
//!
//! Resolution is by name, not by type (there is no type checker here):
//!
//! * `recv.name(…)` and free `name(…)` calls edge to **every** workspace
//!   fn named `name`;
//! * `Qual::name(…)` with an uppercase qualifier edges only to
//!   `impl Qual` methods — and to nothing at all when the workspace has
//!   no such method (so `Arc::new`, `Vec::with_capacity` and friends do
//!   not smear edges across every constructor in the tree);
//! * lowercase qualifiers are module paths (`count::count_mixed`) and
//!   fall back to bare-name resolution.
//!
//! Over-approximation is deliberate: for L010/L011 a *missing* edge
//! means less delegation credit (the lint fires and an allow documents
//! it), and for L012 an *extra* edge only widens the audited set.

use crate::items::SymbolTable;

/// Call edges, parallel to `SymbolTable::fns`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `callees[i]` = table indexes `i` may call. Deduplicated, sorted.
    pub callees: Vec<Vec<usize>>,
    /// Loop-scoped subset: callees invoked from inside a loop scope.
    pub loop_callees: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph by resolving every recorded call site.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let mut graph = CallGraph {
            callees: vec![Vec::new(); table.fns.len()],
            loop_callees: vec![Vec::new(); table.fns.len()],
        };
        for (i, entry) in table.fns.iter().enumerate() {
            for call in &entry.facts.calls {
                let targets: &[usize] = match &call.qual {
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => table
                        .by_qual
                        .get(&format!("{q}::{}", call.name))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                    _ => table
                        .by_name
                        .get(&call.name)
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                };
                for &t in targets {
                    if t == i {
                        continue;
                    }
                    graph.callees[i].push(t);
                    if call.in_loop {
                        graph.loop_callees[i].push(t);
                    }
                }
            }
        }
        for list in graph
            .callees
            .iter_mut()
            .chain(graph.loop_callees.iter_mut())
        {
            list.sort_unstable();
            list.dedup();
        }
        graph
    }

    /// Forward closure: every fn reachable from the seed set (seeds
    /// included) following callee edges.
    pub fn reachable_from(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.callees.len()];
        let mut work: Vec<usize> = seeds.to_vec();
        for &s in seeds {
            seen[s] = true;
        }
        while let Some(i) = work.pop() {
            for &c in &self.callees[i] {
                if !seen[c] {
                    seen[c] = true;
                    work.push(c);
                }
            }
        }
        seen
    }

    /// Backward fixpoint: a fn holds the property if it is seeded or if
    /// any of its callees holds it ("calls a fn that transitively …").
    pub fn propagate_to_callers(&self, seed: &[bool]) -> Vec<bool> {
        let n = self.callees.len();
        let mut marked = seed.to_vec();
        // Reverse edges once, then drain a worklist.
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, cs) in self.callees.iter().enumerate() {
            for &c in cs {
                callers[c].push(i);
            }
        }
        let mut work: Vec<usize> = (0..n).filter(|&i| marked[i]).collect();
        while let Some(i) = work.pop() {
            for &caller in &callers[i] {
                if !marked[caller] {
                    marked[caller] = true;
                    work.push(caller);
                }
            }
        }
        marked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::SymbolTable;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn table(sources: &[(&str, &str)]) -> SymbolTable {
        let files: Vec<(String, crate::parser::FileFacts)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse(&lex(s))))
            .collect();
        SymbolTable::build(&files)
    }

    fn idx(t: &SymbolTable, name: &str) -> usize {
        t.by_name[name][0]
    }

    #[test]
    fn name_and_qual_resolution() {
        let t = table(&[
            (
                "a.rs",
                "fn top() { helper(); Counter::build(); Arc::new(0); }\nfn helper() {}\n",
            ),
            (
                "b.rs",
                "impl Counter { fn build() {} }\nimpl Other { fn new() {} }\n",
            ),
        ]);
        let g = CallGraph::build(&t);
        let top = idx(&t, "top");
        assert!(g.callees[top].contains(&idx(&t, "helper")));
        assert!(g.callees[top].contains(&idx(&t, "build")));
        // `Arc::new` must NOT edge to `Other::new`: unknown uppercase
        // qualifiers resolve to nothing.
        assert!(!g.callees[top].contains(&idx(&t, "new")));
    }

    #[test]
    fn module_path_calls_fall_back_to_names() {
        let t = table(&[(
            "a.rs",
            "fn top() { count::count_mixed(); }\nfn count_mixed() {}\n",
        )]);
        let g = CallGraph::build(&t);
        assert!(g.callees[idx(&t, "top")].contains(&idx(&t, "count_mixed")));
    }

    #[test]
    fn poll_credit_propagates_to_callers() {
        let t = table(&[(
            "a.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c(t: &CancelToken) { t.check(); }\n",
        )]);
        let g = CallGraph::build(&t);
        let seed: Vec<bool> = t.fns.iter().map(|e| !e.facts.polls.is_empty()).collect();
        let polls = g.propagate_to_callers(&seed);
        assert!(polls[idx(&t, "a")] && polls[idx(&t, "b")] && polls[idx(&t, "c")]);
    }

    #[test]
    fn reachability_is_forward() {
        let t = table(&[(
            "a.rs",
            "fn parallel_pass() { helper(); }\nfn helper() {}\nfn unrelated() { parallel_pass(); }\n",
        )]);
        let g = CallGraph::build(&t);
        let reach = g.reachable_from(&[idx(&t, "parallel_pass")]);
        assert!(reach[idx(&t, "helper")]);
        assert!(!reach[idx(&t, "unrelated")], "callers are not reachable");
    }
}
