//! The suppression baseline: a checked-in list of grandfathered findings
//! that `xtask analyze` subtracts before deciding the exit code.
//!
//! Inline allow directives are the preferred suppression — the reason
//! sits next to the code. The baseline exists for the other case: a new
//! lint landing on an existing tree with findings that are *real* but
//! not this PR's work to fix. They stay visible here (reviewable, greppable,
//! shrinking over time) instead of blocking the gate or being silenced
//! with ad-hoc allows nobody revisits.
//!
//! Format, one finding per line (order irrelevant, `#` comments kept by
//! hand): `L012 crates/txdb/src/scan.rs:87`. Entries match exactly on
//! (lint, path, line); refresh with `xtask analyze --update-baseline`
//! after intentional changes.

use crate::lints::Finding;
use std::io;
use std::path::Path;

/// One baseline entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Lint id.
    pub lint: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// The baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Parse a baseline file's text. Unparseable lines are ignored (a
/// mangled entry resurfaces its finding, which is the safe direction).
pub fn parse(text: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((lint, loc)) = line.split_once(char::is_whitespace) else {
            continue;
        };
        let Some((path, lineno)) = loc.trim().rsplit_once(':') else {
            continue;
        };
        let Ok(lineno) = lineno.parse::<u32>() else {
            continue;
        };
        entries.push(Entry {
            lint: lint.to_string(),
            path: path.to_string(),
            line: lineno,
        });
    }
    entries
}

/// Load the baseline under `root`; a missing file is an empty baseline.
pub fn load(root: &Path) -> Vec<Entry> {
    match std::fs::read_to_string(root.join(BASELINE_FILE)) {
        Ok(text) => parse(&text),
        Err(_) => Vec::new(),
    }
}

/// Split `findings` into (kept, baselined-count): findings matching a
/// baseline entry are dropped.
pub fn filter(findings: Vec<Finding>, baseline: &[Entry]) -> (Vec<Finding>, usize) {
    let before = findings.len();
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            !baseline
                .iter()
                .any(|e| e.lint == f.lint && e.path == f.path && e.line == f.line)
        })
        .collect();
    let baselined = before - kept.len();
    (kept, baselined)
}

/// Write `findings` as the new baseline under `root`.
pub fn write(root: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut out = String::from(
        "# negassoc lint baseline: grandfathered findings `xtask analyze` subtracts.\n\
         # One `LINT path:line` per line; regenerate with `xtask analyze --update-baseline`.\n\
         # Prefer fixing the code or an inline `negassoc-lint: allow(..) -- reason`;\n\
         # entries here are acknowledged debt, expected to shrink.\n",
    );
    for f in findings {
        out.push_str(&format!("{} {}:{}\n", f.lint, f.path, f.line));
    }
    std::fs::write(root.join(BASELINE_FILE), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_garbage() {
        let entries = parse(
            "# header\n\nL012 crates/txdb/src/scan.rs:87\nnot an entry\nL010 a/b.rs:notaline\n",
        );
        assert_eq!(
            entries,
            [Entry {
                lint: "L012".into(),
                path: "crates/txdb/src/scan.rs".into(),
                line: 87,
            }]
        );
    }

    #[test]
    fn filter_subtracts_exact_matches_only() {
        let baseline = parse("L012 a.rs:5\n");
        let findings = vec![
            Finding {
                lint: "L012",
                path: "a.rs".into(),
                line: 5,
                message: "m".into(),
            },
            Finding {
                lint: "L012",
                path: "a.rs".into(),
                line: 6,
                message: "m".into(),
            },
        ];
        let (kept, baselined) = filter(findings, &baseline);
        assert_eq!(baselined, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 6);
    }
}
