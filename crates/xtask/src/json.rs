//! Minimal JSON emission for `xtask analyze --json` (no serde in an
//! offline workspace; the schema is flat enough to write by hand).

use crate::lints::Finding;
use crate::Analysis;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an analysis as a JSON document:
/// `{"files_scanned":N,"findings":[…],"counts":{"L001":n,…}}`.
pub fn render(analysis: &Analysis) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        *counts.entry(f.lint).or_default() += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", analysis.files_scanned);
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}", render_finding(f));
    }
    if analysis.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"counts\": {");
    for (i, (lint, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(lint), n);
    }
    if counts.is_empty() {
        out.push_str("}\n");
    } else {
        out.push_str("\n  }\n");
    }
    out.push('}');
    out
}

fn render_finding(f: &Finding) -> String {
    format!(
        "{{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
        escape(f.lint),
        escape(&f.path),
        f.line,
        escape(&f.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn renders_empty_and_nonempty() {
        let empty = Analysis::default();
        assert!(render(&empty).contains("\"findings\": []"));

        let one = Analysis {
            findings: vec![Finding {
                lint: "L001",
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "msg".into(),
            }],
            files_scanned: 1,
        };
        let doc = render(&one);
        assert!(doc.contains("\"L001\": 1"));
        assert!(doc.contains("\"line\": 3"));
    }
}
