//! Minimal JSON emission *and parsing* for the workspace (no serde in an
//! offline workspace; the schemas are flat enough to handle by hand).
//!
//! Emission serves `xtask analyze --json`; the parser ([`parse`],
//! [`parse_lines`]) validates every JSON document the workspace emits —
//! the bench artifacts (`BENCH_*.json`) and the `--trace` JSON-lines
//! stream — both in tests and through `xtask validate-json`.

use crate::lints::Finding;
use crate::Analysis;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an analysis as a JSON document: findings (with severity),
/// per-lint counts, and the scan/cache/walk accounting.
pub fn render(analysis: &Analysis) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        *counts.entry(f.lint).or_default() += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", analysis.files_scanned);
    let _ = writeln!(out, "  \"library_files\": {},", analysis.library_files);
    let _ = writeln!(
        out,
        "  \"test_support_files\": {},",
        analysis.test_support_files
    );
    out.push_str("  \"skipped_dirs\": {");
    for (i, (dir, n)) in analysis.skipped_dirs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(dir), n);
    }
    if analysis.skipped_dirs.is_empty() {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}}},",
        analysis.cache_hits, analysis.cache_misses
    );
    let _ = writeln!(out, "  \"baselined\": {},", analysis.baselined);
    let _ = writeln!(
        out,
        "  \"deny\": {}, \"warn\": {},",
        analysis.deny_count(),
        analysis.warn_count()
    );
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}", render_finding(f));
    }
    if analysis.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"counts\": {");
    for (i, (lint, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(lint), n);
    }
    if counts.is_empty() {
        out.push_str("}\n");
    } else {
        out.push_str("\n  }\n");
    }
    out.push('}');
    out
}

fn render_finding(f: &Finding) -> String {
    format!(
        "{{\"lint\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \
         \"message\": \"{}\"}}",
        escape(f.lint),
        crate::lints::lint_info(f.lint).severity.label(),
        escape(&f.path),
        f.line,
        escape(&f.message)
    )
}

/// A parsed JSON value. Object keys keep insertion order (duplicates are
/// a parse error: every emitter in this workspace writes each key once).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the workspace's counters fit).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line emission; `parse(emit(v)) == v` for every
    /// value the workspace builds (numbers emit with enough precision to
    /// round-trip the integer counters).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::String(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.emit_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(k));
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: what went wrong and where (1-based line within the
/// parsed text).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document; trailing whitespace is allowed,
/// trailing content is not.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after the document"));
    }
    Ok(v)
}

/// Parse a JSON-lines stream (one document per non-empty line), as
/// written by the trace sink. Returns every document, or the first
/// failure with its line number in the *stream*.
pub fn parse_lines(text: &str) -> Result<Vec<Value>, ParseError> {
    let mut docs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        docs.push(parse(line).map_err(|e| ParseError {
            line: i + 1,
            message: e.message,
        })?);
    }
    Ok(docs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        ParseError {
            line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.error(format!("unexpected byte {:?}", b as char))),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // `{`
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.error("expected a string key"));
            }
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.error("expected `:` after the key"));
            }
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Object(pairs));
            }
            return Err(self.error("expected `,` or `}` in the object"));
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            return Err(self.error("expected `,` or `]` in the array"));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening `"`
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogates would need pairing; the workspace's
                            // emitters only escape control characters.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume a run of plain characters in one slice —
                    // per-char validation of the remaining input made
                    // parsing quadratic on megabyte documents (the
                    // analyze cache). `"`, `\` and control bytes never
                    // occur inside a multi-byte UTF-8 sequence, so the
                    // run always ends on a char boundary; the input
                    // arrived as a `&str`, so the run itself is valid.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("bad UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn parses_scalars_and_nesting() {
        let v =
            parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\nA"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-2.5),
                Value::Number(1000.0)
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::String("x\nA".into())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\": }",
            "[1,]",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "nul",
            "{\"a\": NaN}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_lines_reports_the_offending_line() {
        let ok = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_lines("{\"a\":1}\n{broken\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rendered_analysis_round_trips_through_the_parser() {
        let one = Analysis {
            findings: vec![Finding {
                lint: "L001",
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "a \"quoted\" message".into(),
            }],
            files_scanned: 1,
            ..Analysis::default()
        };
        let v = parse(&render(&one)).expect("render output parses");
        assert_eq!(v.get("files_scanned"), Some(&Value::Number(1.0)));
        let Some(Value::Array(fs)) = v.get("findings") else {
            panic!("findings array");
        };
        assert_eq!(
            fs[0].get("message"),
            Some(&Value::String("a \"quoted\" message".into()))
        );
    }

    #[test]
    fn renders_empty_and_nonempty() {
        let empty = Analysis::default();
        assert!(render(&empty).contains("\"findings\": []"));

        let one = Analysis {
            findings: vec![Finding {
                lint: "L001",
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "msg".into(),
            }],
            files_scanned: 1,
            ..Analysis::default()
        };
        let doc = render(&one);
        assert!(doc.contains("\"L001\": 1"));
        assert!(doc.contains("\"line\": 3"));
    }
}
