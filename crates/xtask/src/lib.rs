//! The negassoc workspace analyzer: custom static lints over every crate.
//!
//! Run as `cargo run -p xtask -- analyze`. The analyzer walks the
//! workspace with `std::fs`, lexes each Rust file with a hand-rolled
//! scanner, and applies the L001–L009 invariant lints (see
//! [`lints::LINTS`] and DESIGN.md "Invariants & static analysis").
//!
//! Design constraints that shaped it:
//!
//! * **Zero dependencies.** The build environment is offline; an analyzer
//!   must not need anything the toolchain doesn't ship.
//! * **Token-level, not AST-level.** The lints guard call/construction
//!   patterns, which tokens express exactly; a full parser would add
//!   thousands of lines for no additional signal.
//! * **Suppressable with a paper trail.** Any finding can be allowed with
//!   `// negassoc-lint: allow(L00x) — reason`, keeping the justification
//!   next to the code it excuses.

pub mod json;
pub mod lexer;
pub mod lints;
pub mod walk;

use lints::Finding;
use std::path::Path;

/// Result of analyzing a tree: findings plus scan accounting.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All unsuppressed findings, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Files lexed and linted.
    pub files_scanned: usize,
}

/// Analyze every workspace source file under `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut analysis = Analysis::default();
    for file in walk::collect(root)? {
        let source = std::fs::read_to_string(&file.path)?;
        analysis
            .findings
            .extend(analyze_source(&file.rel, &source, file.class));
        analysis.files_scanned += 1;
    }
    analysis
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(analysis)
}

/// Analyze one file's source text. Exposed for fixture tests: `class`
/// controls whether library-only lints apply.
pub fn analyze_source(rel_path: &str, source: &str, class: lints::FileClass) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    lints::lint_file(rel_path, &lexed, class)
}
