//! The negassoc workspace analyzer: custom static lints over every crate.
//!
//! Run as `cargo run -p xtask -- analyze`. The analyzer walks the
//! workspace with `std::fs`, lexes each Rust file with a hand-rolled
//! scanner, runs the token-level lints L001–L009, parses item-level
//! structure ([`parser`]), builds a workspace symbol table and
//! conservative call graph ([`items`], [`graph`]), and runs the
//! flow-level lints L010–L013 ([`flow`]). See [`lints::LINTS`] and
//! DESIGN.md §7/§12.
//!
//! Design constraints that shaped it:
//!
//! * **Zero dependencies.** The build environment is offline; an analyzer
//!   must not need anything the toolchain doesn't ship.
//! * **Token- and item-level, not AST-level.** The token lints guard
//!   call/construction patterns; the flow lints need only fn items,
//!   loops, calls and emits — a full parser would add thousands of
//!   lines for no additional signal.
//! * **Suppressable with a paper trail.** Any finding can be allowed with
//!   `// negassoc-lint: allow(L00x) -- reason` (L013 checks that the
//!   reason exists and the allow still earns its keep), or grandfathered
//!   in the checked-in [`baseline`] file.
//! * **Incremental.** Per-file work is cached by content hash
//!   ([`cache`]); the cross-file passes are pure in-memory and cheap, so
//!   a warm `analyze` stays sub-second in CI.

pub mod baseline;
pub mod cache;
pub mod flow;
pub mod graph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod walk;

use cache::{Cache, FileRecord};
use graph::CallGraph;
use items::SymbolTable;
use lints::{Finding, Severity};
use std::collections::BTreeMap;
use std::path::Path;

/// Result of analyzing a tree: findings plus scan accounting.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All unsuppressed, non-baselined findings, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Findings subtracted by the baseline file.
    pub baselined: usize,
    /// Files lexed and linted.
    pub files_scanned: usize,
    /// Files classified `Library`.
    pub library_files: usize,
    /// Files classified `TestSupport`.
    pub test_support_files: usize,
    /// Directory name → times the walker skipped it.
    pub skipped_dirs: BTreeMap<String, usize>,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files that had to be re-lexed and re-parsed.
    pub cache_misses: usize,
}

impl Analysis {
    /// Findings whose lint severity is `Deny`.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| lints::lint_info(f.lint).severity == Severity::Deny)
            .count()
    }

    /// Findings whose lint severity is `Warn`.
    pub fn warn_count(&self) -> usize {
        self.findings.len() - self.deny_count()
    }
}

/// Knobs for [`analyze_workspace_opts`].
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOptions {
    /// Read/write the content-hash cache under `target/xtask/`.
    pub use_cache: bool,
    /// Subtract the checked-in baseline file.
    pub use_baseline: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            use_cache: true,
            use_baseline: true,
        }
    }
}

/// One in-memory source file for [`analyze_sources`].
#[derive(Clone, Debug)]
pub struct SourceInput<'a> {
    /// Workspace-relative path (drives path-scoped exemptions).
    pub rel: &'a str,
    /// Source text.
    pub source: &'a str,
    /// Library vs test-support.
    pub class: lints::FileClass,
}

/// Analyze every workspace source file under `root` with default
/// options (cache and baseline on).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    analyze_workspace_opts(root, AnalyzeOptions::default())
}

/// Analyze every workspace source file under `root`.
pub fn analyze_workspace_opts(root: &Path, opts: AnalyzeOptions) -> std::io::Result<Analysis> {
    let walked = walk::collect(root)?;
    let cache_file = cache::cache_path(root);
    let mut cache = if opts.use_cache {
        Cache::load(&cache_file)
    } else {
        Cache::default()
    };

    let mut analysis = Analysis {
        library_files: walked.library_count(),
        test_support_files: walked.test_support_count(),
        skipped_dirs: walked.skipped_dirs.clone(),
        ..Analysis::default()
    };

    // Per-file stage, cacheable: lex + token lints + item parse.
    let mut fresh = Cache::default();
    let mut per_file: Vec<(walk::SourceFile, FileRecord)> = Vec::new();
    for file in walked.files {
        let source = std::fs::read_to_string(&file.path)?;
        let hash = cache::fnv1a(source.as_bytes());
        let record = match cache.files.remove(&file.rel) {
            Some(rec) if rec.hash == hash => {
                analysis.cache_hits += 1;
                rec
            }
            _ => {
                analysis.cache_misses += 1;
                let lexed = lexer::lex(&source);
                FileRecord {
                    hash,
                    findings: lints::lint_file(&file.rel, &lexed, file.class),
                    directives: lexed.allows.clone(),
                    facts: parser::parse(&lexed),
                }
            }
        };
        fresh.files.insert(file.rel.clone(), record.clone());
        analysis.files_scanned += 1;
        per_file.push((file, record));
    }
    if opts.use_cache {
        fresh.store(&cache_file);
    }

    analysis.findings = cross_file_pipeline(&per_file);

    if opts.use_baseline {
        let baseline = baseline::load(root);
        let (kept, baselined) = baseline::filter(std::mem::take(&mut analysis.findings), &baseline);
        analysis.findings = kept;
        analysis.baselined = baselined;
    }
    Ok(analysis)
}

/// The cross-file stage shared by the workspace walk and the in-memory
/// [`analyze_sources`]: flow lints over the symbol table, per-file
/// suppression, then allow hygiene (L013).
fn cross_file_pipeline(per_file: &[(walk::SourceFile, FileRecord)]) -> Vec<Finding> {
    // Symbol table from library files only (test helpers must not lend
    // poll/emit credit or receive flow findings).
    let library_facts: Vec<(String, parser::FileFacts)> = per_file
        .iter()
        .filter(|(f, _)| f.class == lints::FileClass::Library)
        .map(|(f, rec)| (f.rel.clone(), rec.facts.clone()))
        .collect();
    let table = SymbolTable::build(&library_facts);
    let graph = CallGraph::build(&table);

    let mut all = flow::flow_lints(&table, &graph);
    for (_, rec) in per_file {
        all.extend(rec.findings.iter().cloned());
    }

    // Suppression: per file, over token + flow findings together, so an
    // allow above a fn header can excuse an L010 as easily as an L001.
    let mut kept = Vec::new();
    let mut by_path: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in all {
        by_path.entry(f.path.clone()).or_default().push(f);
    }
    let mut hygiene = Vec::new();
    for (file, rec) in per_file {
        let mut findings = by_path.remove(&file.rel).unwrap_or_default();
        let mut used = Vec::new();
        lints::apply_allows(&mut findings, &rec.directives, &mut used);
        hygiene.extend(flow::allow_hygiene(
            &file.rel,
            file.class,
            &rec.directives,
            &used,
        ));
        kept.append(&mut findings);
    }
    // Findings for paths with no per_file entry cannot happen (every
    // finding's path came from per_file), but drain defensively.
    for (_, mut findings) in by_path {
        kept.append(&mut findings);
    }
    kept.append(&mut hygiene);
    kept.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    kept
}

/// Run the **full** pipeline (token + flow lints, suppression, L013 —
/// no cache, no baseline) over in-memory sources. This is what the
/// fixture and mutation tests drive: the same semantics as a workspace
/// walk, minus the filesystem.
pub fn analyze_sources(inputs: &[SourceInput<'_>]) -> Vec<Finding> {
    let per_file: Vec<(walk::SourceFile, FileRecord)> = inputs
        .iter()
        .map(|input| {
            let lexed = lexer::lex(input.source);
            let rec = FileRecord {
                hash: 0,
                findings: lints::lint_file(input.rel, &lexed, input.class),
                directives: lexed.allows.clone(),
                facts: parser::parse(&lexed),
            };
            let file = walk::SourceFile {
                path: std::path::PathBuf::from(input.rel),
                rel: input.rel.to_string(),
                class: input.class,
            };
            (file, rec)
        })
        .collect();
    cross_file_pipeline(&per_file)
}

/// Analyze one file's source text through the full pipeline. Kept for
/// fixture tests; `class` controls whether library-only lints apply.
pub fn analyze_source(rel_path: &str, source: &str, class: lints::FileClass) -> Vec<Finding> {
    analyze_sources(&[SourceInput {
        rel: rel_path,
        source,
        class,
    }])
}
