//! A minimal Rust lexer: just enough to lint on.
//!
//! Produces identifier / number / string / punctuation tokens with line
//! numbers, strips comments (collecting `negassoc-lint:` allow directives
//! as it goes), and understands the constructs that would otherwise
//! produce false positives inside literals: nested block comments, raw
//! strings with arbitrary `#` fences, byte/char literals, and lifetimes.
//!
//! It does **not** parse: the lints work on token patterns, which is
//! exactly the right power for "call of `.unwrap()`" or "`==` near a
//! support expression" and keeps the analyzer dependency-free.

/// Token classes the lints distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal (any base, suffixes included).
    Number,
    /// String, raw string, byte string or char literal.
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Punctuation; multi-char operators (`==`, `!=`, `->`, …) are one
    /// token.
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Class of the token.
    pub kind: TokenKind,
    /// Source text of the token (literals are truncated to their opening
    /// delimiter — the lints never need literal contents).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One `// negassoc-lint: allow(…)` directive pulled from a comment.
///
/// A directive suppresses findings on its own line and the line below.
/// `has_reason` records whether a `-- reason` tail was present; L013
/// treats a reasonless directive as a finding of its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Lint ids named inside `allow(…)`, in source order.
    pub ids: Vec<String>,
    /// Whether a `-- reason` (or `— reason`) tail follows the `)`.
    pub has_reason: bool,
}

/// The lexed file: tokens plus the lint-allow directives found in
/// comments.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All tokens, comments stripped.
    pub tokens: Vec<Token>,
    /// Allow directives in source order.
    pub allows: Vec<AllowDirective>,
}

impl LexedFile {
    /// The directive ids covering `line` (its own line or the line above).
    pub fn allows_on(&self, line: u32) -> impl Iterator<Item = &str> {
        self.allows
            .iter()
            .filter(move |d| d.line == line || d.line == line.saturating_sub(1))
            .flat_map(|d| d.ids.iter().map(String::as_str))
    }
}

/// Multi-character operators merged into single tokens, longest first.
const OPERATORS: &[&str] = &[
    "..=", "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "+=", "-=", "*=", "/=",
    "<<", ">>",
];

/// Lex `source`. Unterminated constructs consume to end-of-file rather
/// than erroring: the analyzer must degrade gracefully on any input.
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, i);
                collect_allow_directive(&source[i..end], line, &mut out.allows);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let (end, newlines) = skip_block_comment(bytes, i);
                collect_allow_directive(&source[i..end], line, &mut out.allows);
                line += newlines;
                i = end;
            }
            // Raw identifier `r#match`: one Ident token (keeping the
            // `r#` prefix so a raw keyword never masquerades as the real
            // one), not an `r` ident + `#` punct — and definitely not a
            // raw-string opener.
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).is_some_and(|&b| is_ident_start(b)) =>
            {
                let mut j = i + 3;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[i..j].into(),
                    line,
                });
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let (end, newlines, open) = skip_string_like(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: open,
                    line,
                });
                line += newlines;
                i = end;
            }
            b'"' => {
                let (end, newlines) = skip_quoted(bytes, i, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"".into(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'".into(),
                        line,
                    });
                    i = end;
                } else {
                    // A lifetime: `'` followed by an identifier.
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[i..j].into(),
                        line,
                    });
                    i = j.max(i + 1);
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[i..j].into(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // Digits, underscores, base prefixes, float dots and
                // exponents, numeric suffixes — precision beyond "it is a
                // number" is not needed, but a trailing `.` must not eat a
                // method call (`1.max(2)`).
                while j < bytes.len() {
                    let b = bytes[j];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        j += 1;
                    } else if b == b'.' && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        j += 1;
                    } else if (b == b'+' || b == b'-') && matches!(bytes[j - 1], b'e' | b'E') {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[i..j].into(),
                    line,
                });
                i = j;
            }
            _ => {
                let rest = &source[i..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                let text: String = match op {
                    Some(op) => (*op).into(),
                    None => (c as char).to_string(),
                };
                let len = text.len();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
                i += len;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |p| from + p)
}

/// Skip a (possibly nested) block comment starting at `/*`. Returns (end
/// index, newlines crossed).
fn skip_block_comment(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut depth = 0usize;
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return (i, newlines);
            }
        } else {
            i += 1;
        }
    }
    (bytes.len(), newlines)
}

/// Does `r`/`b` at `i` open a raw/byte string (`r"`, `r#`, `b"`, `br#`,
/// `b'`…) rather than an identifier?
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return true; // byte char b'x'
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    bytes.get(j) == Some(&b'"') && j > i
}

/// Skip a raw/byte string starting at its `r`/`b` prefix. Returns (end,
/// newlines, opening delimiter text).
fn skip_string_like(bytes: &[u8], start: usize) -> (usize, u32, String) {
    let mut j = start;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        // Byte char literal b'x' / b'\n'.
        let end = char_literal_end(bytes, j).unwrap_or(bytes.len());
        return (end, 0, "b'".into());
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    let open: String = String::from_utf8_lossy(&bytes[start..=j]).into_owned();
    j += 1; // past the opening quote
    let mut newlines = 0u32;
    if raw {
        // Scan for `"` followed by `hashes` hash marks; no escapes.
        while j < bytes.len() {
            if bytes[j] == b'\n' {
                newlines += 1;
            } else if bytes[j] == b'"'
                && bytes[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                return (j + 1 + hashes, newlines, open);
            }
            j += 1;
        }
        (bytes.len(), newlines, open)
    } else {
        let (end, nl) = skip_quoted(bytes, j - 1, b'"');
        (end, newlines + nl, open)
    }
}

/// Skip a quoted literal with backslash escapes, starting at the opening
/// quote. Returns (end index, newlines crossed).
fn skip_quoted(bytes: &[u8], start: usize, quote: u8) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            c if c == quote => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

/// If `'` at `i` opens a char literal, its end index; `None` for a
/// lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escape: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            Some(bytes.len())
        }
        _ => {
            // `'x'` is a char; `'x` (no closing quote right after one
            // character) is a lifetime. Multi-byte chars: find the quote
            // within the next 4 bytes.
            let limit = (i + 6).min(bytes.len());
            for j in i + 2..limit {
                if bytes[j] == b'\'' {
                    return Some(j + 1);
                }
                if !is_ident_continue(bytes[j]) {
                    break;
                }
            }
            None
        }
    }
}

/// Pull a `negassoc-lint: allow(...) -- reason` directive out of a
/// comment. The reason tail may use `--`, `—` or `–` as the separator;
/// what matters for L013 is that a non-empty justification follows.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are skipped: they describe
/// the directive syntax (this file does, several times) without enacting
/// it. Ids must have the `L` + three digits shape; placeholders such as
/// `L00x` or `…` in explanatory comments are not directives.
fn collect_allow_directive(comment: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    const MARKER: &str = "negassoc-lint:";
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|d| comment.starts_with(d))
    {
        return;
    }
    let Some(pos) = comment.find(MARKER) else {
        return;
    };
    let rest = comment[pos + MARKER.len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(end) = rest.find(')') else {
        return;
    };
    let ids: Vec<String> = rest[..end]
        .split(',')
        .map(str::trim)
        .filter(|id| is_lint_id(id))
        .map(str::to_string)
        .collect();
    if ids.is_empty() {
        return;
    }
    let mut tail = rest[end + 1..].trim();
    if let Some(stripped) = tail.strip_suffix("*/") {
        tail = stripped.trim();
    }
    let has_reason = ["--", "\u{2014}", "\u{2013}"]
        .iter()
        .any(|sep| tail.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
    allows.push(AllowDirective {
        line,
        ids,
        has_reason,
    });
}

/// `L` followed by exactly three ASCII digits.
fn is_lint_id(id: &str) -> bool {
    id.len() == 4 && id.starts_with('L') && id.as_bytes()[1..].iter().all(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn operators_merge_and_comments_vanish() {
        let t = texts("a == b // c != d\n/* e <= f */ g -> h");
        assert_eq!(t, ["a", "==", "b", "g", "->", "h"]);
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let t = texts(
            r#"x("== inside", 'y', '\n', b"!=", r#f) "#.replace("r#f", "r#\"raw != \"# f").as_str(),
        );
        assert!(t.contains(&"x".to_string()));
        assert!(t.contains(&"f".to_string()));
        assert!(!t.contains(&"!=".to_string()));
        assert!(!t.contains(&"==".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = lex("fn f<'a>(x: &'a str) {}");
        assert!(t
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn lines_survive_multiline_constructs() {
        let src = "/* two\nlines */\nlet x = \"a\nb\";\nfin";
        let lexed = lex(src);
        let fin = lexed.tokens.iter().find(|t| t.text == "fin").unwrap();
        assert_eq!(fin.line, 5);
    }

    #[test]
    fn allow_directives_are_collected() {
        let lexed = lex("foo(); // negassoc-lint: allow(L001, L005)\nbar();");
        assert_eq!(lexed.allows.len(), 1);
        let d = &lexed.allows[0];
        assert_eq!(d.line, 1);
        assert_eq!(d.ids, ["L001", "L005"]);
        assert!(!d.has_reason, "no `--` tail, no reason");
    }

    #[test]
    fn allow_reasons_accept_double_dash_and_dashes() {
        for src in [
            "// negassoc-lint: allow(L003) -- the invariant is checked above",
            "// negassoc-lint: allow(L003) — the invariant is checked above",
            "/* negassoc-lint: allow(L003) -- inside a block comment */",
        ] {
            assert!(lex(src).allows[0].has_reason, "{src:?}");
        }
        for src in [
            "// negassoc-lint: allow(L003)",
            "// negassoc-lint: allow(L003) --",
            "// negassoc-lint: allow(L003) trailing words without a dash",
        ] {
            assert!(!lex(src).allows[0].has_reason, "{src:?}");
        }
    }

    #[test]
    fn doc_comments_and_placeholder_ids_are_not_directives() {
        // Doc comments document the syntax; they never enact it.
        for src in [
            "/// suppress with // negassoc-lint: allow(L001) -- reason",
            "//! suppress with // negassoc-lint: allow(L001) -- reason",
            "/*! negassoc-lint: allow(L001) -- reason */",
            "/** negassoc-lint: allow(L001) -- reason */",
            // Placeholder ids in explanatory comments are not lint ids.
            "// negassoc-lint: allow(L00x) -- reason",
            "// negassoc-lint: allow(...) -- reason",
            "// negassoc-lint: allow(\u{2026}) -- reason",
        ] {
            assert!(lex(src).allows.is_empty(), "{src:?}");
        }
        // Invalid ids are dropped, valid ones in the same directive kept.
        let lexed = lex("// negassoc-lint: allow(L001, L00x) -- reason");
        assert_eq!(lexed.allows[0].ids, ["L001"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        // `r#ident`, a fenced raw string and a fenced raw byte string side
        // by side: the identifiers survive intact, the literal contents
        // leak no tokens.
        let src = "let r#match = 1; let s = r#\"raw != \"#; let b = br#\"bytes == \"#; done";
        let lexed = lex(src);
        let t: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(t.contains(&"r#match"), "raw ident stays one token: {t:?}");
        assert!(
            !t.contains(&"match"),
            "raw keyword must not surface as the real keyword: {t:?}"
        );
        assert!(!t.contains(&"!=") && !t.contains(&"=="), "{t:?}");
        assert!(
            t.contains(&"done"),
            "lexing continues past both fences: {t:?}"
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2,
            "exactly the two raw strings are literals"
        );
    }

    #[test]
    fn byte_char_adjacency_is_not_a_byte_string() {
        // `b'x'` is a byte char; a plain ident `b` followed by a lifetime
        // must not fuse with it.
        let t = texts("let x = b'a'; f::<'b>(x)");
        assert!(t.contains(&"b'".to_string()), "byte char literal: {t:?}");
        assert!(t.contains(&"f".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let t = texts("a /* x /* y */ z */ b");
        assert_eq!(t, ["a", "b"]);
    }
}
