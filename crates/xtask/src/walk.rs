//! Hand-rolled workspace walker: finds the `.rs` files to analyze using
//! nothing but `std::fs`.

use crate::lints::FileClass;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file scheduled for analysis.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (stable across
    /// platforms, used in diagnostics and path-scoped lint exemptions).
    pub rel: String,
    /// Library vs test-support classification.
    pub class: FileClass,
}

/// Directory names whose contents are test support, not library code.
const TEST_DIRS: &[&str] = &["tests", "benches", "examples"];

/// Crates that are experiment/benchmark harnesses end to end: their `src/`
/// is measurement scaffolding, not mining logic, so the library-only lints
/// do not apply.
const BENCH_CRATES: &[&str] = &["crates/bench/"];

/// Directories never descended into: build output, VCS, and the vendored
/// third-party stand-ins (not ours to lint).
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", ".claude"];

/// The collected tree plus the accounting the JSON summary reports: a
/// misclassified crate shows up as a suspicious class count or an
/// unexpected skipped directory rather than being silently unlinted.
#[derive(Debug, Default)]
pub struct Walked {
    /// Every `.rs` file, classified, in sorted `rel` order.
    pub files: Vec<SourceFile>,
    /// Directory name → times it was skipped (never descended into).
    pub skipped_dirs: BTreeMap<String, usize>,
}

impl Walked {
    /// Files classified `Library`.
    pub fn library_count(&self) -> usize {
        self.files
            .iter()
            .filter(|f| f.class == FileClass::Library)
            .count()
    }

    /// Files classified `TestSupport`.
    pub fn test_support_count(&self) -> usize {
        self.files.len() - self.library_count()
    }
}

/// Collect every `.rs` file under `root`, classified. Deterministic
/// (sorted) order so diagnostics are stable run to run.
pub fn collect(root: &Path) -> io::Result<Walked> {
    let mut out = Walked::default();
    descend(root, root, false, &mut out)?;
    out.files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn descend(root: &Path, dir: &Path, in_test_dir: bool, out: &mut Walked) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                *out.skipped_dirs.entry(name).or_default() += 1;
                continue;
            }
            let test_dir = in_test_dir || TEST_DIRS.contains(&name.as_str());
            descend(root, &path, test_dir, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let bench_crate = BENCH_CRATES.iter().any(|p| rel.starts_with(p));
            out.files.push(SourceFile {
                path,
                rel,
                class: if in_test_dir || bench_crate {
                    FileClass::TestSupport
                } else {
                    FileClass::Library
                },
            });
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a directory with
/// a `Cargo.toml` containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
