//! The workspace symbol table: every library function's facts, indexed
//! for call resolution.
//!
//! Only `Library`-class files contribute — fixtures, benches and
//! `#[cfg(test)]` helpers must never lend "polls the token" or "emits
//! the end event" credit to production code, and the flow lints never
//! report into them either.

use crate::parser::{FileFacts, FnFacts};
use std::collections::HashMap;

/// One table entry: a function plus the file it lives in.
#[derive(Clone, Debug)]
pub struct FnEntry {
    /// Workspace-relative path.
    pub path: String,
    /// Parsed facts (signature + body summary).
    pub facts: FnFacts,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All entries, in (path, line) order.
    pub fns: Vec<FnEntry>,
    /// Bare name → entry indexes.
    pub by_name: HashMap<String, Vec<usize>>,
    /// `Type::name` → entry indexes (impl methods only).
    pub by_qual: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Build the table from per-file facts of **library** files.
    /// `#[cfg(test)]` functions are dropped here.
    pub fn build(files: &[(String, FileFacts)]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (path, facts) in files {
            for f in &facts.fns {
                if f.in_cfg_test {
                    continue;
                }
                table.fns.push(FnEntry {
                    path: path.clone(),
                    facts: f.clone(),
                });
            }
        }
        table
            .fns
            .sort_by(|a, b| (&a.path, a.facts.line).cmp(&(&b.path, b.facts.line)));
        for (i, e) in table.fns.iter().enumerate() {
            table
                .by_name
                .entry(e.facts.name.clone())
                .or_default()
                .push(i);
            if e.facts.qual != e.facts.name {
                table
                    .by_qual
                    .entry(e.facts.qual.clone())
                    .or_default()
                    .push(i);
            }
        }
        table
    }
}
