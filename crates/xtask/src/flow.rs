//! The flow-level lints, L010–L013: cross-file checks over the symbol
//! table and call graph (DESIGN.md §12).
//!
//! * **L010** — a library fn taking `&CancelToken`/`RunControl` that
//!   contains a loop must poll the token inside the loop scope, either
//!   directly (`.check()` / `.is_cancelled()`) or by calling, from
//!   inside the loop, a fn that transitively polls. Merely *passing the
//!   token along* earns no credit: a wrapper that hands its token to a
//!   polling callee but spins its own unpolled loop is still a finding.
//! * **L011** — a fn constructing `Event::PassStart` must construct
//!   `Event::PassEnd` too (itself, or via a callee that transitively
//!   does), and must not `return` between the first start and the last
//!   end. `?` exits are exempt by design: the pass-end contract only
//!   covers successful paths (the obs vocabulary pairs errors with
//!   `RunEnd`, not `PassEnd`).
//! * **L012** (warn) — fns reachable from `parallel_pass*` /
//!   `count_mixed_parallel*` must not mention `Mutex`/`RwLock` or
//!   allocate inside a loop; counting workers use private structures
//!   merged afterwards (DESIGN.md §9). `txdb/src/obs.rs` is exempt (its
//!   trace sinks are the sanctioned, gated-off-hot-path locks), as is
//!   `crates/xtask/` itself (tooling, not mining code).
//! * **L013** — every allow directive must carry a `-- reason` and must
//!   still suppress at least one finding per listed id; stale ids and
//!   reasonless directives are findings. L013 itself cannot be allowed
//!   away (an allow that excuses allow-hygiene is a contradiction), but
//!   the baseline still applies.

use crate::graph::CallGraph;
use crate::items::SymbolTable;
use crate::lexer::AllowDirective;
use crate::lints::{FileClass, Finding};
use crate::parser::EmitKind;

/// L012's roots: hot-path entry points by name prefix.
const HOT_ROOT_PREFIXES: &[&str] = &["parallel_pass", "count_mixed_parallel"];

/// Files exempt from L012: the obs layer's sinks are the sanctioned
/// locks, gated off the hot path behind `Obs::enabled`.
const L012_EXEMPT: &[&str] = &["txdb/src/obs.rs"];

/// Is `path` out of L012's scope? Besides the per-file exemptions, the
/// analyzer crate itself is excluded wholesale: it is tooling, never on
/// the mining hot path, and its generically named fns (`parse`, `write`,
/// `build`) would otherwise absorb call-graph edges from the real hot
/// path through the conservative by-name resolution.
fn l012_exempt(path: &str) -> bool {
    path.starts_with("crates/xtask/") || L012_EXEMPT.iter().any(|p| path.ends_with(p))
}

/// Run L010–L012 over the table/graph. Findings come back unsuppressed;
/// the caller routes them through `apply_allows` and the baseline.
pub fn flow_lints(table: &SymbolTable, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let polls_transitively = graph.propagate_to_callers(
        &table
            .fns
            .iter()
            .map(|e| !e.facts.polls.is_empty())
            .collect::<Vec<_>>(),
    );
    let ends_transitively = graph.propagate_to_callers(
        &table
            .fns
            .iter()
            .map(|e| e.facts.emits(EmitKind::PassEnd))
            .collect::<Vec<_>>(),
    );

    // L010: cancellation coverage.
    for (i, e) in table.fns.iter().enumerate() {
        let Some(param) = e.facts.token_param() else {
            continue;
        };
        if !e.facts.has_loop {
            continue;
        }
        let delegated = graph.loop_callees[i].iter().any(|&c| polls_transitively[c]);
        if !e.facts.polls_in_loop() && !delegated {
            findings.push(Finding {
                lint: "L010",
                path: e.path.clone(),
                line: e.facts.line,
                message: format!(
                    "`{}` takes `{}: {}` and loops, but nothing in the loop polls it; \
                     add `.check()?` / `.is_cancelled()` to the loop body (or call a \
                     polling fn from it)",
                    e.facts.qual, param.name, param.ty
                ),
            });
        }
    }

    // L011: pass-event pairing.
    for (i, e) in table.fns.iter().enumerate() {
        if !e.facts.emits(EmitKind::PassStart) {
            continue;
        }
        if !e.facts.emits(EmitKind::PassEnd) {
            let delegated = graph.callees[i].iter().any(|&c| ends_transitively[c]);
            if !delegated {
                findings.push(Finding {
                    lint: "L011",
                    path: e.path.clone(),
                    line: e.facts.line,
                    message: format!(
                        "`{}` emits Event::PassStart but never Event::PassEnd (and no \
                         callee emits it); every started pass must report its end",
                        e.facts.qual
                    ),
                });
            }
            continue;
        }
        let first_start = e
            .facts
            .emits
            .iter()
            .filter(|em| em.kind == EmitKind::PassStart)
            .map(|em| em.order)
            .min()
            .unwrap_or(0);
        let last_end = e
            .facts
            .emits
            .iter()
            .filter(|em| em.kind == EmitKind::PassEnd)
            .map(|em| em.order)
            .max()
            .unwrap_or(0);
        for &(line, order) in &e.facts.returns {
            if order > first_start && order < last_end {
                findings.push(Finding {
                    lint: "L011",
                    path: e.path.clone(),
                    line,
                    message: format!(
                        "`{}` returns between Event::PassStart and Event::PassEnd, \
                         skipping the end emit on this path; emit PassEnd before \
                         returning (or restructure so only `?` exits early)",
                        e.facts.qual
                    ),
                });
            }
        }
    }

    // L012: hot-path purity.
    let roots: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            HOT_ROOT_PREFIXES
                .iter()
                .any(|p| e.facts.name.starts_with(p))
        })
        .map(|(i, _)| i)
        .collect();
    let reachable = graph.reachable_from(&roots);
    for (i, e) in table.fns.iter().enumerate() {
        if !reachable[i] || l012_exempt(&e.path) {
            continue;
        }
        for &line in &e.facts.locks {
            findings.push(Finding {
                lint: "L012",
                path: e.path.clone(),
                line,
                message: format!(
                    "`{}` is reachable from the hot counting path and mentions a \
                     Mutex/RwLock; workers use private structures merged after the \
                     pass (DESIGN.md \u{00a7}9)",
                    e.facts.qual
                ),
            });
        }
        for (line, idiom) in &e.facts.loop_allocs {
            findings.push(Finding {
                lint: "L012",
                path: e.path.clone(),
                line: *line,
                message: format!(
                    "`{}` allocates (`{}`) inside a loop on the hot counting path; \
                     hoist the buffer out of the loop and reuse it",
                    e.facts.qual, idiom
                ),
            });
        }
    }

    findings
}

/// L013: allow-directive hygiene for one library file. `used` holds the
/// `(directive line, lint id)` pairs that suppressed a finding.
pub fn allow_hygiene(
    path: &str,
    class: FileClass,
    directives: &[AllowDirective],
    used: &[(u32, String)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if class != FileClass::Library {
        return findings;
    }
    for d in directives {
        if !d.has_reason {
            findings.push(Finding {
                lint: "L013",
                path: path.to_string(),
                line: d.line,
                message: format!(
                    "allow({}) has no `-- reason`; every suppression documents why \
                     the invariant does not apply here",
                    d.ids.join(", ")
                ),
            });
        }
        for id in &d.ids {
            let hit = used.iter().any(|(line, uid)| *line == d.line && uid == id);
            if !hit {
                findings.push(Finding {
                    lint: "L013",
                    path: path.to_string(),
                    line: d.line,
                    message: format!(
                        "stale allow({id}): it no longer suppresses any finding on \
                         this or the next line; delete it"
                    ),
                });
            }
        }
    }
    findings
}
