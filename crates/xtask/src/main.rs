//! `cargo run -p xtask -- analyze` — the workspace static analyzer —
//! plus `validate-json`, the schema-free checker for every JSON document
//! the workspace emits.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "xtask <analyze|validate-json|help> [options]

  analyze        run the L001-L013 invariant lints over the workspace
                 (token lints L001-L009, cross-file flow lints L010-L013)
                 --json             machine-readable output
                 --deny-all        treat warn-level findings as deny
                 --list             print the lint registry (id, severity,
                                    token/flow level) and exit
                 --root PATH        analyze PATH instead of the enclosing
                                    workspace
                 --no-cache         ignore and do not write the incremental
                                    cache (target/xtask/analyze-cache.json)
                 --update-baseline  rewrite lint-baseline.txt from the
                                    current findings and exit 0

                 exit codes: 0 = clean (warn-level findings allowed unless
                 --deny-all), 1 = deny-level findings remain (--deny-all:
                 any findings at all), 2 = usage or I/O error

  validate-json  parse FILE and exit nonzero on the first syntax error
                 FILE         the document (or stream) to check
                 --lines      JSON-lines mode: one document per line,
                              as written by `negrules … --trace FILE`

Findings are suppressed by a justification comment on the same or the
preceding line:  // negassoc-lint: allow(L00x) -- reason
(L013 fails reasonless or stale allows), or grandfathered in
lint-baseline.txt at the workspace root.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(args.collect()),
        Some("validate-json") => validate_json(args.collect()),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn validate_json(args: Vec<String>) -> ExitCode {
    let mut lines = false;
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--lines" => lines = true,
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => {
                eprintln!("error: unknown option {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: validate-json needs a file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = if lines {
        xtask::json::parse_lines(&text).map(|docs| format!("{} documents", docs.len()))
    } else {
        xtask::json::parse(&text).map(|_| "1 document".to_owned())
    };
    match outcome {
        Ok(what) => {
            println!("{file}: valid JSON ({what})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {file}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn analyze(args: Vec<String>) -> ExitCode {
    let mut json = false;
    let mut deny_all = false;
    let mut update_baseline = false;
    let mut opts = xtask::AnalyzeOptions::default();
    let mut root: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--no-cache" => opts.use_cache = false,
            "--update-baseline" => {
                update_baseline = true;
                // The new baseline is computed from findings *before*
                // the old baseline subtracts anything.
                opts.use_baseline = false;
            }
            "--list" => {
                for lint in xtask::lints::LINTS {
                    println!(
                        "{}  {:4}  {:5}  {}",
                        lint.id,
                        lint.severity.label(),
                        lint.level.label(),
                        lint.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match xtask::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no enclosing workspace (pass --root)");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match xtask::analyze_workspace_opts(&root, opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        if let Err(e) = xtask::baseline::write(&root, &analysis.findings) {
            eprintln!("error: writing baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} finding{} grandfathered",
            analysis.findings.len(),
            if analysis.findings.len() == 1 {
                ""
            } else {
                "s"
            }
        );
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", xtask::json::render(&analysis));
    } else {
        for f in &analysis.findings {
            println!(
                "{} [{}] {}:{}: {}",
                f.lint,
                xtask::lints::lint_info(f.lint).severity.label(),
                f.path,
                f.line,
                f.message
            );
        }
        println!(
            "analyzed {} files ({} library, {} test-support; cache {}/{}): \
             {} deny, {} warn, {} baselined",
            analysis.files_scanned,
            analysis.library_files,
            analysis.test_support_files,
            analysis.cache_hits,
            analysis.cache_hits + analysis.cache_misses,
            analysis.deny_count(),
            analysis.warn_count(),
            analysis.baselined,
        );
    }

    let failing = if deny_all {
        analysis.findings.len()
    } else {
        analysis.deny_count()
    };
    if failing > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
