//! `cargo run -p xtask -- analyze` — the workspace static analyzer —
//! plus `validate-json`, the schema-free checker for every JSON document
//! the workspace emits.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "xtask <analyze|validate-json|help> [options]

  analyze        run the L001-L009 invariant lints over the workspace
                 --json       machine-readable output
                 --deny-all   exit nonzero when any finding remains
                 --list       print the lint registry and exit
                 --root PATH  analyze PATH instead of the enclosing workspace

  validate-json  parse FILE and exit nonzero on the first syntax error
                 FILE         the document (or stream) to check
                 --lines      JSON-lines mode: one document per line,
                              as written by `negrules … --trace FILE`

Findings are suppressed by a justification comment on the same or the
preceding line:  // negassoc-lint: allow(L00x) -- reason";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(args.collect()),
        Some("validate-json") => validate_json(args.collect()),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn validate_json(args: Vec<String>) -> ExitCode {
    let mut lines = false;
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--lines" => lines = true,
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_owned()),
            other => {
                eprintln!("error: unknown option {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: validate-json needs a file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = if lines {
        xtask::json::parse_lines(&text).map(|docs| format!("{} documents", docs.len()))
    } else {
        xtask::json::parse(&text).map(|_| "1 document".to_owned())
    };
    match outcome {
        Ok(what) => {
            println!("{file}: valid JSON ({what})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {file}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn analyze(args: Vec<String>) -> ExitCode {
    let mut json = false;
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--list" => {
                for lint in xtask::lints::LINTS {
                    println!("{}  {}", lint.id, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown option {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match xtask::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no enclosing workspace (pass --root)");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match xtask::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", xtask::json::render(&analysis));
    } else {
        for f in &analysis.findings {
            println!("{} {}:{}: {}", f.lint, f.path, f.line, f.message);
        }
        println!(
            "analyzed {} files: {} finding{}",
            analysis.files_scanned,
            analysis.findings.len(),
            if analysis.findings.len() == 1 {
                ""
            } else {
                "s"
            }
        );
    }

    if deny_all && !analysis.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
