//! A lightweight item-level parser on top of [`crate::lexer`].
//!
//! This is deliberately **not** a Rust AST. It recovers exactly the
//! structure the flow lints (L010–L012) need and nothing more:
//!
//! * `fn` items with their signatures (name, `impl` qualifier, params
//!   with joined type tokens) — enough to find token-carrying functions
//!   and to key the workspace symbol table;
//! * loop structure — `for`/`while`/`loop` bodies, plus the bodies of
//!   parameterized closures handed to the workspace's iteration drivers
//!   (`pass`, `parallel_map`, `parallel_pass*`, `for_each`), which run
//!   once per item and are therefore loop scopes too. Zero-parameter
//!   closures are thunks (the obs layer's lazily-evaluated `emit`
//!   payloads) and are **not** loop scopes;
//! * per-function facts: direct `CancelToken` polls, call sites (with
//!   loop context), `Event::PassStart`/`PassEnd` emissions (match
//!   *patterns* on those variants are recognized and skipped), `return`
//!   statements, `Mutex`/`RwLock` mentions, and allocation idioms inside
//!   loops.
//!
//! Soundness caveats (see DESIGN.md §12): calls resolve by name later,
//! macro bodies are scanned as plain tokens, and a closure stored in a
//! struct escapes the loop-scope heuristic. The lints that consume these
//! facts are tuned so the approximations err toward *reporting*, with
//! allow directives as the escape hatch.

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::lints::{cfg_test_spans, matching};

/// One `name: Type` parameter (receivers like `&mut self` are dropped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Binding name (the last identifier of the pattern).
    pub name: String,
    /// Type tokens joined with spaces, e.g. `Option < & CancelToken >`.
    pub ty: String,
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// For `Qual::name(…)`: the segment before the final `::`.
    pub qual: Option<String>,
    /// `recv.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// Whether the call sits inside a loop scope.
    pub in_loop: bool,
}

/// A direct `.check()` / `.is_cancelled()` token poll.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PollSite {
    /// 1-based line.
    pub line: u32,
    /// Whether the poll sits inside a loop scope.
    pub in_loop: bool,
}

/// Which half of the pass-tracing pair an emission constructs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitKind {
    /// `Event::PassStart { … }` construction.
    PassStart,
    /// `Event::PassEnd { … }` construction.
    PassEnd,
}

/// One `Event::PassStart`/`PassEnd` construction (never a match pattern).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmitSite {
    /// Start or end.
    pub kind: EmitKind,
    /// 1-based line.
    pub line: u32,
    /// Token index, for ordering against `return`s.
    pub order: u32,
}

/// Everything the flow lints need to know about one function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FnFacts {
    /// Bare name (`partition_mine_ctrl`).
    pub name: String,
    /// `Type::name` for `impl` methods, the bare name otherwise.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]`-gated item.
    pub in_cfg_test: bool,
    /// Declared parameters (receivers dropped).
    pub params: Vec<Param>,
    /// Contains at least one loop scope.
    pub has_loop: bool,
    /// Direct token polls.
    pub polls: Vec<PollSite>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// `Event::PassStart`/`PassEnd` constructions.
    pub emits: Vec<EmitSite>,
    /// `return` statements as (line, token-index) pairs.
    pub returns: Vec<(u32, u32)>,
    /// Lines mentioning `Mutex` / `RwLock`.
    pub locks: Vec<u32>,
    /// Allocation idioms inside loop scopes, as (line, idiom) pairs.
    pub loop_allocs: Vec<(u32, String)>,
}

impl FnFacts {
    /// The first parameter whose type names a cancellation carrier.
    pub fn token_param(&self) -> Option<&Param> {
        self.params
            .iter()
            .find(|p| p.ty.contains("CancelToken") || p.ty.contains("RunControl"))
    }

    /// Any direct poll inside a loop scope?
    pub fn polls_in_loop(&self) -> bool {
        self.polls.iter().any(|p| p.in_loop)
    }

    /// Does the function construct the given event at all?
    pub fn emits(&self, kind: EmitKind) -> bool {
        self.emits.iter().any(|e| e.kind == kind)
    }
}

/// The parsed shape of one file: functions plus item inventory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FileFacts {
    /// Every `fn` with a body, in source order (nested fns included,
    /// each owning only its own tokens).
    pub fns: Vec<FnFacts>,
    /// `mod` names declared or defined in the file.
    pub mods: Vec<String>,
    /// `use` paths, `::`-joined.
    pub uses: Vec<String>,
}

/// Closure arguments to these callees run once per item: their bodies
/// are loop scopes for the flow lints.
const ITER_CALLEES: &[&str] = &[
    "pass",
    "parallel_map",
    "parallel_pass",
    "parallel_pass_ctrl",
    "for_each",
];

/// Keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "return", "while", "for", "loop", "in", "as", "let", "move", "mut",
    "ref", "break", "continue", "unsafe", "where", "impl", "fn", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "crate", "super", "dyn", "await", "async",
];

/// Allocation idioms L012 looks for inside loop scopes, as
/// `Type::method` path calls.
const ALLOC_PATHS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("String", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
];

/// Parse one lexed file into item-level facts.
pub fn parse(lexed: &LexedFile) -> FileFacts {
    let toks = &lexed.tokens;
    let test_spans = cfg_test_spans(toks);
    let in_test = |line: u32| test_spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));

    let mut facts = FileFacts::default();
    // (open, end) token spans of every fn body, for nested-fn exclusion.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    // Stack of enclosing `impl Type` blocks as (type, end-token-index).
    let mut impls: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while impls.last().is_some_and(|&(_, end)| i >= end) {
            impls.pop();
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => {
                let mut path = Vec::new();
                let mut j = i + 1;
                while j < toks.len() && toks[j].text != ";" {
                    path.push(toks[j].text.clone());
                    j += 1;
                }
                if !path.is_empty() {
                    facts.uses.push(path.join(""));
                }
                i = j;
            }
            "mod" => {
                if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    facts.mods.push(n.text.clone());
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, open, end)) = parse_impl_header(toks, i) {
                    impls.push((ty, end));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "fn" if toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                if let Some((f, open, end)) = parse_fn(toks, i, &impls, &in_test) {
                    spans.push((open, end));
                    facts.fns.push(f);
                }
                i += 2;
            }
            _ => i += 1,
        }
    }

    // Second pass: extract body facts, excluding nested fn spans.
    for (k, &(open, end)) in spans.iter().enumerate() {
        let nested: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|&(j, &(o, e))| j != k && o > open && e <= end)
            .map(|(_, &s)| s)
            .collect();
        let mut scan = BodyScan {
            toks,
            skip: &nested,
            facts: &mut facts.fns[k],
        };
        scan.walk(open + 1, end - 1, false, None);
    }
    facts
}

/// Parse an `impl …` header at `i`. Returns (self type, body-open index,
/// body-end index).
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let open = (i + 1..toks.len()).find(|&k| toks[k].text == "{")?;
    let end = matching(toks, open, "{", "}")?;
    // Header tokens: skip leading generics, then the self type is the
    // first identifier after the trait-separating `for` (if any — HRTB
    // `for<…>` in bounds is followed by `<` and skipped).
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j).unwrap_or(open);
    }
    let mut after_for = None;
    for k in j..open {
        if toks[k].text == "for" && toks.get(k + 1).is_some_and(|n| n.text != "<") {
            after_for = Some(k + 1);
        }
    }
    let from = after_for.unwrap_or(j);
    let ty = (from..open)
        .find(|&k| toks[k].kind == TokenKind::Ident)
        .map(|k| toks[k].text.clone())?;
    Some((ty, open, end))
}

/// Skip a balanced `<…>` starting at `from` (which must be `<`),
/// weighting the merged `<<`/`>>` operator tokens double.
fn skip_angles(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in from..toks.len() {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        if depth <= 0 {
            return Some(k + 1);
        }
    }
    None
}

/// Parse the fn item whose `fn` keyword is at `i`. Returns the facts
/// (signature only; the body is scanned later) plus the body span.
/// Bodyless trait declarations return `None`.
fn parse_fn(
    toks: &[Token],
    i: usize,
    impls: &[(String, usize)],
    in_test: &dyn Fn(u32) -> bool,
) -> Option<(FnFacts, usize, usize)> {
    let name = toks[i + 1].text.clone();
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j)?;
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let params_end = matching(toks, j, "(", ")")?;
    let params = parse_params(&toks[j + 1..params_end - 1]);
    // Scan past the return type / where clause for the body. A `;` first
    // means a bodyless trait declaration.
    let mut k = params_end;
    let open = loop {
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("{") => break k,
            Some(";") | None => return None,
            _ => k += 1,
        }
    };
    let end = matching(toks, open, "{", "}")?;
    let qual = match impls.last() {
        Some((ty, _)) => format!("{ty}::{name}"),
        None => name.clone(),
    };
    let line = toks[i].line;
    Some((
        FnFacts {
            name,
            qual,
            line,
            in_cfg_test: in_test(line),
            params,
            ..FnFacts::default()
        },
        open,
        end,
    ))
}

/// Split a parameter list at top-level commas; drop receivers.
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let piece = |lo: usize, hi: usize, params: &mut Vec<Param>| {
        let part = &toks[lo..hi];
        if part.iter().any(|t| t.text == "self") {
            return; // receiver
        }
        let Some(colon) = part.iter().position(|t| t.text == ":") else {
            return;
        };
        let name = part[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let ty = part[colon + 1..]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        params.push(Param { name, ty });
    };
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            "<<" => depth += 2,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth == 0 => {
                piece(start, k, &mut params);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        piece(start, toks.len(), &mut params);
    }
    params
}

/// The body-facts scanner: one linear walk per fn with explicit loop
/// context, recursing only into constructs that change that context.
struct BodyScan<'a> {
    toks: &'a [Token],
    /// Nested fn body spans owned by inner items, skipped entirely.
    skip: &'a [(usize, usize)],
    facts: &'a mut FnFacts,
}

impl BodyScan<'_> {
    /// Walk `[lo, hi)`. `in_loop` marks a loop scope; `call_ctx` names
    /// the innermost call whose argument list we are inside.
    fn walk(&mut self, lo: usize, hi: usize, in_loop: bool, call_ctx: Option<&str>) {
        let mut i = lo;
        while i < hi.min(self.toks.len()) {
            if let Some(&(_, end)) = self.skip.iter().find(|&&(o, _)| o == i) {
                i = end;
                continue;
            }
            let t = &self.toks[i];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "loop") => {
                    if let Some((open, end)) = self.brace_after(i + 1, hi) {
                        self.facts.has_loop = true;
                        self.walk(open + 1, end - 1, true, None);
                        i = end;
                        continue;
                    }
                }
                (TokenKind::Ident, "for")
                    if self.toks.get(i + 1).is_some_and(|n| n.text != "<") =>
                {
                    if let Some((open, end)) = self.loop_body(i + 1, hi) {
                        self.facts.has_loop = true;
                        // The iterated expression evaluates once.
                        self.walk(i + 1, open, in_loop, call_ctx);
                        self.walk(open + 1, end - 1, true, None);
                        i = end;
                        continue;
                    }
                }
                (TokenKind::Ident, "while") => {
                    if let Some((open, end)) = self.loop_body(i + 1, hi) {
                        self.facts.has_loop = true;
                        // The condition re-evaluates every iteration: it
                        // is part of the loop scope.
                        self.walk(i + 1, open, true, call_ctx);
                        self.walk(open + 1, end - 1, true, None);
                        i = end;
                        continue;
                    }
                }
                (TokenKind::Ident, "return") => {
                    self.facts.returns.push((t.line, i as u32));
                }
                (TokenKind::Ident, "Event")
                    if self.toks.get(i + 1).is_some_and(|n| n.text == "::") =>
                {
                    if let Some(kind) = match self.toks.get(i + 2).map(|n| n.text.as_str()) {
                        Some("PassStart") => Some(EmitKind::PassStart),
                        Some("PassEnd") => Some(EmitKind::PassEnd),
                        _ => None,
                    } {
                        if self.is_construction(i + 3) {
                            self.facts.emits.push(EmitSite {
                                kind,
                                line: t.line,
                                order: i as u32,
                            });
                        }
                    }
                }
                (TokenKind::Ident, "Mutex" | "RwLock") => {
                    self.facts.locks.push(t.line);
                }
                (TokenKind::Ident, name) if self.toks.get(i + 1).is_some_and(|n| n.text == "(") => {
                    if !NON_CALL_KEYWORDS.contains(&name) {
                        self.record_call(i, in_loop);
                        let end = matching(self.toks, i + 1, "(", ")").unwrap_or(i + 2);
                        let callee = self.toks[i].text.clone();
                        self.walk(i + 2, end - 1, in_loop, Some(&callee));
                        i = end;
                        continue;
                    }
                }
                (TokenKind::Ident, "vec" | "format")
                    if in_loop && self.toks.get(i + 1).is_some_and(|n| n.text == "!") =>
                {
                    self.facts
                        .loop_allocs
                        .push((t.line, format!("{}!", t.text)));
                }
                (TokenKind::Ident, ty)
                    if in_loop
                        && ALLOC_PATHS.iter().any(|(p, _)| *p == ty)
                        && self.toks.get(i + 1).is_some_and(|n| n.text == "::") =>
                {
                    let methods = ALLOC_PATHS.iter().find(|(p, _)| *p == ty).map(|(_, m)| *m);
                    if let Some(m) = self.toks.get(i + 2) {
                        if methods.is_some_and(|ms| ms.contains(&m.text.as_str())) {
                            self.facts
                                .loop_allocs
                                .push((t.line, format!("{ty}::{}", m.text)));
                        }
                    }
                }
                (TokenKind::Punct, "|" | "||") => {
                    if let Some(next) = self.closure(i, hi, in_loop, call_ctx) {
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Record a call site at ident index `i` (followed by `(`).
    fn record_call(&mut self, i: usize, in_loop: bool) {
        let t = &self.toks[i];
        let prev = i.checked_sub(1).map(|k| self.toks[k].text.as_str());
        let method = prev == Some(".");
        let qual = (prev == Some("::"))
            .then(|| i.checked_sub(2).map(|k| &self.toks[k]))
            .flatten()
            .filter(|q| q.kind == TokenKind::Ident)
            .map(|q| q.text.clone());
        if method && (t.text == "check" || t.text == "is_cancelled") {
            self.facts.polls.push(PollSite {
                line: t.line,
                in_loop,
            });
            return;
        }
        self.facts.calls.push(CallSite {
            name: t.text.clone(),
            qual,
            method,
            line: t.line,
            in_loop,
        });
    }

    /// Is the `{…}` starting at `i` an `Event::…` *construction* rather
    /// than a match/let pattern? Patterns are followed by `=>` or `=`.
    fn is_construction(&self, i: usize) -> bool {
        let Some(open) = self.toks.get(i).filter(|t| t.text == "{").map(|_| i) else {
            // `Event::PassStart` without braces is a path reference
            // (e.g. a fn pointer); neither an emit nor a pattern.
            return false;
        };
        match matching(self.toks, open, "{", "}") {
            Some(end) => !matches!(
                self.toks.get(end).map(|t| t.text.as_str()),
                Some("=>") | Some("=")
            ),
            None => false,
        }
    }

    /// `{…}` span directly at or after `from` (for `loop`).
    fn brace_after(&self, from: usize, hi: usize) -> Option<(usize, usize)> {
        let open = (from..hi).find(|&k| self.toks[k].text == "{")?;
        let end = matching(self.toks, open, "{", "}")?;
        Some((open, end))
    }

    /// Body `{` of a `for`/`while` header starting at `from`: the first
    /// `{` at paren/bracket depth 0 (closures and `vec![…]` in the
    /// header sit inside parens/brackets).
    fn loop_body(&self, from: usize, hi: usize) -> Option<(usize, usize)> {
        let mut depth = 0i32;
        for k in from..hi.min(self.toks.len()) {
            match self.toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let end = matching(self.toks, k, "{", "}")?;
                    return Some((k, end));
                }
                _ => {}
            }
        }
        None
    }

    /// Try to consume a closure starting at the `|`/`||` token at `i`.
    /// Returns the index just past the closure body, or `None` when the
    /// token is not in closure position (bitwise/logical or, match-arm
    /// alternation).
    fn closure(
        &mut self,
        i: usize,
        hi: usize,
        in_loop: bool,
        call_ctx: Option<&str>,
    ) -> Option<usize> {
        let prev = i.checked_sub(1).map(|k| self.toks[k].text.as_str());
        let expr_position = matches!(
            prev,
            None | Some("(" | "," | "=" | "=>" | "return" | "{" | ";" | "&" | "mut" | "move")
        );
        if !expr_position {
            return None;
        }
        let zero_param = self.toks[i].text == "||";
        let (param_count, body_from) = if zero_param {
            (0usize, i + 1)
        } else {
            // Scan for the closing `|` at bracket depth 0; bail on
            // tokens a parameter list cannot contain.
            let mut depth = 0i32;
            let mut k = i + 1;
            let mut count = 1usize;
            loop {
                if k >= hi.min(self.toks.len()) || k > i + 48 {
                    return None;
                }
                match self.toks[k].text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "," if depth == 0 => count += 1,
                    "|" if depth == 0 => break,
                    "{" | ";" | "=>" | "||" => return None,
                    _ => {}
                }
                k += 1;
            }
            (count, k + 1)
        };
        // Optional `-> Type`, then a braced or expression body.
        let mut b = body_from;
        if self.toks.get(b).is_some_and(|t| t.text == "->") {
            while b < hi && self.toks[b].text != "{" {
                b += 1;
            }
        }
        let body_in_loop = if zero_param {
            // Thunks (obs `emit` payloads) evaluate lazily off the hot
            // path; their contents are not loop-scoped…
            false
        } else {
            // …but a parameterized closure handed to an iteration driver
            // runs once per item.
            in_loop || call_ctx.is_some_and(|c| ITER_CALLEES.contains(&c)) && param_count > 0
        };
        if body_in_loop && !in_loop {
            // The closure itself introduced the loop scope: the fn
            // "contains a loop" for L010's purposes.
            self.facts.has_loop = true;
        }
        if self.toks.get(b).is_some_and(|t| t.text == "{") {
            let end = matching(self.toks, b, "{", "}")?;
            self.walk(b + 1, end - 1, body_in_loop, None);
            Some(end)
        } else {
            // Expression body: up to the first `,`/`)`/`;` at depth 0.
            let mut depth = 0i32;
            let mut k = b;
            while k < hi.min(self.toks.len()) {
                match self.toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth > 0 => depth -= 1,
                    ")" | "," | ";" if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            self.walk(b, k, body_in_loop, None);
            Some(k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts(src: &str) -> FileFacts {
        parse(&lex(src))
    }

    fn one_fn(src: &str) -> FnFacts {
        let f = facts(src);
        assert_eq!(f.fns.len(), 1, "{:?}", f.fns);
        f.fns.into_iter().next().unwrap()
    }

    #[test]
    fn signatures_and_impl_qualifiers() {
        let f = facts(
            "impl<'a> Miner<'a> {\n  pub fn mine(&mut self, ctrl: Option<&CancelToken>) -> u64 { 0 }\n}\nfn free(x: u64) {}\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].qual, "Miner::mine");
        assert_eq!(f.fns[0].params.len(), 1, "receiver dropped");
        assert!(f.fns[0].token_param().is_some());
        assert_eq!(f.fns[1].qual, "free");
        assert!(f.fns[1].token_param().is_none());
    }

    #[test]
    fn trait_impl_quals_use_the_self_type() {
        let f = facts("impl TransactionSource for Db {\n  fn pass(&mut self) {}\n}\n");
        assert_eq!(f.fns[0].qual, "Db::pass");
    }

    #[test]
    fn loops_polls_and_loop_context() {
        let f = one_fn(
            "fn scan(c: &CancelToken) -> io::Result<()> {\n  c.check()?;\n  for x in items() {\n    c.is_cancelled();\n    helper(x);\n  }\n  Ok(())\n}\n",
        );
        assert!(f.has_loop);
        assert_eq!(f.polls.len(), 2);
        assert!(!f.polls[0].in_loop && f.polls[1].in_loop);
        let helper = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(helper.in_loop);
        let items = f.calls.iter().find(|c| c.name == "items").unwrap();
        assert!(!items.in_loop, "for-header iterables evaluate once");
    }

    #[test]
    fn while_conditions_are_loop_scoped() {
        let f = one_fn("fn w(t: &CancelToken) {\n  while !t.is_cancelled() { step(); }\n}\n");
        assert!(f.polls_in_loop());
    }

    #[test]
    fn iter_driver_closures_are_loop_scopes_thunks_are_not() {
        let f = one_fn(
            "fn go(ctrl: Option<&CancelToken>) {\n  parallel_map(parts, |part| { tick(part); })\n    ;\n  obs.emit(|| make_label());\n}\n",
        );
        let tick = f.calls.iter().find(|c| c.name == "tick").unwrap();
        assert!(tick.in_loop, "parallel_map worker body is a loop scope");
        assert!(f.has_loop, "an iter-driver closure counts as a loop");
        let label = f.calls.iter().find(|c| c.name == "make_label").unwrap();
        assert!(!label.in_loop, "zero-param emit thunks are not loop scopes");
    }

    #[test]
    fn emits_versus_match_patterns() {
        let f = facts(
            "fn emitter(obs: &Obs) {\n  obs.emit(|| Event::PassStart { label: l(), candidates: 0 });\n}\nfn matcher(e: &Event) {\n  match e {\n    Event::PassStart { .. } => {}\n    Event::PassEnd { stats } => drop(stats),\n    _ => {}\n  }\n}\n",
        );
        assert!(f.fns[0].emits(EmitKind::PassStart));
        assert!(
            !f.fns[1].emits(EmitKind::PassStart),
            "patterns are not emits"
        );
        assert!(!f.fns[1].emits(EmitKind::PassEnd));
    }

    #[test]
    fn locks_allocs_and_returns() {
        let f = one_fn(
            "fn hot(n: u64) -> u64 {\n  let m = Mutex::new(0);\n  for i in 0..n {\n    let v = Vec::new();\n    let s = format!(\"x\");\n    if i > 3 { return i; }\n  }\n  0\n}\n",
        );
        assert_eq!(f.locks.len(), 1);
        let idioms: Vec<&str> = f.loop_allocs.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(idioms, ["Vec::new", "format!"]);
        assert_eq!(f.returns.len(), 1);
    }

    #[test]
    fn allocations_outside_loops_are_not_recorded() {
        let f = one_fn("fn cold() -> Vec<u64> {\n  let v = Vec::with_capacity(8);\n  v\n}\n");
        assert!(f.loop_allocs.is_empty());
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let f = facts("fn outer() {\n  fn inner() { for i in 0..3 { step(i); } }\n  inner();\n}\n");
        let outer = f.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = f.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(!outer.has_loop, "inner's loop is not outer's");
        assert!(inner.has_loop);
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let f = facts("#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn real() {}\n");
        assert!(
            f.fns
                .iter()
                .find(|f| f.name == "helper")
                .unwrap()
                .in_cfg_test
        );
        assert!(!f.fns.iter().find(|f| f.name == "real").unwrap().in_cfg_test);
    }

    #[test]
    fn use_and_mod_inventory() {
        let f = facts("use std::sync::Mutex;\nmod block;\nmod obs { }\n");
        assert_eq!(f.uses, ["std::sync::Mutex"]);
        assert_eq!(f.mods, ["block", "obs"]);
    }

    #[test]
    fn bodyless_trait_decls_are_skipped() {
        let f = facts("trait Source {\n  fn pass(&mut self, f: &mut dyn FnMut(u32));\n}\n");
        assert!(f.fns.is_empty());
    }
}
