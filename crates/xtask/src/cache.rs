//! The incremental analysis cache: per-file lex/parse/lint results keyed
//! by content hash, so a warm `xtask analyze` re-lexes only what changed
//! and CI stays sub-second.
//!
//! The cache stores exactly the *per-file* pipeline outputs — raw token
//! findings, allow directives, and parsed [`FileFacts`] — never the
//! cross-file results: the flow lints, suppression and baseline steps
//! are pure in-memory passes over these facts and recompute every run
//! (they are the part whose inputs span files, so caching them per file
//! would be wrong).
//!
//! Format: one JSON document under `target/xtask/analyze-cache.json`,
//! written with the workspace's own emitter and read back with its own
//! strict parser. A missing, corrupt, or version-mismatched cache is
//! treated as empty — the cache can only ever cost a re-lex, never an
//! incorrect result.

use crate::json::{self, Value};
use crate::lexer::AllowDirective;
use crate::lints::{lint_info, Finding};
use crate::parser::{CallSite, EmitKind, EmitSite, FileFacts, FnFacts, Param, PollSite};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Bump when the lexer/parser/lint semantics change shape: a mismatch
/// invalidates the whole cache.
const CACHE_VERSION: u32 = 1;

/// Everything the per-file pipeline produced for one source file.
#[derive(Clone, Debug, Default)]
pub struct FileRecord {
    /// FNV-1a 64 hash of the file contents.
    pub hash: u64,
    /// Raw (unsuppressed) token-lint findings.
    pub findings: Vec<Finding>,
    /// Allow directives found in comments.
    pub directives: Vec<AllowDirective>,
    /// Parsed item facts.
    pub facts: FileFacts,
}

/// The on-disk cache: rel path → record.
#[derive(Debug, Default)]
pub struct Cache {
    /// Records by workspace-relative path.
    pub files: HashMap<String, FileRecord>,
}

/// FNV-1a 64-bit content hash (no dependencies, stable across runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where the cache lives under a workspace root.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("xtask").join("analyze-cache.json")
}

impl Cache {
    /// Load from `path`; any failure yields an empty cache.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        let Ok(doc) = json::parse(&text) else {
            return Cache::default();
        };
        if doc.get("version").and_then(Value::as_number) != Some(f64::from(CACHE_VERSION)) {
            return Cache::default();
        }
        let mut cache = Cache::default();
        let Some(Value::Object(files)) = doc.get("files") else {
            return cache;
        };
        for (rel, v) in files {
            if let Some(rec) = record_from_value(v) {
                cache.files.insert(rel.clone(), rec);
            }
        }
        cache
    }

    /// Write to `path`, creating parent directories. Best-effort: an
    /// unwritable cache only costs the next run a re-lex.
    pub fn store(&self, path: &Path) {
        let mut files: Vec<(String, Value)> = self
            .files
            .iter()
            .map(|(rel, rec)| (rel.clone(), record_to_value(rec)))
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        let doc = Value::Object(vec![
            ("version".into(), Value::Number(f64::from(CACHE_VERSION))),
            ("files".into(), Value::Object(files)),
        ]);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::write(path, doc.emit());
    }
}

fn num(n: impl Into<f64>) -> Value {
    Value::Number(n.into())
}

fn str_of(v: &Value) -> Option<String> {
    v.as_str().map(str::to_string)
}

fn u32_of(v: &Value) -> Option<u32> {
    v.as_number().map(|n| n as u32)
}

fn record_to_value(rec: &FileRecord) -> Value {
    Value::Object(vec![
        ("hash".into(), Value::String(format!("{:016x}", rec.hash))),
        (
            "findings".into(),
            Value::Array(rec.findings.iter().map(finding_to_value).collect()),
        ),
        (
            "directives".into(),
            Value::Array(rec.directives.iter().map(directive_to_value).collect()),
        ),
        ("facts".into(), facts_to_value(&rec.facts)),
    ])
}

fn record_from_value(v: &Value) -> Option<FileRecord> {
    let hash = u64::from_str_radix(v.get("hash")?.as_str()?, 16).ok()?;
    let findings = v
        .get("findings")?
        .as_array()?
        .iter()
        .map(finding_from_value)
        .collect::<Option<Vec<_>>>()?;
    let directives = v
        .get("directives")?
        .as_array()?
        .iter()
        .map(directive_from_value)
        .collect::<Option<Vec<_>>>()?;
    let facts = facts_from_value(v.get("facts")?)?;
    Some(FileRecord {
        hash,
        findings,
        directives,
        facts,
    })
}

fn finding_to_value(f: &Finding) -> Value {
    Value::Object(vec![
        ("lint".into(), Value::String(f.lint.into())),
        ("path".into(), Value::String(f.path.clone())),
        ("line".into(), num(f.line)),
        ("message".into(), Value::String(f.message.clone())),
    ])
}

fn finding_from_value(v: &Value) -> Option<Finding> {
    let id = v.get("lint")?.as_str()?;
    // Findings hold `&'static str` ids: map back through the registry
    // and refuse records naming lints that no longer exist.
    let info = lint_info(id);
    if info.id != id {
        return None;
    }
    Some(Finding {
        lint: info.id,
        path: str_of(v.get("path")?)?,
        line: u32_of(v.get("line")?)?,
        message: str_of(v.get("message")?)?,
    })
}

fn directive_to_value(d: &AllowDirective) -> Value {
    Value::Object(vec![
        ("line".into(), num(d.line)),
        (
            "ids".into(),
            Value::Array(d.ids.iter().map(|i| Value::String(i.clone())).collect()),
        ),
        ("reason".into(), Value::Bool(d.has_reason)),
    ])
}

fn directive_from_value(v: &Value) -> Option<AllowDirective> {
    Some(AllowDirective {
        line: u32_of(v.get("line")?)?,
        ids: v
            .get("ids")?
            .as_array()?
            .iter()
            .map(str_of)
            .collect::<Option<Vec<_>>>()?,
        has_reason: matches!(v.get("reason")?, Value::Bool(true)),
    })
}

fn facts_to_value(facts: &FileFacts) -> Value {
    let strings =
        |items: &[String]| Value::Array(items.iter().map(|s| Value::String(s.clone())).collect());
    Value::Object(vec![
        (
            "fns".into(),
            Value::Array(facts.fns.iter().map(fn_to_value).collect()),
        ),
        ("mods".into(), strings(&facts.mods)),
        ("uses".into(), strings(&facts.uses)),
    ])
}

fn facts_from_value(v: &Value) -> Option<FileFacts> {
    let strings = |v: &Value| -> Option<Vec<String>> { v.as_array()?.iter().map(str_of).collect() };
    Some(FileFacts {
        fns: v
            .get("fns")?
            .as_array()?
            .iter()
            .map(fn_from_value)
            .collect::<Option<Vec<_>>>()?,
        mods: strings(v.get("mods")?)?,
        uses: strings(v.get("uses")?)?,
    })
}

fn fn_to_value(f: &FnFacts) -> Value {
    Value::Object(vec![
        ("name".into(), Value::String(f.name.clone())),
        ("qual".into(), Value::String(f.qual.clone())),
        ("line".into(), num(f.line)),
        ("cfg_test".into(), Value::Bool(f.in_cfg_test)),
        (
            "params".into(),
            Value::Array(
                f.params
                    .iter()
                    .map(|p| {
                        Value::Object(vec![
                            ("name".into(), Value::String(p.name.clone())),
                            ("ty".into(), Value::String(p.ty.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("has_loop".into(), Value::Bool(f.has_loop)),
        (
            "polls".into(),
            Value::Array(
                f.polls
                    .iter()
                    .map(|p| Value::Array(vec![num(p.line), Value::Bool(p.in_loop)]))
                    .collect(),
            ),
        ),
        (
            "calls".into(),
            Value::Array(
                f.calls
                    .iter()
                    .map(|c| {
                        Value::Object(vec![
                            ("name".into(), Value::String(c.name.clone())),
                            (
                                "qual".into(),
                                c.qual.clone().map_or(Value::Null, Value::String),
                            ),
                            ("method".into(), Value::Bool(c.method)),
                            ("line".into(), num(c.line)),
                            ("in_loop".into(), Value::Bool(c.in_loop)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "emits".into(),
            Value::Array(
                f.emits
                    .iter()
                    .map(|e| {
                        Value::Array(vec![
                            Value::String(
                                match e.kind {
                                    EmitKind::PassStart => "start",
                                    EmitKind::PassEnd => "end",
                                }
                                .into(),
                            ),
                            num(e.line),
                            num(e.order),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "returns".into(),
            Value::Array(
                f.returns
                    .iter()
                    .map(|&(line, order)| Value::Array(vec![num(line), num(order)]))
                    .collect(),
            ),
        ),
        (
            "locks".into(),
            Value::Array(f.locks.iter().map(|&l| num(l)).collect()),
        ),
        (
            "loop_allocs".into(),
            Value::Array(
                f.loop_allocs
                    .iter()
                    .map(|(line, what)| Value::Array(vec![num(*line), Value::String(what.clone())]))
                    .collect(),
            ),
        ),
    ])
}

fn fn_from_value(v: &Value) -> Option<FnFacts> {
    Some(FnFacts {
        name: str_of(v.get("name")?)?,
        qual: str_of(v.get("qual")?)?,
        line: u32_of(v.get("line")?)?,
        in_cfg_test: matches!(v.get("cfg_test")?, Value::Bool(true)),
        params: v
            .get("params")?
            .as_array()?
            .iter()
            .map(|p| {
                Some(Param {
                    name: str_of(p.get("name")?)?,
                    ty: str_of(p.get("ty")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        has_loop: matches!(v.get("has_loop")?, Value::Bool(true)),
        polls: v
            .get("polls")?
            .as_array()?
            .iter()
            .map(|p| {
                let pair = p.as_array()?;
                Some(PollSite {
                    line: u32_of(pair.first()?)?,
                    in_loop: matches!(pair.get(1)?, Value::Bool(true)),
                })
            })
            .collect::<Option<Vec<_>>>()?,
        calls: v
            .get("calls")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(CallSite {
                    name: str_of(c.get("name")?)?,
                    qual: match c.get("qual")? {
                        Value::Null => None,
                        other => Some(str_of(other)?),
                    },
                    method: matches!(c.get("method")?, Value::Bool(true)),
                    line: u32_of(c.get("line")?)?,
                    in_loop: matches!(c.get("in_loop")?, Value::Bool(true)),
                })
            })
            .collect::<Option<Vec<_>>>()?,
        emits: v
            .get("emits")?
            .as_array()?
            .iter()
            .map(|e| {
                let triple = e.as_array()?;
                Some(EmitSite {
                    kind: match triple.first()?.as_str()? {
                        "start" => EmitKind::PassStart,
                        "end" => EmitKind::PassEnd,
                        _ => return None,
                    },
                    line: u32_of(triple.get(1)?)?,
                    order: u32_of(triple.get(2)?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        returns: v
            .get("returns")?
            .as_array()?
            .iter()
            .map(|r| {
                let pair = r.as_array()?;
                Some((u32_of(pair.first()?)?, u32_of(pair.get(1)?)?))
            })
            .collect::<Option<Vec<_>>>()?,
        locks: v
            .get("locks")?
            .as_array()?
            .iter()
            .map(u32_of)
            .collect::<Option<Vec<_>>>()?,
        loop_allocs: v
            .get("loop_allocs")?
            .as_array()?
            .iter()
            .map(|a| {
                let pair = a.as_array()?;
                Some((u32_of(pair.first()?)?, str_of(pair.get(1)?)?))
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::{lint_file, FileClass};
    use crate::parser::parse;

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn records_round_trip_through_json() {
        let src = "fn hot(ctrl: Option<&CancelToken>) -> io::Result<()> {\n\
                   // negassoc-lint: allow(L001) -- demo\n\
                   let x = compute().unwrap();\n\
                   for t in db() { ctrl.unwrap().check()?; emit(x, t); }\n\
                   obs.emit(|| Event::PassStart { label: l(), candidates: 0 });\n\
                   obs.emit(|| Event::PassEnd { stats: s() });\n\
                   Ok(())\n}\n";
        let lexed = lex(src);
        let rec = FileRecord {
            hash: fnv1a(src.as_bytes()),
            findings: lint_file("crates/demo/src/hot.rs", &lexed, FileClass::Library),
            directives: lexed.allows.clone(),
            facts: parse(&lexed),
        };
        assert!(!rec.findings.is_empty() && !rec.directives.is_empty());
        let emitted = record_to_value(&rec).emit();
        let back = record_from_value(&json::parse(&emitted).unwrap()).unwrap();
        assert_eq!(back.hash, rec.hash);
        assert_eq!(back.findings, rec.findings);
        assert_eq!(back.directives, rec.directives);
        assert_eq!(back.facts, rec.facts);
    }

    #[test]
    fn corrupt_or_mismatched_caches_load_empty() {
        let dir = std::env::temp_dir().join("xtask-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let p = dir.join("bad.json");
        std::fs::write(&p, "{not json").unwrap();
        assert!(Cache::load(&p).files.is_empty());
        std::fs::write(&p, "{\"version\": 999, \"files\": {}}").unwrap();
        assert!(Cache::load(&p).files.is_empty());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn store_then_load_preserves_records() {
        let dir = std::env::temp_dir().join(format!("xtask-cache-rt-{}", std::process::id()));
        let p = dir.join("cache.json");
        let mut cache = Cache::default();
        let src = "fn f() { let _ = x.unwrap(); }\n";
        let lexed = lex(src);
        cache.files.insert(
            "crates/demo/src/f.rs".into(),
            FileRecord {
                hash: fnv1a(src.as_bytes()),
                findings: lint_file("crates/demo/src/f.rs", &lexed, FileClass::Library),
                directives: lexed.allows.clone(),
                facts: parse(&lexed),
            },
        );
        cache.store(&p);
        let back = Cache::load(&p);
        assert_eq!(back.files.len(), 1);
        let rec = &back.files["crates/demo/src/f.rs"];
        assert_eq!(rec.findings.len(), 1);
        assert_eq!(rec.facts.fns.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
