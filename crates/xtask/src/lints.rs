//! The negassoc custom lints: token-level L001–L009 (this module) and
//! flow-level L010–L013 (checked in [`crate::flow`] over the item graph,
//! registered here).
//!
//! Each token lint matches token patterns from [`crate::lexer`] against
//! the workspace's invariants (documented in DESIGN.md "Invariants &
//! static analysis"):
//!
//! | id   | invariant |
//! |------|-----------|
//! | L001 | library code never `.unwrap()`/`.expect()` — fallible paths route through `NegAssocError` |
//! | L002 | no raw `==`/`!=` on `f64` support/RI expressions — use `expected::approx_eq`/`approx_ge` |
//! | L003 | no `panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code |
//! | L004 | `Itemset` values are built through its sorting/dedup constructors only |
//! | L005 | lossy `as` casts on support counters live only in sanctioned helpers (`counting.rs`, `expected.rs`) |
//! | L006 | the core crate returns `Result<_, NegAssocError>`, never `io::Result` — I/O errors convert at the txdb boundary |
//! | L007 | no bare `thread::spawn` — worker threads are scoped and live only in `txdb/src/block.rs`, the one audited counting pool |
//! | L008 | no `process::exit` and no unbounded `.recv()` outside `txdb/src/block.rs` — raw exits skip Drop (checkpoint flush, watchdog join) and the exit-code contract; blocking receives can never observe a `CancelToken` |
//! | L009 | no `println!`/`eprintln!` outside `crates/cli`, `crates/xtask`, and `bin/` targets — library crates report through return values and the obs layer (DESIGN.md §11), never the terminal |
//!
//! The flow lints (see DESIGN.md §12 for semantics and caveats):
//!
//! | id   | invariant |
//! |------|-----------|
//! | L010 | a library fn taking `&CancelToken`/`RunControl` that loops must poll inside the loop, directly or through a callee that transitively polls |
//! | L011 | a fn emitting `Event::PassStart` emits `Event::PassEnd` on every non-`?` return path (a callee that transitively emits the end counts) |
//! | L012 | no `Mutex`/`RwLock` or allocation-in-loop in fns reachable from `parallel_pass`/`count_mixed_parallel` — counting workers use private structures merged afterwards (warn-level) |
//! | L013 | every allow directive carries a `-- reason` and still suppresses a finding; stale or reasonless allows are findings |
//!
//! "Library code" excludes `tests/`, `benches/`, `examples/` directories
//! and `#[cfg(test)]` modules. Any finding can be suppressed with a
//! justification comment on the same or preceding line:
//! `// negassoc-lint: allow(L00x) — reason`.

use crate::lexer::{AllowDirective, LexedFile, Token, TokenKind};

/// How a finding counts against the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails `xtask analyze` (and CI).
    Deny,
    /// Reported, but only fails under `--deny-all`.
    Warn,
}

impl Severity {
    /// Lower-case label used in output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// What the lint can see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintLevel {
    /// Single-file token patterns.
    Token,
    /// Whole-workspace item graph + call graph (`flow.rs`).
    Flow,
}

impl LintLevel {
    /// Lower-case label used in output.
    pub fn label(self) -> &'static str {
        match self {
            LintLevel::Token => "token",
            LintLevel::Flow => "flow",
        }
    }
}

/// A single lint rule.
#[derive(Clone, Copy, Debug)]
pub struct Lint {
    /// Stable id, `L001`…
    pub id: &'static str,
    /// One-line description shown by `xtask analyze --list`.
    pub summary: &'static str,
    /// Whether the lint only applies to library (non-test) code.
    pub library_only: bool,
    /// Deny (CI-failing) or warn.
    pub severity: Severity,
    /// Token-level or cross-file flow-level.
    pub level: LintLevel,
}

/// Registry lookup by id; unknown ids fall back to a deny/token stub so
/// a stray finding is never silently downgraded.
pub fn lint_info(id: &str) -> &'static Lint {
    const UNKNOWN: Lint = Lint {
        id: "L???",
        summary: "unregistered lint id",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    };
    LINTS.iter().find(|l| l.id == id).unwrap_or(&UNKNOWN)
}

/// The lint registry, in id order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "L001",
        summary: "unwrap()/expect() in library code; route through NegAssocError",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L002",
        summary: "raw ==/!= on f64 support/RI values; use expected::approx_eq/approx_ge",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L003",
        summary: "panic!/unreachable!/todo!/unimplemented! in library code",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L004",
        summary: "Itemset built without its sorting/dedup constructors",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L005",
        summary: "lossy `as` cast on a support counter outside counting.rs/expected.rs",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L006",
        summary: "io::Result in the core crate; return Result<_, NegAssocError> instead",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L007",
        summary: "bare thread::spawn outside txdb's block module; use the scoped counting pool",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L008",
        summary: "process::exit or unbounded .recv() outside txdb's block module; \
                  both defeat cooperative cancellation",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L009",
        summary: "println!/eprintln! outside crates/cli, crates/xtask, and bin targets; \
                  report through return values or the obs layer",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Token,
    },
    Lint {
        id: "L010",
        summary: "fn takes &CancelToken/RunControl and loops without polling it in the \
                  loop (directly or via a callee that transitively polls)",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Flow,
    },
    Lint {
        id: "L011",
        summary: "fn emits Event::PassStart without a matching PassEnd on every \
                  non-`?` return path (call-graph delegation counts)",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Flow,
    },
    Lint {
        id: "L012",
        summary: "Mutex/RwLock or allocation-in-loop inside a fn reachable from \
                  parallel_pass/count_mixed_parallel (workers use private structures, \
                  DESIGN.md \u{00a7}9)",
        library_only: true,
        severity: Severity::Warn,
        level: LintLevel::Flow,
    },
    Lint {
        id: "L013",
        summary: "negassoc-lint allow directive without a `-- reason`, or one that no \
                  longer suppresses anything (stale)",
        library_only: true,
        severity: Severity::Deny,
        level: LintLevel::Flow,
    },
];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Lint id (`L001`…).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

/// What kind of code a file holds, by its location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a workspace crate: every lint applies.
    Library,
    /// `tests/`, `benches/`, `examples/`: exempt from library-only lints
    /// (that is, all of them today).
    TestSupport,
}

/// Run the token-level lints over one lexed file, returning **raw**
/// (unsuppressed) findings. `path` is workspace-relative and used both
/// for diagnostics and for path-scoped exemptions (L004/L005 sanction
/// their implementation files). Suppression is a separate step —
/// [`apply_allows`] — so the cross-file pipeline can pool token and flow
/// findings before deciding which directives were actually used (L013).
pub fn lint_file(path: &str, lexed: &LexedFile, class: FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();
    if class == FileClass::Library {
        let test_lines = cfg_test_spans(&lexed.tokens);
        let in_test = |line: u32| test_lines.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));
        l001_unwrap(path, lexed, &in_test, &mut findings);
        l002_float_eq(path, lexed, &in_test, &mut findings);
        l003_panics(path, lexed, &in_test, &mut findings);
        l004_itemset_literal(path, lexed, &in_test, &mut findings);
        l005_lossy_casts(path, lexed, &in_test, &mut findings);
        l006_io_result(path, lexed, &in_test, &mut findings);
        l007_thread_spawn(path, lexed, &in_test, &mut findings);
        l008_uncancellable_waits(path, lexed, &in_test, &mut findings);
        l009_println(path, lexed, &in_test, &mut findings);
    }
    findings
}

/// Drop findings covered by an allow directive on the same line or the
/// line above, and record which `(directive line, lint id)` pairs did
/// suppress something — the input to L013's staleness check.
pub fn apply_allows(
    findings: &mut Vec<Finding>,
    directives: &[AllowDirective],
    used: &mut Vec<(u32, String)>,
) {
    findings.retain(|f| {
        let mut hit = None;
        for d in directives {
            if (d.line == f.line || d.line == f.line.saturating_sub(1))
                && d.ids.iter().any(|id| id == f.lint)
            {
                hit = Some(d.line);
                break;
            }
        }
        match hit {
            Some(line) => {
                let pair = (line, f.lint.to_string());
                if !used.contains(&pair) {
                    used.push(pair);
                }
                false
            }
            None => true,
        }
    });
}

/// Line spans (inclusive) of `#[cfg(test)] mod … { … }` items and other
/// `#[cfg(test)]`-gated braced items.
pub(crate) fn cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#"
            && matches_seq(tokens, i + 1, &["[", "cfg", "("])
            && attr_mentions_test(tokens, i + 3)
        {
            // Find the attribute's closing `]`, then the gated item's
            // braces.
            if let Some(close) = matching(tokens, i + 1, "[", "]") {
                if let Some(open) = tokens[close..]
                    .iter()
                    .position(|t| t.text == "{")
                    .map(|p| close + p)
                {
                    if let Some(end) = matching(tokens, open, "{", "}") {
                        spans.push((tokens[i].line, tokens[end - 1].line));
                        i = end;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    spans
}

/// Do the tokens inside `#[cfg(…)]`'s parens mention the ident `test`?
/// (Covers `cfg(test)` and `cfg(all(test, …))`.)
fn attr_mentions_test(tokens: &[Token], open_paren: usize) -> bool {
    let Some(close) = matching(tokens, open_paren, "(", ")") else {
        return false;
    };
    tokens[open_paren..close]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "test")
}

fn matches_seq(tokens: &[Token], from: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, s)| tokens.get(from + k).is_some_and(|t| t.text == *s))
}

/// Index just past the token matching the opener at `open`. The opener
/// need not be at `open` itself; the first `open_text` at or after `open`
/// anchors the count.
pub(crate) fn matching(
    tokens: &[Token],
    open: usize,
    open_text: &str,
    close_text: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.text == open_text {
            depth += 1;
        } else if t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

fn l001_unwrap(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        let dotted = i > 0 && toks[i - 1].text == ".";
        let called = toks.get(i + 1).is_some_and(|n| {
            t.text == "unwrap" && n.text == "(" && toks.get(i + 2).is_some_and(|c| c.text == ")")
        }) || (t.text == "expect" && toks.get(i + 1).is_some_and(|n| n.text == "("));
        if dotted && called && !in_test(t.line) {
            findings.push(Finding {
                lint: "L001",
                path: path.into(),
                line: t.line,
                message: format!(
                    ".{}() in library code; return Result<_, NegAssocError> instead",
                    t.text
                ),
            });
        }
    }
}

/// Identifier fragments naming *integer* support counters (`u64`
/// transaction counts). Used by L005: casting these is lossy.
fn is_support_counter(text: &str) -> bool {
    let t = text.to_ascii_lowercase();
    t.contains("support")
        || t == "sup"
        || t.ends_with("_sup")
        || t.starts_with("sup_")
        || t == "minsup"
        || t == "actual"
}

/// Identifier fragments naming *float-typed* support/RI quantities
/// (expected supports, rule interests, thresholds, fractions). Used by
/// L002: raw equality on these depends on evaluation order.
fn is_float_support(text: &str) -> bool {
    let t = text.to_ascii_lowercase();
    t == "ri"
        || t.contains("expected")
        || t.contains("interest")
        || t.contains("deviation")
        || t.contains("fraction")
        || t.ends_with("_ri")
        || t.starts_with("ri_")
        || t == "threshold"
}

fn l002_float_eq(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") || in_test(t.line) {
            continue;
        }
        // Flag only when a token *adjacent* to the operator is a
        // float-typed support/RI identifier: `total == 0` (an integer
        // guard) stays legal, `expected == x` does not. Adjacency keeps
        // the token-level heuristic precise; the epsilon helpers are the
        // fix either way.
        let floaty = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|k| toks.get(k))
            .any(|n| n.kind == TokenKind::Ident && is_float_support(&n.text));
        if floaty {
            findings.push(Finding {
                lint: "L002",
                path: path.into(),
                line: t.line,
                message: format!(
                    "raw `{}` near a support/RI expression; use \
                     negassoc::expected::approx_eq / approx_ge",
                    t.text
                ),
            });
        }
    }
}

fn l003_panics(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    const BANNED: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && BANNED.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.text == "(" || n.text == "[" || n.text == "{")
            && !in_test(t.line)
        {
            findings.push(Finding {
                lint: "L003",
                path: path.into(),
                line: t.line,
                message: format!(
                    "`{}!` in library code; return Err(NegAssocError::Invariant(..)) instead",
                    t.text
                ),
            });
        }
    }
}

fn l004_itemset_literal(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // The tuple-struct literal is only legal inside the defining module;
    // the lint keeps it that way (and catches re-exports growing a public
    // field later).
    if path.ends_with("apriori/src/itemset.rs") {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "Itemset" || in_test(t.line) {
            continue;
        }
        // `Itemset(` is a literal; `Itemset::new(…)`, `Itemset::from…`,
        // `fn f() -> Itemset (` never parse that way. Skip paths
        // (`x::Itemset(` is still a literal, so only skip when *followed*
        // by `::` or other non-`(` tokens).
        let prev_is_fn = i > 0 && toks[i - 1].text == "fn";
        if !prev_is_fn && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            findings.push(Finding {
                lint: "L004",
                path: path.into(),
                line: t.line,
                message: "Itemset built from a raw tuple literal; use \
                          Itemset::from_unsorted / from_sorted / singleton"
                    .into(),
            });
        }
    }
}

fn l006_io_result(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // Only the core crate has the typed NegAssocError to route through;
    // the substrate crates (txdb, apriori, taxonomy) speak io::Result by
    // design at the file-format and pass boundaries.
    if !path.contains("core/src/") {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "io" || in_test(t.line) {
            continue;
        }
        let is_io_result = toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "Result");
        if is_io_result {
            findings.push(Finding {
                lint: "L006",
                path: path.into(),
                line: t.line,
                message: "io::Result in the core crate bypasses the typed error; \
                          return Result<_, NegAssocError> and convert io::Error at \
                          the txdb boundary"
                    .into(),
            });
        }
    }
}

fn l007_thread_spawn(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // The one sanctioned spawn site: the scoped worker pool behind every
    // parallel counting pass. Free-running `thread::spawn` threads outlive
    // their borrow scope, dodge the pool's panic propagation, and make
    // counts racy; everything else routes through `parallel_pass` /
    // `parallel_map`.
    if path.ends_with("txdb/src/block.rs") {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "thread" || in_test(t.line) {
            continue;
        }
        // `thread::spawn` and `std::thread::spawn` both end with these
        // three tokens; `scope.spawn(..)` / `s.spawn(..)` use `.` and
        // never match.
        let is_spawn = toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "spawn");
        if is_spawn {
            findings.push(Finding {
                lint: "L007",
                path: path.into(),
                line: t.line,
                message: "bare thread::spawn escapes the audited counting pool; \
                          use negassoc_txdb::block::parallel_pass / parallel_map \
                          (scoped workers, deterministic merge)"
                    .into(),
            });
        }
    }
}

fn l008_uncancellable_waits(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // The audited counting pool owns the one sanctioned blocking receive:
    // its drain loop pairs `recv_timeout` with token polls, and the bare
    // `recv` sits on the explicitly token-free fast path. Everywhere else
    // a raw `process::exit` skips Drop (checkpoint flush, watchdog join)
    // and the CLI's exit-code contract, and an unbounded `.recv()` parks a
    // thread where no `CancelToken` can ever reach it.
    if path.ends_with("txdb/src/block.rs") {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        if t.kind == TokenKind::Ident
            && t.text == "process"
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "exit")
        {
            findings.push(Finding {
                lint: "L008",
                path: path.into(),
                line: t.line,
                message: "raw process::exit skips Drop (checkpoint flush, watchdog \
                          join) and the exit-code contract; return a CliError / \
                          ExitCode up the stack instead"
                    .into(),
            });
        }
        if t.text == "."
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == "recv")
            && toks.get(i + 2).is_some_and(|n| n.text == "(")
            && toks.get(i + 3).is_some_and(|n| n.text == ")")
        {
            findings.push(Finding {
                lint: "L008",
                path: path.into(),
                line: t.line,
                message: "unbounded .recv() blocks where no CancelToken can reach \
                          it; use recv_timeout with a token poll (see the drain \
                          loop in negassoc_txdb::block)"
                    .into(),
            });
        }
    }
}

fn l009_println(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // The CLI and the analyzer own the terminal; binaries (`src/bin/`)
    // are presentation layers by definition. Everywhere else a stray
    // `println!` interleaves with machine-read stdout (the `--trace`
    // JSON-lines stream, the bench artifacts) and cannot be captured or
    // redirected by callers; library crates report through return values
    // and the obs layer instead.
    if path.starts_with("crates/cli/")
        || path.starts_with("crates/xtask/")
        || path.contains("/bin/")
    {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && (t.text == "println" || t.text == "eprintln")
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
            && !in_test(t.line)
        {
            findings.push(Finding {
                lint: "L009",
                path: path.into(),
                line: t.line,
                message: format!(
                    "`{}!` in library code writes to a terminal the caller never \
                     offered; return the data or emit a trace event (negassoc::obs)",
                    t.text
                ),
            });
        }
    }
}

fn l005_lossy_casts(
    path: &str,
    lexed: &LexedFile,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    // Sanctioned helper files: the conversions there document their 2^53
    // bound.
    if path.ends_with("core/src/counting.rs") || path.ends_with("core/src/expected.rs") {
        return;
    }
    const LOSSY_TARGETS: &[&str] = &[
        "f64", "f32", "u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize", "usize",
    ];
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "as" || in_test(t.line) {
            continue;
        }
        let source_supportish = i > 0
            && toks[i - 1].kind == TokenKind::Ident
            && (is_support_counter(&toks[i - 1].text) || is_float_support(&toks[i - 1].text));
        let target_lossy = toks
            .get(i + 1)
            .is_some_and(|n| LOSSY_TARGETS.contains(&n.text.as_str()));
        if source_supportish && target_lossy {
            findings.push(Finding {
                lint: "L005",
                path: path.into(),
                line: t.line,
                message: format!(
                    "lossy `{} as {}` on a support counter; use \
                     negassoc::expected::support_to_f64 or justify with an allow",
                    toks[i - 1].text,
                    toks[i + 1].text
                ),
            });
        }
    }
}
