//! Cross-file flow-lint tests: seeded mutations against the *real*
//! mining sources, cross-file delegation, and the incremental cache.
//!
//! The mutation checks are the analyzer's canary: delete the token poll
//! from `partition_mine_ctrl` and L010 must catch it; break the pass-end
//! emit and L011 must. If either mutation sails through, the lints have
//! rotted into decoration.

use xtask::lints::FileClass;
use xtask::{analyze_source, analyze_sources, SourceInput};

const PARTITION_MINE: &str = "crates/apriori/src/partition_mine.rs";

fn real_source(rel: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn flow_findings(rel: &str, source: &str) -> Vec<&'static str> {
    analyze_source(rel, source, FileClass::Library)
        .iter()
        .map(|f| f.lint)
        .filter(|l| ["L010", "L011"].contains(l))
        .collect()
}

#[test]
fn partition_mine_as_written_is_clean() {
    let source = real_source(PARTITION_MINE);
    assert_eq!(
        flow_findings(PARTITION_MINE, &source),
        Vec::<&str>::new(),
        "the shipped partition miner polls its token and pairs its pass events"
    );
}

#[test]
fn deleting_the_token_poll_is_one_l010() {
    let source = real_source(PARTITION_MINE);
    assert!(source.contains("c.check()?;"), "mutation anchor moved");
    // The file has one poll per token-carrying loop (`partition_mine_ctrl`
    // phase 1 first, then the shard and verify loops); delete only the
    // first so exactly one fn loses its only poll.
    let mutated = source.replacen("c.check()?;", "", 1);
    assert_eq!(
        flow_findings(PARTITION_MINE, &mutated),
        ["L010"],
        "removing the only poll inside the per-partition loop must produce \
         exactly one deny finding"
    );
}

#[test]
fn breaking_the_pass_end_emit_is_one_l011() {
    let source = real_source(PARTITION_MINE);
    assert_eq!(
        source.matches("Event::PassEnd").count(),
        1,
        "mutation anchor moved"
    );
    let mutated = source.replace("Event::PassEnd", "Event::PassStart");
    assert_eq!(
        flow_findings(PARTITION_MINE, &mutated),
        ["L011"],
        "a pass that starts twice and never ends must produce exactly one \
         deny finding"
    );
}

#[test]
fn l010_credit_crosses_files() {
    // The loop's poll lives two files away: caller -> relay -> poller.
    // Only the symbol table + call graph can connect them.
    let caller = "use negassoc_txdb::ctrl::CancelToken;
pub fn drive(blocks: &[Vec<u64>], ctrl: &CancelToken) -> io::Result<u64> {
    let mut total = 0;
    for b in blocks {
        total += relay_step(b, ctrl)?;
    }
    Ok(total)
}
";
    let relay = "pub fn relay_step(b: &[u64], ctrl: &CancelToken) -> io::Result<u64> {
    poll_then_count(b, ctrl)
}
";
    let poller = "pub fn poll_then_count(b: &[u64], ctrl: &CancelToken) -> io::Result<u64> {
    ctrl.check()?;
    Ok(b.len() as u64)
}
";
    let inputs = [
        SourceInput {
            rel: "crates/demo/src/caller.rs",
            source: caller,
            class: FileClass::Library,
        },
        SourceInput {
            rel: "crates/demo/src/relay.rs",
            source: relay,
            class: FileClass::Library,
        },
        SourceInput {
            rel: "crates/demo/src/poller.rs",
            source: poller,
            class: FileClass::Library,
        },
    ];
    let findings = analyze_sources(&inputs);
    assert!(
        findings.iter().all(|f| f.lint != "L010"),
        "transitive poll credit must cross file boundaries, got {findings:?}"
    );

    // Sever the chain (the relay stops calling the poller) and the same
    // caller is a finding again.
    let broken_relay = "pub fn relay_step(b: &[u64], ctrl: &CancelToken) -> io::Result<u64> {
    Ok(b.len() as u64)
}
";
    let mut broken = inputs.clone();
    broken[1].source = broken_relay;
    let findings = analyze_sources(&broken);
    let l010: Vec<_> = findings.iter().filter(|f| f.lint == "L010").collect();
    assert_eq!(l010.len(), 1, "{findings:?}");
    assert_eq!(l010[0].path, "crates/demo/src/caller.rs");
}

#[test]
fn test_code_lends_no_poll_credit() {
    // The polling helper exists only in a test-support file; the library
    // caller must not be excused by it.
    let caller = "use negassoc_txdb::ctrl::CancelToken;
pub fn drive(blocks: &[Vec<u64>], ctrl: &CancelToken) -> u64 {
    let mut total = 0;
    for b in blocks {
        total += helper(b, ctrl);
    }
    total
}
";
    let helper = "pub fn helper(b: &[u64], ctrl: &CancelToken) -> u64 {
    let _ = ctrl.is_cancelled();
    b.len() as u64
}
";
    let findings = analyze_sources(&[
        SourceInput {
            rel: "crates/demo/src/caller.rs",
            source: caller,
            class: FileClass::Library,
        },
        SourceInput {
            rel: "crates/demo/tests/helper.rs",
            source: helper,
            class: FileClass::TestSupport,
        },
    ]);
    let l010: Vec<_> = findings.iter().filter(|f| f.lint == "L010").collect();
    assert_eq!(l010.len(), 1, "{findings:?}");
}

#[test]
fn warm_cache_serves_every_file_and_agrees() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join(format!("xtask-cache-test-{}", std::process::id()));
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "pub fn bad(v: Option<u64>) -> u64 { v.unwrap() }\n",
    )
    .unwrap();
    std::fs::write(
        src.join("other.rs"),
        "pub fn fine(v: Option<u64>) -> u64 { v.unwrap_or(0) }\n",
    )
    .unwrap();

    let cold = xtask::analyze_workspace(&root).unwrap();
    assert_eq!(cold.cache_misses, 2);
    assert_eq!(cold.cache_hits, 0);

    let warm = xtask::analyze_workspace(&root).unwrap();
    assert_eq!(warm.cache_hits, 2, "unchanged files come from the cache");
    assert_eq!(warm.cache_misses, 0);
    let ids = |a: &xtask::Analysis| a.findings.iter().map(|f| f.lint).collect::<Vec<_>>();
    assert_eq!(ids(&cold), ids(&warm), "cached and fresh results agree");
    assert_eq!(ids(&cold), ["L001"]);

    // Touching one file invalidates exactly that file.
    std::fs::write(
        src.join("other.rs"),
        "pub fn fine(v: Option<u64>) -> u64 { v.unwrap_or(1) }\n",
    )
    .unwrap();
    let touched = xtask::analyze_workspace(&root).unwrap();
    assert_eq!(touched.cache_hits, 1);
    assert_eq!(touched.cache_misses, 1);

    std::fs::remove_dir_all(&root).ok();
}
