//! Fixture tests: every registered lint L001–L013 has a firing fixture
//! (`lXXX_fire.rs`) and a clean/allowed fixture (`lXXX_ok.rs`) under
//! `tests/fixtures/`, asserted from one parameterized test driven by the
//! lint registry — registering a new lint without fixtures (or without an
//! expected fire count below) fails this suite.
//!
//! Fixtures are real `.rs` sources so the lexer sees exactly what
//! `analyze` would see in the tree; they are loaded as text, never
//! compiled.

use xtask::analyze_source;
use xtask::lints::FileClass;

/// Expected finding count of the *target* lint in its fire fixture. A
/// new lint must be added here alongside its two fixture files.
const FIRE_COUNTS: &[(&str, usize)] = &[
    ("L001", 2), // unwrap + expect
    ("L002", 2), // ri == and expected != comparisons
    ("L003", 3), // panic!, unreachable!, todo!
    ("L004", 1), // raw tuple-literal Itemset
    ("L005", 2), // support as f64, minsup as u32
    ("L006", 1), // io::Result signature in core library code
    ("L007", 2), // std::thread::spawn + thread::spawn
    ("L008", 2), // process::exit + bare .recv()
    ("L009", 2), // println! + eprintln!
    ("L010", 1), // token-carrying loop that never polls
    ("L011", 1), // PassStart without PassEnd
    ("L012", 2), // Mutex on the hot path + alloc in its loop
    ("L013", 2), // reasonless allow + stale allow
];

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

/// The workspace-relative path a lint's fixtures are analyzed under.
/// L006 is scoped to the core crate, so its fixtures must live there;
/// everything else runs under a neutral, unexempted path.
fn analyze_path(lint: &str) -> &'static str {
    match lint {
        "L006" => "crates/core/src/fixture.rs",
        _ => "crates/demo/src/fixture.rs",
    }
}

fn count_of(lint: &str, rel: &str, source: &str) -> usize {
    analyze_source(rel, source, FileClass::Library)
        .iter()
        .filter(|f| f.lint == lint)
        .count()
}

#[test]
fn every_lint_has_fire_and_ok_fixtures() {
    for lint in xtask::lints::LINTS {
        let (_, expected) = FIRE_COUNTS
            .iter()
            .find(|(id, _)| *id == lint.id)
            .unwrap_or_else(|| {
                panic!(
                    "lint {} has no FIRE_COUNTS entry; add fixtures too",
                    lint.id
                )
            });
        let stem = lint.id.to_lowercase();
        let rel = analyze_path(lint.id);

        let fire = fixture(&format!("{stem}_fire.rs"));
        assert_eq!(
            count_of(lint.id, rel, &fire),
            *expected,
            "{} firing fixture must produce exactly {expected} finding(s)",
            lint.id
        );

        let ok = fixture(&format!("{stem}_ok.rs"));
        assert_eq!(
            count_of(lint.id, rel, &ok),
            0,
            "{} ok fixture must stay silent for {}",
            lint.id,
            lint.id
        );
    }
}

#[test]
fn fixture_files_all_belong_to_a_lint() {
    // The inverse of the parameterized test: a stray fixture (typo'd
    // name, leftover from a removed lint) is an error, not dead weight.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let stem = name
            .strip_suffix("_fire.rs")
            .or_else(|| name.strip_suffix("_ok.rs"))
            .unwrap_or_else(|| panic!("fixture {name} is not lXXX_fire.rs / lXXX_ok.rs"));
        let id = stem.to_uppercase();
        assert!(
            xtask::lints::LINTS.iter().any(|l| l.id == id),
            "fixture {name} names unknown lint {id}"
        );
    }
}

#[test]
fn l001_silent_in_test_support_and_cfg_test() {
    let source = fixture("l001_fire.rs");
    let findings = analyze_source(
        "crates/demo/src/fixture.rs",
        &source,
        FileClass::TestSupport,
    );
    assert!(findings.is_empty(), "test-support files are exempt");
    // The same file carries a #[cfg(test)] module full of unwraps that the
    // Library pass must not flag (the two findings counted by the
    // parameterized test are outside it).
    assert!(
        source.contains("#[cfg(test)]"),
        "fixture must exercise cfg(test) masking"
    );
}

#[test]
fn l004_exempts_the_defining_module() {
    let findings = analyze_source(
        "crates/apriori/src/itemset.rs",
        &fixture("l004_fire.rs"),
        FileClass::Library,
    );
    assert!(
        findings.is_empty(),
        "itemset.rs itself may construct Itemset"
    );
}

#[test]
fn l005_exempts_sanctioned_modules() {
    for exempt in ["crates/core/src/expected.rs", "crates/core/src/counting.rs"] {
        let findings = analyze_source(exempt, &fixture("l005_fire.rs"), FileClass::Library);
        assert!(findings.is_empty(), "{exempt} is the sanctioned cast site");
    }
}

#[test]
fn l006_exempts_substrate_crates() {
    for path in [
        "crates/txdb/src/binfmt.rs",
        "crates/apriori/src/levelwise.rs",
        "crates/demo/src/lib.rs",
    ] {
        let findings = analyze_source(path, &fixture("l006_fire.rs"), FileClass::Library);
        assert!(
            findings.is_empty(),
            "{path} may use io::Result, got {findings:?}"
        );
    }
}

#[test]
fn l007_and_l008_exempt_the_counting_pool_module() {
    for name in ["l007_fire.rs", "l008_fire.rs"] {
        let findings = analyze_source(
            "crates/txdb/src/block.rs",
            &fixture(name),
            FileClass::Library,
        );
        assert!(
            findings.is_empty(),
            "block.rs owns the sanctioned spawn/recv, got {findings:?}"
        );
    }
}

#[test]
fn l009_exempts_the_terminal_owners() {
    for path in [
        "crates/cli/src/commands/mine.rs",
        "crates/xtask/src/main.rs",
        "crates/bench/src/bin/paper.rs",
    ] {
        let findings = analyze_source(path, &fixture("l009_fire.rs"), FileClass::Library);
        assert!(
            findings.is_empty(),
            "{path} owns its terminal, got {findings:?}"
        );
    }
}

#[test]
fn l012_exempts_obs_sinks_and_the_analyzer_crate() {
    for path in ["crates/txdb/src/obs.rs", "crates/xtask/src/demo.rs"] {
        let findings = analyze_source(path, &fixture("l012_fire.rs"), FileClass::Library);
        assert!(
            findings.iter().all(|f| f.lint != "L012"),
            "{path} is exempt from L012, got {findings:?}"
        );
    }
}

#[test]
fn allow_is_lint_specific() {
    // An allow(L001) must not silence an L003 on the same line.
    let src = "fn f() {\n    // negassoc-lint: allow(L001)\n    panic!(\"boom\");\n}\n";
    let fired: Vec<_> = analyze_source("crates/demo/src/lib.rs", src, FileClass::Library)
        .iter()
        .map(|f| f.lint)
        .collect::<Vec<_>>();
    // The unearned allow(L001) is itself a finding (stale + reasonless).
    assert!(fired.contains(&"L003"), "{fired:?}");
    assert!(!fired.contains(&"L001"), "{fired:?}");
}
