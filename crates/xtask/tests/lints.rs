//! Fixture tests: one positive (lint fires) and one negative (clean or
//! suppressed code passes) case per lint, pinned to the stable lint IDs.
//!
//! Fixtures live in `tests/fixtures/` as real `.rs` sources so the lexer
//! sees exactly what `analyze` would see in the tree; they are loaded as
//! text, never compiled.

use xtask::analyze_source;
use xtask::lints::FileClass;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn lints_fired(name: &str, class: FileClass) -> Vec<&'static str> {
    let findings = analyze_source(&format!("crates/demo/src/{name}"), &fixture(name), class);
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn l001_fires_on_unwrap_and_expect() {
    let fired = lints_fired("l001_unwrap.rs", FileClass::Library);
    assert_eq!(fired, ["L001", "L001"], "one unwrap + one expect");
}

#[test]
fn l001_silent_in_test_support_and_cfg_test() {
    assert!(lints_fired("l001_unwrap.rs", FileClass::TestSupport).is_empty());
    // The same file carries a #[cfg(test)] module full of unwraps that the
    // Library pass must not flag (the two findings above are outside it).
    let source = fixture("l001_unwrap.rs");
    assert!(
        source.contains("#[cfg(test)]"),
        "fixture must exercise cfg(test) masking"
    );
}

#[test]
fn l002_fires_on_raw_float_equality() {
    let fired = lints_fired("l002_float_eq.rs", FileClass::Library);
    assert_eq!(fired, ["L002", "L002"], "ri == and expected != comparisons");
}

#[test]
fn l002_ignores_integer_guards() {
    assert!(lints_fired("l002_int_guard.rs", FileClass::Library).is_empty());
}

#[test]
fn l003_fires_on_panic_family() {
    let fired = lints_fired("l003_panics.rs", FileClass::Library);
    assert_eq!(
        fired,
        ["L003", "L003", "L003"],
        "panic!, unreachable!, todo!"
    );
}

#[test]
fn l004_fires_on_raw_itemset_construction() {
    let fired = lints_fired("l004_itemset.rs", FileClass::Library);
    assert_eq!(fired, ["L004"]);
}

#[test]
fn l004_exempts_the_defining_module() {
    let findings = analyze_source(
        "crates/apriori/src/itemset.rs",
        &fixture("l004_itemset.rs"),
        FileClass::Library,
    );
    assert!(
        findings.is_empty(),
        "itemset.rs itself may construct Itemset"
    );
}

#[test]
fn l005_fires_on_lossy_support_cast() {
    let fired = lints_fired("l005_cast.rs", FileClass::Library);
    assert_eq!(fired, ["L005", "L005"], "support as f64 and minsup as u32");
}

#[test]
fn l005_exempts_sanctioned_modules() {
    for exempt in ["crates/core/src/expected.rs", "crates/core/src/counting.rs"] {
        let findings = analyze_source(exempt, &fixture("l005_cast.rs"), FileClass::Library);
        assert!(findings.is_empty(), "{exempt} is the sanctioned cast site");
    }
}

#[test]
fn l006_fires_on_io_result_in_core() {
    let findings = analyze_source(
        "crates/core/src/l006_io_result.rs",
        &fixture("l006_io_result.rs"),
        FileClass::Library,
    );
    let fired: Vec<_> = findings.iter().map(|f| f.lint).collect();
    // One finding per library `io::Result` mention (the use + the return
    // type inside cfg(test) stay silent; the signature fires once).
    assert_eq!(fired, ["L006"]);
}

#[test]
fn l006_exempts_substrate_crates() {
    for path in [
        "crates/txdb/src/binfmt.rs",
        "crates/apriori/src/levelwise.rs",
        "crates/demo/src/lib.rs",
    ] {
        let findings = analyze_source(path, &fixture("l006_io_result.rs"), FileClass::Library);
        assert!(
            findings.is_empty(),
            "{path} may use io::Result, got {findings:?}"
        );
    }
}

#[test]
fn l007_fires_on_bare_thread_spawn() {
    let fired = lints_fired("l007_thread_spawn.rs", FileClass::Library);
    assert_eq!(
        fired,
        ["L007", "L007"],
        "std::thread::spawn and thread::spawn; scoped s.spawn stays silent"
    );
}

#[test]
fn l007_exempts_the_counting_pool_module() {
    let findings = analyze_source(
        "crates/txdb/src/block.rs",
        &fixture("l007_thread_spawn.rs"),
        FileClass::Library,
    );
    assert!(
        findings.is_empty(),
        "block.rs is the sanctioned spawn site, got {findings:?}"
    );
}

#[test]
fn l008_fires_on_process_exit_and_unbounded_recv() {
    let fired = lints_fired("l008_uncancellable.rs", FileClass::Library);
    assert_eq!(
        fired,
        ["L008", "L008"],
        "process::exit and bare .recv(); recv_timeout/try_recv stay silent"
    );
}

#[test]
fn l008_exempts_the_counting_pool_module() {
    let findings = analyze_source(
        "crates/txdb/src/block.rs",
        &fixture("l008_uncancellable.rs"),
        FileClass::Library,
    );
    assert!(
        findings.is_empty(),
        "block.rs owns the sanctioned drain recv, got {findings:?}"
    );
}

#[test]
fn l009_fires_on_library_println() {
    let fired = lints_fired("l009_println.rs", FileClass::Library);
    assert_eq!(
        fired,
        ["L009", "L009"],
        "println! and eprintln!; format! and cfg(test) prints stay silent"
    );
}

#[test]
fn l009_exempts_the_terminal_owners() {
    for path in [
        "crates/cli/src/commands/mine.rs",
        "crates/xtask/src/main.rs",
        "crates/bench/src/bin/paper.rs",
    ] {
        let findings = analyze_source(path, &fixture("l009_println.rs"), FileClass::Library);
        assert!(
            findings.is_empty(),
            "{path} owns its terminal, got {findings:?}"
        );
    }
}

#[test]
fn allow_comments_suppress_with_a_paper_trail() {
    let fired = lints_fired("allowed.rs", FileClass::Library);
    assert!(
        fired.is_empty(),
        "every finding in the fixture carries an allow directive, got {fired:?}"
    );
}

#[test]
fn allow_is_lint_specific() {
    // An allow(L001) must not silence an L003 on the same line.
    let src = "fn f() {\n    // negassoc-lint: allow(L001)\n    panic!(\"boom\");\n}\n";
    let fired: Vec<_> = analyze_source("crates/demo/src/lib.rs", src, FileClass::Library)
        .iter()
        .map(|f| f.lint)
        .collect::<Vec<_>>();
    assert_eq!(fired, ["L003"]);
}

#[test]
fn every_registered_lint_has_a_firing_fixture() {
    let mut covered: Vec<&str> = Vec::new();
    for name in [
        "l001_unwrap.rs",
        "l002_float_eq.rs",
        "l003_panics.rs",
        "l004_itemset.rs",
        "l005_cast.rs",
        "l007_thread_spawn.rs",
        "l008_uncancellable.rs",
        "l009_println.rs",
    ] {
        covered.extend(lints_fired(name, FileClass::Library));
    }
    // L006 is path-scoped to the core crate, so its fixture is analyzed
    // under a core path.
    covered.extend(
        analyze_source(
            "crates/core/src/l006_io_result.rs",
            &fixture("l006_io_result.rs"),
            FileClass::Library,
        )
        .iter()
        .map(|f| f.lint),
    );
    for lint in xtask::lints::LINTS {
        assert!(
            covered.contains(&lint.id),
            "lint {} has no fixture that makes it fire",
            lint.id
        );
    }
}
