//! L011 fixture: a pass is started but never ended — neither here nor in
//! any callee.

pub fn run_pass(obs: &Obs, candidates: usize) -> u64 {
    obs.emit(|| Event::PassStart {
        label: "L2".to_string(),
        candidates,
    });
    candidates as u64
}
