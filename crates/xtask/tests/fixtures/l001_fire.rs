// Fixture: L001 — unwrap()/expect() in library code.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn bad_unwrap(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u64>) -> u64 {
    v.expect("support must be present")
}

pub fn fine(v: Option<u64>) -> u64 {
    v.unwrap_or(0) // `unwrap_or` is not `unwrap()`
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_here_are_fine() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Result<u64, ()> = Ok(4);
        assert_eq!(w.expect("test code may expect"), 4);
    }
}
