//! L013 fixture: one allow that suppresses a real finding but carries no
//! reason, and one reasoned allow that no longer suppresses anything.

pub fn suppressed_but_undocumented(v: Option<u64>) -> u64 {
    // negassoc-lint: allow(L001)
    v.unwrap()
}

pub fn stale_allow(v: u64) -> u64 {
    // negassoc-lint: allow(L003) -- this code stopped panicking long ago
    v + 1
}
