// Fixture: L004 — Itemset built from a raw tuple literal.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn bad_literal(items: Vec<ItemId>) -> Itemset {
    Itemset(items)
}
