//! L008 fixture: a raw `process::exit` and an unbounded `.recv()` must
//! fire in library code.

use std::sync::mpsc;

pub fn rage_quit(code: i32) {
    std::process::exit(code);
}

pub fn deaf_wait(rx: &mpsc::Receiver<u64>) -> Option<u64> {
    rx.recv().ok()
}
