//! L006 fixture: `io::Result` in the core crate's library code must fire;
//! the same signature inside `#[cfg(test)]` must not.

use std::io;

pub fn count_stuff() -> io::Result<u64> {
    Ok(0)
}

pub fn typed_is_fine() -> Result<u64, String> {
    Ok(0)
}

#[cfg(test)]
mod tests {
    use std::io;

    fn helper() -> io::Result<()> {
        Ok(())
    }
}
