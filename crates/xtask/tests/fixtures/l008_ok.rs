//! L008 negative fixture: `recv_timeout`/`try_recv` (cancellation-aware
//! waits), `ExitCode` returns, and test-module blocking stay silent.

use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

pub fn polite_wait(rx: &mpsc::Receiver<u64>) -> Option<u64> {
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(v) => return Some(v),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    }
}

pub fn peek(rx: &mpsc::Receiver<u64>) -> Option<u64> {
    rx.try_recv().ok()
}

pub fn clean_exit() -> ExitCode {
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    #[test]
    fn tests_may_block() {
        let (tx, rx) = mpsc::channel();
        tx.send(1u64).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
