// Fixture: L003 — panic!/unreachable!/todo! in library code.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn bad_panic(n: u64) -> u64 {
    if n == 0 {
        panic!("zero support");
    }
    n
}

pub fn bad_unreachable(n: u64) -> u64 {
    match n {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn bad_todo() {
    todo!()
}

pub fn fine() {
    // The word panic in a comment or string is not a macro call.
    let _ = "panic";
}
