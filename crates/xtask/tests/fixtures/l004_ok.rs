// Fixture: L004 negative case — the sanctioned constructors and type
// positions stay silent.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn fine_constructors(items: Vec<ItemId>) -> Itemset {
    // Paths through the sorting/dedup constructors are the sanctioned way.
    let a = Itemset::from_unsorted(items);
    let b = Itemset::singleton(ItemId(0));
    if a.len() > b.len() {
        a
    } else {
        b
    }
}

pub fn fine_type_position(set: &Itemset) -> usize {
    set.len()
}
