//! L006 negative fixture: typed errors in core library code, and
//! `io::Result` confined to `#[cfg(test)]`, stay silent.

pub fn typed_is_fine() -> Result<u64, String> {
    Ok(0)
}

#[cfg(test)]
mod tests {
    use std::io;

    fn helper() -> io::Result<()> {
        Ok(())
    }
}
