// Fixture: L002 — raw ==/!= adjacent to a float support/RI identifier.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn bad_ri_compare(ri: f64) -> bool {
    ri == 0.3
}

pub fn bad_expected_compare(x: f64, expected: f64) -> bool {
    x != expected
}

pub fn fine(ri: f64, min_ri: f64) -> bool {
    // approx_ge is the sanctioned comparison; `>=` alone is not flagged.
    ri >= min_ri
}
