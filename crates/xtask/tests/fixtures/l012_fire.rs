//! L012 fixture: a hot-path root (name prefix `parallel_pass`) that
//! mentions a Mutex and allocates inside its block loop.

use std::sync::Mutex;

pub fn parallel_pass_fixture(blocks: &[Vec<u64>]) -> u64 {
    let shared = Mutex::new(0u64);
    let mut total = 0;
    for b in blocks {
        let scratch: Vec<u64> = Vec::with_capacity(b.len());
        total += scratch.capacity() as u64;
    }
    total + shared.into_inner().unwrap_or(0)
}
