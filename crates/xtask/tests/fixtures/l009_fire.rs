//! L009 fixture: terminal output from library code.

/// Fires twice: a `println!` and an `eprintln!` in library code.
pub fn chatty(n: usize) {
    println!("processed {n} rows");
    eprintln!("warning: {n} rows skipped");
}
