//! L007 negative fixture: scoped `s.spawn` inside `thread::scope` and
//! test-module spawns stay silent.

use std::thread;

pub fn scoped_is_fine(xs: &[u64]) -> u64 {
    let mut total = 0;
    thread::scope(|s| {
        let h = s.spawn(|| xs.iter().sum::<u64>());
        total = h.join().unwrap_or(0);
    });
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let h = std::thread::spawn(|| ());
        h.join().unwrap();
    }
}
