//! L013 negative fixture: a reasoned allow that still earns its keep.

pub fn documented(v: Option<u64>) -> u64 {
    // negassoc-lint: allow(L001) -- fixture: the caller established Some
    v.unwrap()
}
