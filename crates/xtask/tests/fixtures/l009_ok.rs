//! L009 negative fixture: formatting into a value and test-module prints
//! stay silent.

pub fn quiet(n: usize) -> String {
    format!("processed {n} rows")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging output is fine here");
        eprintln!("and here");
    }
}
