// Fixture: every finding here carries a justification comment, so the
// analyzer must report nothing.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn allowed_unwrap(v: Option<u64>) -> u64 {
    // negassoc-lint: allow(L001) -- fixture justification
    v.unwrap()
}

pub fn allowed_expect(v: Option<u64>) -> u64 {
    v.expect("same-line allow") // negassoc-lint: allow(L001)
}

pub fn allowed_float_eq(ri: f64) -> bool {
    // negassoc-lint: allow(L002) -- fixture justification
    ri == 0.3
}

pub fn allowed_panic() {
    // negassoc-lint: allow(L003) -- fixture justification
    panic!("allowed");
}

pub fn allowed_literal(items: Vec<ItemId>) -> Itemset {
    // negassoc-lint: allow(L004) -- fixture justification
    Itemset(items)
}

pub fn allowed_cast(support: u64) -> f64 {
    // negassoc-lint: allow(L005) -- fixture justification
    support as f64
}
