//! L012 negative fixture: the same hot-path root with the scratch buffer
//! hoisted out of the loop and no locks; workers keep private state.

pub fn parallel_pass_fixture(blocks: &[Vec<u64>]) -> u64 {
    let mut scratch: Vec<u64> = Vec::new();
    let mut total = 0;
    for b in blocks {
        scratch.clear();
        scratch.extend(b.iter().copied());
        total += scratch.len() as u64;
    }
    total
}
