//! L008 fixture: a raw `process::exit` and an unbounded `.recv()` must
//! fire in library code; `recv_timeout`/`try_recv` (cancellation-aware
//! waits) and `ExitCode` returns must not.

use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

pub fn rage_quit(code: i32) {
    std::process::exit(code);
}

pub fn deaf_wait(rx: &mpsc::Receiver<u64>) -> Option<u64> {
    rx.recv().ok()
}

pub fn polite_wait(rx: &mpsc::Receiver<u64>) -> Option<u64> {
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(v) => return Some(v),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    }
}

pub fn peek(rx: &mpsc::Receiver<u64>) -> Option<u64> {
    rx.try_recv().ok()
}

pub fn clean_exit() -> ExitCode {
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    #[test]
    fn tests_may_block() {
        let (tx, rx) = mpsc::channel();
        tx.send(1u64).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
