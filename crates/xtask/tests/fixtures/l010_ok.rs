//! L010 negative fixture: the loop polls the token directly, or calls —
//! from inside the loop — a helper that transitively polls.

use negassoc_txdb::ctrl::CancelToken;

pub fn scan_blocks(blocks: &[Vec<u64>], ctrl: &CancelToken) -> io::Result<u64> {
    let mut total = 0;
    for b in blocks {
        ctrl.check()?;
        total += b.len() as u64;
    }
    Ok(total)
}

pub fn scan_delegating(blocks: &[Vec<u64>], ctrl: &CancelToken) -> io::Result<u64> {
    let mut total = 0;
    for b in blocks {
        total += step(b, ctrl)?;
    }
    Ok(total)
}

fn step(b: &[u64], ctrl: &CancelToken) -> io::Result<u64> {
    ctrl.check()?;
    Ok(b.len() as u64)
}

pub fn no_loop_no_duty(ctrl: &CancelToken) -> bool {
    ctrl.is_cancelled()
}
