//! L010 fixture: a library fn takes a `&CancelToken` and loops without
//! ever polling it — handing the token to a callee outside the loop (or
//! merely carrying it) earns no credit.

use negassoc_txdb::ctrl::CancelToken;

pub fn scan_blocks(blocks: &[Vec<u64>], ctrl: &CancelToken) -> u64 {
    let mut total = 0;
    for b in blocks {
        total += b.len() as u64;
    }
    let _ = ctrl;
    total
}
