// Fixture: L001 negative case — no bare unwrap/expect survives: the
// alternatives, a justified allow, and test code are all silent.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn fine(v: Option<u64>) -> u64 {
    v.unwrap_or(0) // `unwrap_or` is not `unwrap()`
}

pub fn allowed_with_paper_trail(v: Option<u64>) -> u64 {
    // negassoc-lint: allow(L001) -- fixture: the caller established Some
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_here_are_fine() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
