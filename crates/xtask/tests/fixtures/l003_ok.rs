// Fixture: L003 negative case — the word panic in comments/strings and a
// justified allow stay silent.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn fine() -> &'static str {
    // A comment may say panic! without panicking.
    "panic"
}

pub fn allowed_with_paper_trail(n: u64) -> u64 {
    if n == 0 {
        // negassoc-lint: allow(L003) -- fixture: n == 0 is unreachable by construction
        panic!("zero support");
    }
    n
}
