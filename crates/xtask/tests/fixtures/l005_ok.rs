// Fixture: L005 negative case — lossless widenings and non-support
// identifiers stay silent.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn fine_u64(actual: u32) -> u64 {
    actual as u64 // widening to u64 is lossless
}

pub fn fine_other_name(count: u64) -> f64 {
    count as f64 // not a support-counter identifier
}
