// Fixture: L005 — lossy `as` casts on support counters outside the
// sanctioned helper modules.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn bad_widening(support: u64) -> f64 {
    support as f64
}

pub fn bad_narrowing(minsup: u64) -> u32 {
    minsup as u32
}
