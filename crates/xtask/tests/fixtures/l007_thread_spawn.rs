//! L007 fixture: bare `thread::spawn` (fully qualified or via `use`) must
//! fire in library code; scoped `s.spawn` inside `thread::scope` must not.

use std::thread;

pub fn rogue_workers() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    let h2 = thread::spawn(|| 2 + 2);
    let _ = h2.join();
}

pub fn scoped_is_fine(xs: &[u64]) -> u64 {
    let mut total = 0;
    thread::scope(|s| {
        let h = s.spawn(|| xs.iter().sum::<u64>());
        total = h.join().unwrap_or(0);
    });
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let h = std::thread::spawn(|| ());
        h.join().unwrap();
    }
}
