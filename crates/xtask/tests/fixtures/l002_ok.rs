// Fixture: L002 negative case — integer guards must not be flagged.
// Never compiled; lexed as text by crates/xtask/tests/lints.rs.

pub fn zero_guards(total: u64, count: u64, base: u64) -> bool {
    total == 0 || count != 0 || base == 1
}

pub fn mean_guard(mean: f64) -> bool {
    // Not a support/RI identifier, so outside L002's scope (clippy's
    // float_cmp covers the general case).
    mean == 0.0
}
