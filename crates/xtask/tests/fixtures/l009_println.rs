//! L009 fixture: terminal output from library code.

/// Fires twice: a `println!` and an `eprintln!` in library code.
pub fn chatty(n: usize) {
    println!("processed {n} rows");
    eprintln!("warning: {n} rows skipped");
}

/// Stays silent: formatting into a value is not terminal output.
pub fn quiet(n: usize) -> String {
    format!("processed {n} rows")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging output is fine here");
        eprintln!("and here");
    }
}
