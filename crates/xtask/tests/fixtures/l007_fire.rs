//! L007 fixture: bare `thread::spawn` (fully qualified or via `use`) must
//! fire in library code.

use std::thread;

pub fn rogue_workers() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    let h2 = thread::spawn(|| 2 + 2);
    let _ = h2.join();
}
