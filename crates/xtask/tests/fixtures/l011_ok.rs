//! L011 negative fixture: every started pass ends — directly, via `?`
//! early exits (exempt by design: errors pair with RunEnd), or through a
//! callee that transitively emits the end. Match *patterns* on the event
//! enum are not emits.

pub fn run_pass(obs: &Obs, candidates: usize) -> io::Result<()> {
    obs.emit(|| Event::PassStart {
        label: "L2".to_string(),
        candidates,
    });
    let stats = compute_stats(candidates)?;
    obs.emit(|| Event::PassEnd { stats });
    Ok(())
}

pub fn run_pass_delegating(obs: &Obs, candidates: usize) {
    obs.emit(|| Event::PassStart {
        label: "L3".to_string(),
        candidates,
    });
    finish_pass(obs);
}

fn finish_pass(obs: &Obs) {
    obs.emit(|| Event::PassEnd {
        stats: PassStats::default(),
    });
}

pub fn classify(e: &Event) -> &'static str {
    match e {
        Event::PassStart { .. } => "start",
        Event::PassEnd { .. } => "end",
        _ => "other",
    }
}
