//! Hot-swap under load: N client threads hammer the server over TCP
//! while snapshots flip underneath them — both in-process (`Arc` flip)
//! and over the wire (`'S'` swap frames) — and every single response
//! must be internally consistent with exactly one snapshot version. A
//! torn read (version line from one snapshot, rule lines from another)
//! would match neither expected body and fail on the spot.
//!
//! Drain is pinned too: cancelling the token makes `serve` return, and
//! since its workers are scoped threads joined before return, a returned
//! `serve` *is* the zero-worker-threads assertion.

use negassoc::{MinerConfig, NegativeMiner, RuleSetExport};
use negassoc_apriori::MinSupport;
use negassoc_serve::{
    answer_basket_line, export_snapshot, request, serve, server::TAG_PING, server::TAG_QUERY,
    server::TAG_SWAP, ServeState, Snapshot,
};
use negassoc_taxonomy::{Taxonomy, TaxonomyBuilder};
use negassoc_txdb::ctrl::{CancelReason, CancelToken};
use negassoc_txdb::obs::Obs;
use negassoc_txdb::TransactionDbBuilder;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 40;
const SWAPS_OVER_TCP: usize = 10;
const BASKET: &str = "Ruffles, Pepsi";

/// The paper's Example 1 checkout data: Ruffles sells with Coke, almost
/// never with Pepsi — reliably yields both positive and negative rules.
fn mined_export() -> (Taxonomy, RuleSetExport) {
    let mut tb = TaxonomyBuilder::new();
    let drinks = tb.add_root("soft drinks");
    let coke = tb.add_child(drinks, "Coke").unwrap();
    let pepsi = tb.add_child(drinks, "Pepsi").unwrap();
    let snacks = tb.add_root("snacks");
    let ruffles = tb.add_child(snacks, "Ruffles").unwrap();
    tb.add_child(snacks, "Lays").unwrap();
    let tax = tb.build();

    let mut db = TransactionDbBuilder::new();
    for _ in 0..40 {
        db.add([ruffles, coke]);
    }
    for _ in 0..25 {
        db.add([coke]);
    }
    for _ in 0..30 {
        db.add([pepsi]);
    }
    for _ in 0..5 {
        db.add([ruffles, pepsi]);
    }
    let db = db.build();

    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.10),
        min_ri: 0.3,
        ..MinerConfig::default()
    };
    let outcome = NegativeMiner::new(config).mine(&db, &tax).expect("mine");
    (tax.clone(), outcome.rule_export(&tax, 0.6, 0.3))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("negassoc-soak-{}-{name}", std::process::id()))
}

#[test]
fn hot_swap_soak_no_torn_reads_and_clean_drain() {
    let (tax, export1) = mined_export();
    assert!(
        !export1.positive.is_empty() && !export1.negative.is_empty(),
        "soak data must exercise both rule polarities"
    );
    // Snapshot 2: same mine, negatives dropped — bodies differ beyond
    // the version line, so a torn read cannot masquerade as either.
    let mut export2 = export1.clone();
    export2.negative.clear();

    let snap1 = Arc::new(Snapshot::from_export(&export1, &tax, 1).expect("snap1"));
    let snap2 = Arc::new(Snapshot::from_export(&export2, &tax, 2).expect("snap2"));
    let expected1 = answer_basket_line(&tax, &snap1, BASKET, false);
    let expected2 = answer_basket_line(&tax, &snap2, BASKET, false);
    assert_ne!(expected1, expected2);
    assert!(expected1.starts_with("snapshot 1 "));
    assert!(expected2.starts_with("snapshot 2 "));

    // On-disk copies for the over-the-wire swap path, plus a third
    // snapshot exported under a *different* taxonomy: swapping to it
    // must be refused with the old snapshot still serving.
    let file1 = temp_path("v1.nars");
    let file2 = temp_path("v2.nars");
    let alien = temp_path("alien.nars");
    export_snapshot(&file1, &export1, &tax, 1).expect("export v1");
    export_snapshot(&file2, &export2, &tax, 2).expect("export v2");
    {
        let (other_tax, other_export) = {
            let mut tb = TaxonomyBuilder::new();
            let root = tb.add_root("aisle");
            let a = tb.add_child(root, "a").unwrap();
            let b = tb.add_child(root, "b").unwrap();
            let tax = tb.build();
            let mut db = TransactionDbBuilder::new();
            for _ in 0..30 {
                db.add([a, b]);
            }
            let db = db.build();
            let config = MinerConfig {
                min_support: MinSupport::Fraction(0.2),
                min_ri: 0.3,
                ..MinerConfig::default()
            };
            let outcome = NegativeMiner::new(config).mine(&db, &tax).expect("mine");
            let export = outcome.rule_export(&tax, 0.5, 0.3);
            (tax, export)
        };
        export_snapshot(&alien, &other_export, &other_tax, 9).expect("export alien");
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let state = ServeState::new(tax.clone(), Arc::clone(&snap1)).expect("state");
    let token = CancelToken::new();
    let obs = Obs::disabled();
    let finished = AtomicUsize::new(0);

    let stats = std::thread::scope(|scope| {
        let server = {
            let (listener, state, token, obs) = (listener, &state, &token, &obs);
            scope.spawn(move || serve(listener, state, 3, token, obs))
        };

        // Query clients: each holds one keep-alive connection and
        // asserts every body equals one snapshot's expected answer.
        let mut clients = Vec::new();
        for c in 0..CLIENTS {
            let (expected1, expected2, finished) = (&expected1, &expected2, &finished);
            clients.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut seen = [0usize; 2];
                for i in 0..QUERIES_PER_CLIENT {
                    let (ok, body) =
                        request(&mut stream, TAG_QUERY, BASKET.as_bytes()).expect("query");
                    assert!(ok, "client {c} query {i} failed: {body}");
                    if body == *expected1 {
                        seen[0] += 1;
                    } else if body == *expected2 {
                        seen[1] += 1;
                    } else {
                        panic!(
                            "client {c} query {i}: torn or foreign response:\n{body}\n\
                             (expected one of the two snapshot bodies)"
                        );
                    }
                    // Interleave a ping now and then; its version must
                    // also be a real one.
                    if i % 16 == 7 {
                        let (ok, pong) = request(&mut stream, TAG_PING, b"").expect("ping");
                        assert!(ok && (pong.contains("snapshot 1") || pong.contains("snapshot 2")));
                    }
                }
                finished.fetch_add(1, Ordering::SeqCst);
                seen
            }));
        }

        // Over-the-wire swapper: alternates v1/v2 swap frames, and
        // checks the alien snapshot is refused every time.
        let swapper = {
            let (file1, file2, alien, finished) = (&file1, &file2, &alien, &finished);
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect swapper");
                let mut refused = 0usize;
                for i in 0..SWAPS_OVER_TCP {
                    let path = if i % 2 == 0 { file2 } else { file1 };
                    let (ok, body) =
                        request(&mut stream, TAG_SWAP, path.display().to_string().as_bytes())
                            .expect("swap");
                    assert!(ok, "swap {i} refused: {body}");
                    assert!(body.contains("swapped snapshot version"), "got: {body}");
                    let (ok, body) = request(
                        &mut stream,
                        TAG_SWAP,
                        alien.display().to_string().as_bytes(),
                    )
                    .expect("alien swap");
                    assert!(!ok, "mismatched taxonomy swap must be refused");
                    assert!(body.contains("taxonomy mismatch"), "got: {body}");
                    refused += 1;
                }
                finished.fetch_add(1, Ordering::SeqCst);
                refused
            })
        };

        // Main thread: flip the Arc pointer directly while anyone is
        // still running — the in-process half of the swap storm.
        let mut flips = 0u64;
        while finished.load(Ordering::SeqCst) < CLIENTS + 1 {
            let next = if flips % 2 == 0 { &snap2 } else { &snap1 };
            state.install(Arc::clone(next)).expect("install");
            flips += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(flips > 0);

        let mut totals = [0usize; 2];
        for client in clients {
            let seen = client.join().expect("client");
            totals[0] += seen[0];
            totals[1] += seen[1];
        }
        assert_eq!(totals[0] + totals[1], CLIENTS * QUERIES_PER_CLIENT);
        let refused = swapper.join().expect("swapper");
        assert_eq!(refused, SWAPS_OVER_TCP);

        // Drain: cancel and require serve() to return promptly. Its
        // workers are scoped threads joined before return, so returning
        // is the zero-leaked-workers guarantee.
        let drain_start = Instant::now();
        token.cancel(CancelReason::UserInterrupt);
        let stats = server.join().expect("server thread").expect("serve result");
        assert!(
            drain_start.elapsed() < Duration::from_secs(5),
            "drain took {:?}",
            drain_start.elapsed()
        );
        stats
    });

    assert_eq!(stats.queries, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(stats.swaps, SWAPS_OVER_TCP as u64);
    // Every alien swap counted as an error response.
    assert!(stats.errors >= SWAPS_OVER_TCP as u64);
    assert_eq!(stats.connections, (CLIENTS + 1) as u64);
    assert_eq!(stats.workers, 3);

    for p in [&file1, &file2, &alien] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn drain_with_no_clients_returns_promptly() {
    let (tax, export) = mined_export();
    let snap = Arc::new(Snapshot::from_export(&export, &tax, 1).expect("snap"));
    let state = ServeState::new(tax, snap).expect("state");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let token = CancelToken::new();
    let obs = Obs::disabled();

    let elapsed = std::thread::scope(|scope| {
        let server = {
            let (state, token, obs) = (&state, &token, &obs);
            scope.spawn(move || serve(listener, state, 2, token, obs))
        };
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        token.cancel(CancelReason::UserInterrupt);
        let stats = server.join().expect("thread").expect("serve");
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.workers, 2);
        start.elapsed()
    });
    assert!(elapsed < Duration::from_secs(2), "drain took {elapsed:?}");
}
