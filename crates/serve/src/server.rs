//! The long-running rule server: length-prefixed TCP, a worker pool on
//! the workspace's sanctioned spawn discipline, hot-swappable snapshots,
//! and graceful drain on the shared [`CancelToken`].
//!
//! # Protocol
//!
//! Every request and response is one frame: a `u32` little-endian length
//! followed by that many bytes. A request's first byte is its tag —
//! [`TAG_QUERY`] (`'Q'`, rest is a comma-separated basket line),
//! [`TAG_SWAP`] (`'S'`, rest is a snapshot path the *server* loads), or
//! [`TAG_PING`] (`'P'`). A response's first byte is `+` (ok) or `-`
//! (error), followed by a UTF-8 body. Connections are keep-alive: one
//! stream carries any number of frames.
//!
//! # Hot swap
//!
//! The live snapshot sits behind [`SnapshotCell`] — the `Arc` pointer
//! flip. A request clones the `Arc` once, up front, and resolves
//! entirely against that clone; a concurrent swap replaces the pointer
//! for *future* requests but can never tear an in-flight one. Swaps
//! verify the new snapshot's taxonomy digest against the serving
//! taxonomy and are refused (typed error, old snapshot stays) on
//! mismatch.
//!
//! # Drain
//!
//! Cancelling the token stops the accept loop, lets each worker finish
//! the request it is executing, and closes connections at the next frame
//! boundary. Workers are scoped threads joined before [`serve`] returns,
//! so a returned `serve` means zero worker threads remain — the soak
//! test pins exactly that.

use crate::engine::answer_basket_line;
use crate::error::ServeError;
use crate::snapshot::Snapshot;
use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::ctrl::CancelToken;
use negassoc_txdb::obs::{MetricId, MetricKind, Obs};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Request tag: match a basket (body = comma-separated item names).
pub const TAG_QUERY: u8 = b'Q';
/// Request tag: hot-swap to the snapshot at the body's path.
pub const TAG_SWAP: u8 = b'S';
/// Request tag: liveness probe; answers with the live snapshot version.
pub const TAG_PING: u8 = b'P';

/// How often blocked waits re-check the cancel token (the `txdb::block`
/// cadence).
const CTRL_POLL: Duration = Duration::from_millis(20);
/// Socket read/write timeout, so idle connections poll the token too.
const IO_POLL: Duration = Duration::from_millis(50);
/// Poll rounds a worker grants a mid-frame request after cancellation
/// before abandoning the connection (~1 s at [`IO_POLL`]); drain must
/// not hinge on a stalled client.
const DRAIN_GRACE_POLLS: u32 = 20;
/// Largest accepted frame; beyond this the peer is not speaking the
/// protocol.
const MAX_FRAME: u32 = 1 << 20;

/// The hot-swap cell: an `Arc` pointer flip behind a many-reader lock.
/// Readers hold the lock only long enough to clone the `Arc`; every
/// request therefore resolves against exactly one snapshot for its whole
/// lifetime, which is the no-torn-reads guarantee.
#[derive(Debug)]
pub struct SnapshotCell {
    slot: RwLock<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// A cell serving `snapshot`.
    pub fn new(snapshot: Arc<Snapshot>) -> Self {
        SnapshotCell {
            // negassoc-lint: allow(L012) -- serving-layer swap cell, not a counting-pass structure; readers only clone the Arc
            slot: RwLock::new(snapshot),
        }
    }

    /// The live snapshot (cloned handle).
    pub fn load(&self) -> Arc<Snapshot> {
        // A poisoned lock only means some reader/writer panicked while
        // holding it; the Arc inside is still valid.
        match self.slot.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poison) => Arc::clone(&poison.into_inner()),
        }
    }

    /// Flip the pointer to `next`, returning the snapshot it replaced.
    pub fn swap(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        let mut guard = match self.slot.write() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        };
        std::mem::replace(&mut *guard, next)
    }
}

/// Everything the worker pool shares: the serving taxonomy and the
/// hot-swap cell. Construction and every swap re-verify the snapshot's
/// taxonomy digest, so the state can never pair rules with the wrong
/// hierarchy.
#[derive(Debug)]
pub struct ServeState {
    tax: Taxonomy,
    cell: SnapshotCell,
}

impl ServeState {
    /// A state serving `snapshot` over `tax`. Fails with
    /// [`ServeError::SnapshotTaxonomyMismatch`] when they disagree.
    pub fn new(tax: Taxonomy, snapshot: Arc<Snapshot>) -> Result<Self, ServeError> {
        let digest = tax.digest();
        if snapshot.meta().taxonomy_digest != digest {
            return Err(ServeError::SnapshotTaxonomyMismatch {
                snapshot: snapshot.meta().taxonomy_digest,
                taxonomy: digest,
            });
        }
        Ok(ServeState {
            tax,
            cell: SnapshotCell::new(snapshot),
        })
    }

    /// The serving taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.tax
    }

    /// The live snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Answer one basket line against the live snapshot (the server's
    /// query path; also the bench harness's unit of work).
    pub fn answer(&self, line: &str) -> String {
        let snapshot = self.cell.load();
        answer_basket_line(&self.tax, &snapshot, line, false)
    }

    /// Install `next` as the live snapshot after digest verification.
    /// Returns `(old_version, new_version)`; on mismatch the old
    /// snapshot keeps serving.
    pub fn install(&self, next: Arc<Snapshot>) -> Result<(u64, u64), ServeError> {
        let digest = self.tax.digest();
        if next.meta().taxonomy_digest != digest {
            return Err(ServeError::SnapshotTaxonomyMismatch {
                snapshot: next.meta().taxonomy_digest,
                taxonomy: digest,
            });
        }
        let new_version = next.meta().snapshot_version;
        let old = self.cell.swap(next);
        Ok((old.meta().snapshot_version, new_version))
    }

    /// Load the snapshot at `path` and install it (the `'S'` request).
    pub fn install_from_path(&self, path: &str) -> Result<(u64, u64), ServeError> {
        let next = Snapshot::load(path, &self.tax)?;
        self.install(Arc::new(next))
    }
}

/// What one [`serve`] run did, merged across workers in spawn order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames answered (all tags).
    pub requests: u64,
    /// Query frames answered.
    pub queries: u64,
    /// Successful hot-swaps.
    pub swaps: u64,
    /// Error responses plus protocol/I/O failures.
    pub errors: u64,
    /// Worker threads the pool ran (all joined by return time).
    pub workers: usize,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} requests ({} queries, {} swaps, {} errors) over {} connections on {} workers",
            self.requests, self.queries, self.swaps, self.errors, self.connections, self.workers
        )
    }
}

/// Pre-registered metric ids (registration hashes names; do it once, not
/// per request).
#[derive(Clone, Copy)]
struct ServeMetrics {
    connections: Option<MetricId>,
    requests: Option<MetricId>,
    queries: Option<MetricId>,
    swaps: Option<MetricId>,
    errors: Option<MetricId>,
    snapshot_version: Option<MetricId>,
    latency: [Option<MetricId>; 5],
}

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is unbounded.
const LATENCY_BOUNDS_US: [u128; 4] = [100, 1_000, 10_000, 100_000];
const LATENCY_NAMES: [&str; 5] = [
    "serve.latency_le_100us",
    "serve.latency_le_1ms",
    "serve.latency_le_10ms",
    "serve.latency_le_100ms",
    "serve.latency_gt_100ms",
];

impl ServeMetrics {
    fn register(obs: &Obs) -> Self {
        let mut latency = [None; 5];
        for (slot, name) in latency.iter_mut().zip(LATENCY_NAMES) {
            *slot = obs.metric(name, MetricKind::Counter);
        }
        ServeMetrics {
            connections: obs.metric("serve.connections", MetricKind::Counter),
            requests: obs.metric("serve.requests", MetricKind::Counter),
            queries: obs.metric("serve.queries", MetricKind::Counter),
            swaps: obs.metric("serve.swaps", MetricKind::Counter),
            errors: obs.metric("serve.errors", MetricKind::Counter),
            snapshot_version: obs.metric("serve.snapshot_version", MetricKind::Gauge),
            latency,
        }
    }

    fn observe_latency(&self, obs: &Obs, elapsed: Duration) {
        let us = elapsed.as_micros();
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        obs.count(self.latency[bucket], 1);
    }
}

/// Run the server until `token` cancels: accept on `listener`, fan
/// connections out to `workers` pooled threads, answer frames against
/// `state`, report counters and latency buckets through `obs`.
///
/// The accept loop runs on the calling thread and re-checks the token
/// every [`CTRL_POLL`]-ish interval (non-blocking accept + sleep);
/// workers block on the connection queue with `recv_timeout` and poll
/// the same token. All workers are scoped and joined before this
/// returns, in spawn order, with worker panics propagated.
pub fn serve(
    listener: TcpListener,
    state: &ServeState,
    workers: usize,
    token: &CancelToken,
    obs: &Obs,
) -> io::Result<ServeStats> {
    let workers = workers.max(1);
    let metrics = ServeMetrics::register(obs);
    if let Some(id) = metrics.snapshot_version {
        if let Some(m) = obs.metrics() {
            m.set(id, state.snapshot().meta().snapshot_version);
        }
    }
    listener.set_nonblocking(true)?;

    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(workers * 2);
    let conn_rx = Mutex::new(conn_rx);

    let mut stats = ServeStats {
        workers,
        ..ServeStats::default()
    };
    std::thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let conn_rx = &conn_rx;
            handles.push(scope.spawn(move || worker_loop(conn_rx, state, token, obs, metrics)));
        }

        while !token.is_cancelled() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stats.connections += 1;
                    obs.count(metrics.connections, 1);
                    // Tiny frames dominate; don't batch them.
                    let _ = stream.set_nodelay(true);
                    if conn_tx.send(stream).is_err() {
                        // Every worker exited (only possible via panic);
                        // joining below will propagate it.
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(CTRL_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. a connection reset
                    // before accept); stay up.
                    stats.errors += 1;
                    obs.count(metrics.errors, 1);
                    std::thread::sleep(CTRL_POLL);
                }
            }
        }

        // Drain: no new connections; workers finish in-flight requests,
        // drop queued connections, and exit.
        drop(conn_tx);
        for handle in handles {
            match handle.join() {
                Ok(ws) => {
                    stats.requests += ws.requests;
                    stats.queries += ws.queries;
                    stats.swaps += ws.swaps;
                    stats.errors += ws.errors;
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(())
    })?;
    obs.flush();
    Ok(stats)
}

#[derive(Clone, Copy, Debug, Default)]
struct WorkerStats {
    requests: u64,
    queries: u64,
    swaps: u64,
    errors: u64,
}

/// One pooled worker: pop a connection, serve its frames until EOF or
/// drain, repeat. Blocked pops use `recv_timeout` at the control-poll
/// cadence so cancellation is never missed.
fn worker_loop(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    state: &ServeState,
    token: &CancelToken,
    obs: &Obs,
    metrics: ServeMetrics,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    loop {
        if token.is_cancelled() {
            break;
        }
        let popped = {
            let guard = match conn_rx.lock() {
                Ok(guard) => guard,
                Err(poison) => poison.into_inner(),
            };
            guard.recv_timeout(CTRL_POLL)
        };
        match popped {
            Ok(stream) => handle_connection(stream, state, token, obs, metrics, &mut stats),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    stats
}

/// Serve one keep-alive connection: frames in, frames out, until the
/// peer hangs up, the protocol is violated, or the token drains us at a
/// frame boundary.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    token: &CancelToken,
    obs: &Obs,
    metrics: ServeMetrics,
    stats: &mut WorkerStats,
) {
    let _ = stream.set_read_timeout(Some(IO_POLL));
    let _ = stream.set_write_timeout(Some(IO_POLL));
    loop {
        let mut len_buf = [0u8; 4];
        match read_full(&mut stream, &mut len_buf, token) {
            Ok(ReadOutcome::Full) => {}
            // Clean close: EOF or drain at a frame boundary.
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Truncated) | Err(_) => {
                stats.errors += 1;
                obs.count(metrics.errors, 1);
                return;
            }
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_FRAME {
            stats.errors += 1;
            obs.count(metrics.errors, 1);
            return;
        }
        let mut frame = vec![0u8; len as usize];
        match read_full(&mut stream, &mut frame, token) {
            Ok(ReadOutcome::Full) => {}
            _ => {
                stats.errors += 1;
                obs.count(metrics.errors, 1);
                return;
            }
        }

        let started = Instant::now();
        let (ok, body) = dispatch(&frame, state, obs, metrics, stats);
        stats.requests += 1;
        obs.count(metrics.requests, 1);
        metrics.observe_latency(obs, started.elapsed());
        if !ok {
            stats.errors += 1;
            obs.count(metrics.errors, 1);
        }

        let mut response = Vec::with_capacity(5 + body.len());
        response.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
        response.push(if ok { b'+' } else { b'-' });
        response.extend_from_slice(body.as_bytes());
        if write_full(&mut stream, &response, token).is_err() {
            stats.errors += 1;
            obs.count(metrics.errors, 1);
            return;
        }
        if token.is_cancelled() {
            return;
        }
    }
}

/// Answer one decoded request frame.
fn dispatch(
    frame: &[u8],
    state: &ServeState,
    obs: &Obs,
    metrics: ServeMetrics,
    stats: &mut WorkerStats,
) -> (bool, String) {
    match frame[0] {
        TAG_QUERY => match std::str::from_utf8(&frame[1..]) {
            Ok(line) => {
                stats.queries += 1;
                obs.count(metrics.queries, 1);
                (true, state.answer(line))
            }
            Err(_) => (false, "query is not UTF-8\n".to_owned()),
        },
        TAG_SWAP => match std::str::from_utf8(&frame[1..]) {
            Ok(path) => match state.install_from_path(path.trim()) {
                Ok((old, new)) => {
                    stats.swaps += 1;
                    obs.count(metrics.swaps, 1);
                    if let (Some(id), Some(m)) = (metrics.snapshot_version, obs.metrics()) {
                        m.set(id, new);
                    }
                    (true, format!("swapped snapshot version {old} -> {new}\n"))
                }
                Err(e) => (false, format!("swap refused: {e}\n")),
            },
            Err(_) => (false, "swap path is not UTF-8\n".to_owned()),
        },
        TAG_PING => (
            true,
            format!(
                "pong snapshot {}\n",
                state.snapshot().meta().snapshot_version
            ),
        ),
        other => (false, format!("unknown request tag {:#04x}\n", other)),
    }
}

enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean end: EOF (or drain) before the first byte.
    Closed,
    /// EOF mid-buffer — the peer violated the framing.
    Truncated,
}

/// Fill `buf` from `stream`, polling the token on every socket timeout.
/// Before the first byte, cancellation closes cleanly; mid-buffer it
/// grants [`DRAIN_GRACE_POLLS`] more rounds so an in-flight frame can
/// finish, then gives up — drain never hinges on a stalled client.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    token: &CancelToken,
) -> io::Result<ReadOutcome> {
    let mut off = 0;
    let mut polls_after_cancel = 0u32;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                return Ok(if off == 0 {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Truncated
                })
            }
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if token.is_cancelled() {
                    if off == 0 {
                        return Ok(ReadOutcome::Closed);
                    }
                    polls_after_cancel += 1;
                    if polls_after_cancel > DRAIN_GRACE_POLLS {
                        return token.check().map(|()| ReadOutcome::Closed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Write all of `buf`, polling the token on timeouts with the same
/// post-cancel grace as [`read_full`].
fn write_full(stream: &mut TcpStream, buf: &[u8], token: &CancelToken) -> io::Result<()> {
    let mut off = 0;
    let mut polls_after_cancel = 0u32;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if token.is_cancelled() {
                    polls_after_cancel += 1;
                    if polls_after_cancel > DRAIN_GRACE_POLLS {
                        return token.check();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Client-side round trip: send one `tag` frame with `body`, read the
/// response frame. Returns `(ok, body)` where `ok` mirrors the `+`/`-`
/// status byte. Blocking (no timeouts); callers own deadline policy via
/// socket options.
pub fn request(stream: &mut TcpStream, tag: u8, body: &[u8]) -> io::Result<(bool, String)> {
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
    frame.push(tag);
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;

    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response frame claims {len} bytes"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    let ok = payload[0] == b'+';
    let body = String::from_utf8_lossy(&payload[1..]).into_owned();
    Ok((ok, body))
}
