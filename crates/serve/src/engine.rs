//! The query engine: basket in, matched rules out.
//!
//! A rule applies to a basket when its antecedent is a subset of the
//! basket's ancestor-expanded item set
//! ([`Taxonomy::expand_with_ancestors`]) — the same closure the paper's
//! extended-transaction counting uses at mine time, so a basket holding
//! `Evian` matches rules written over `bottled water` or `beverages`.
//!
//! Two matchers exist on purpose:
//!
//! * [`Snapshot::match_expanded`] — production path: union the
//!   antecedent-index posting lists anchored at the expanded items, then
//!   verify each candidate's full antecedent.
//! * [`Snapshot::match_expanded_oracle`] — a deliberately naive full
//!   scan of every rule, sharing no candidate logic with the index path.
//!   CI diffs the two byte-for-byte over served query batches; any index
//!   bug shows up as a divergence, not a silently wrong answer.
//!
//! Both return rule ids in ascending canonical order, and both feed one
//! renderer, so equal matches imply equal bytes on the wire.

use crate::snapshot::Snapshot;
use negassoc_taxonomy::{ItemId, Taxonomy};
use std::fmt::Write as _;

/// Rules matched against one basket, as indexes into the snapshot's
/// canonical rule lists (ascending).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Matches {
    /// Indexes into [`Snapshot::positive`].
    pub positive: Vec<u32>,
    /// Indexes into [`Snapshot::negative`].
    pub negative: Vec<u32>,
}

impl Snapshot {
    /// Match via the antecedent index: collect the posting lists of
    /// every expanded item, then verify each candidate rule's full
    /// antecedent against the expansion. `expanded` must be sorted
    /// (as [`Taxonomy::expand_with_ancestors`] returns it).
    pub fn match_expanded(&self, expanded: &[ItemId]) -> Matches {
        let n_pos = self.positive().len() as u32;
        let mut candidates: Vec<u32> = Vec::new();
        let index = self.index();
        for &item in expanded {
            if let Ok(i) = index.binary_search_by_key(&item, |e| e.0) {
                candidates.extend_from_slice(&index[i].1);
            }
        }
        // Each rule is posted exactly once (under its smallest
        // antecedent item), so the union is duplicate-free; sorting
        // restores canonical answer order across posting lists.
        candidates.sort_unstable();
        let mut matches = Matches::default();
        for rid in candidates {
            let antecedent = if rid < n_pos {
                &self.positive()[rid as usize].antecedent
            } else {
                &self.negative()[(rid - n_pos) as usize].antecedent
            };
            if is_subset(antecedent.items(), expanded) {
                if rid < n_pos {
                    matches.positive.push(rid);
                } else {
                    matches.negative.push(rid - n_pos);
                }
            }
        }
        matches
    }

    /// The offline oracle: scan every rule and test its antecedent
    /// directly, no index involved. Must agree with
    /// [`Snapshot::match_expanded`] on every basket.
    pub fn match_expanded_oracle(&self, expanded: &[ItemId]) -> Matches {
        let mut matches = Matches::default();
        for (i, rule) in self.positive().iter().enumerate() {
            if rule
                .antecedent
                .items()
                .iter()
                .all(|item| expanded.contains(item))
            {
                matches.positive.push(i as u32);
            }
        }
        for (i, rule) in self.negative().iter().enumerate() {
            if rule
                .antecedent
                .items()
                .iter()
                .all(|item| expanded.contains(item))
            {
                matches.negative.push(i as u32);
            }
        }
        matches
    }
}

/// Subset test over two sorted id slices (merge walk).
fn is_subset(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    let mut h = haystack.iter();
    'outer: for want in needle {
        for have in h.by_ref() {
            if have == want {
                continue 'outer;
            }
            if have > want {
                return false;
            }
        }
        return false;
    }
    true
}

/// Answer one basket line end to end: parse, resolve, expand, match
/// (indexed or oracle), render. This is the single render path shared by
/// the server's query handler and the offline `match` oracle, so equal
/// rule matches are equal bytes.
///
/// A basket line is comma-separated item names (names may contain
/// spaces); unknown names and empty baskets render as `error:` bodies
/// rather than failing the connection, so a batch diff sees them too.
pub fn answer_basket_line(tax: &Taxonomy, snapshot: &Snapshot, line: &str, oracle: bool) -> String {
    let mut items: Vec<ItemId> = Vec::new();
    for name in line.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match tax.id_of(name) {
            Some(id) => items.push(id),
            None => return format!("error: unknown item {name:?}\n"),
        }
    }
    if items.is_empty() {
        return "error: empty basket\n".to_owned();
    }
    let expanded = tax.expand_with_ancestors(items.iter().copied());
    let matches = if oracle {
        snapshot.match_expanded_oracle(&expanded)
    } else {
        snapshot.match_expanded(&expanded)
    };
    render_matches(tax, snapshot, &items, &matches)
}

/// Render one basket's answer. First line names the snapshot version —
/// the hot-swap soak test asserts every body is internally consistent
/// with exactly the version on this line.
pub fn render_matches(
    tax: &Taxonomy,
    snapshot: &Snapshot,
    basket: &[ItemId],
    matches: &Matches,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot {} basket [{}] matched {} positive, {} negative",
        snapshot.meta().snapshot_version,
        names(tax, basket),
        matches.positive.len(),
        matches.negative.len()
    );
    for &i in &matches.positive {
        let rule = &snapshot.positive()[i as usize];
        let _ = writeln!(
            out,
            "P {} => {} sup {} conf {:.4}",
            names(tax, rule.antecedent.items()),
            names(tax, rule.consequent.items()),
            rule.support,
            rule.confidence
        );
    }
    for &i in &matches.negative {
        let rule = &snapshot.negative()[i as usize];
        let _ = writeln!(
            out,
            "N {} =/=> {} ri {:.4} expected {:.3} actual {}",
            names(tax, rule.antecedent.items()),
            names(tax, rule.consequent.items()),
            rule.ri,
            rule.expected,
            rule.actual
        );
    }
    out
}

fn names(tax: &Taxonomy, items: &[ItemId]) -> String {
    let mut out = String::new();
    for (i, &item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(" + ");
        }
        if item.index() < tax.len() {
            out.push_str(tax.name(item));
        } else {
            let _ = write!(out, "#{}", item.0);
        }
    }
    out
}
