//! The NARS v1 rule-set snapshot: an immutable, versioned, CRC-32-framed
//! file holding one mine's positive and negative rules plus the
//! antecedent index the query engine matches with.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! magic      b"NARS"                      4 bytes
//! version    u8 = 1
//! section 'H'  self-describing header
//! section 'P'  positive rules
//! section 'N'  negative rules
//! section 'X'  antecedent index
//! ```
//!
//! Every section is framed like an NADB v2 block: a 13-byte frame header
//! `tag u8 · payload_len u32 · payload_crc u32 · frame_crc u32` (the
//! frame CRC covers the 9 bytes before it), then the payload. A flipped
//! bit anywhere — frame or payload — fails a checksum before any byte is
//! trusted.
//!
//! The 'H' payload pins provenance: snapshot version, the digest of the
//! taxonomy the rule ids were minted under ([`Taxonomy::digest`]), the
//! database size and thresholds, and both rule counts. Loading a
//! snapshot against a taxonomy with a different digest is a typed
//! [`ServeError::SnapshotTaxonomyMismatch`] — never a silent
//! mis-expansion.
//!
//! The 'X' payload is the antecedent index: for every rule, the rule id
//! (one combined id space, positives first) posted under the *smallest*
//! item id of its antecedent. A rule can only match a basket whose
//! ancestor-expanded item set contains that anchor, so the index turns
//! "scan every rule" into "union a few posting lists, then verify".
//! Posting lists and anchors are sorted; the loader rebuilds the index
//! from the rule sections and requires bit-equality, so a corrupt or
//! hand-rolled index can never serve wrong answers.

use crate::error::ServeError;
use negassoc::rules::NegativeRule;
use negassoc::RuleSetExport;
use negassoc_apriori::rules::Rule;
use negassoc_apriori::Itemset;
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::crc32::crc32;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NARS";
const VERSION: u8 = 1;
/// Upper bound on any section payload; a length field beyond this is
/// corruption, not a rule set.
const MAX_SECTION: u32 = 256 << 20;
/// Fixed size of the 'H' section payload.
const HEADER_LEN: usize = 56;

/// Provenance carried in the snapshot header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotMeta {
    /// Monotonic rule-set version chosen at export time; the serving
    /// layer reports it with every answer so hot-swaps are observable.
    pub snapshot_version: u64,
    /// [`Taxonomy::digest`] of the hierarchy the rule ids belong to.
    pub taxonomy_digest: u64,
    /// Transactions in the mined database.
    pub num_transactions: u64,
    /// Absolute minimum support count of the mine.
    pub min_support_count: u64,
    /// MinRI threshold the negative rules cleared.
    pub min_ri: f64,
    /// Minimum confidence the positive rules cleared.
    pub min_confidence: f64,
}

/// An immutable, loaded rule-set snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    meta: SnapshotMeta,
    positive: Vec<Rule>,
    negative: Vec<NegativeRule>,
    /// `(anchor, posting list of combined rule ids)`, sorted by anchor.
    index: Vec<(ItemId, Vec<u32>)>,
}

impl Snapshot {
    /// The provenance header.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// Positive rules in canonical (export) order.
    pub fn positive(&self) -> &[Rule] {
        &self.positive
    }

    /// Negative rules in canonical (export) order.
    pub fn negative(&self) -> &[NegativeRule] {
        &self.negative
    }

    /// The antecedent index, sorted by anchor item id.
    pub(crate) fn index(&self) -> &[(ItemId, Vec<u32>)] {
        &self.index
    }

    /// Total rules across both polarities.
    pub fn num_rules(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Build an in-memory snapshot straight from an export bundle
    /// (bypassing the file round trip; tests and the bench harness use
    /// this, the CLI goes through [`export_snapshot`] + [`Snapshot::load`]).
    /// Same taxonomy pinning as the file path.
    pub fn from_export(
        export: &RuleSetExport,
        tax: &Taxonomy,
        snapshot_version: u64,
    ) -> Result<Self, ServeError> {
        check_digest(export.taxonomy_digest, tax)?;
        let meta = SnapshotMeta {
            snapshot_version,
            taxonomy_digest: export.taxonomy_digest,
            num_transactions: export.num_transactions,
            min_support_count: export.min_support_count,
            min_ri: export.min_ri,
            min_confidence: export.min_confidence,
        };
        let index = build_index(&export.positive, &export.negative);
        Ok(Snapshot {
            meta,
            positive: export.positive.clone(),
            negative: export.negative.clone(),
            index,
        })
    }

    /// Load and fully verify a snapshot file against `tax`: magic,
    /// version, every frame and payload CRC, id bounds, canonical
    /// itemset ordering, the taxonomy digest, and the antecedent index
    /// (which must equal the one rebuilt from the rule sections).
    pub fn load<P: AsRef<Path>>(path: P, tax: &Taxonomy) -> Result<Self, ServeError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes, tax)
    }

    /// [`Snapshot::load`] over an in-memory byte buffer.
    pub fn from_bytes(bytes: &[u8], tax: &Taxonomy) -> Result<Self, ServeError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(ServeError::Format(
                "not a NARS rule-set snapshot (bad magic)".into(),
            ));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(ServeError::Format(format!(
                "unsupported snapshot format version {version} (this build reads v{VERSION})"
            )));
        }

        let header = read_section(&mut r, b'H')?;
        if header.len() != HEADER_LEN {
            return Err(ServeError::Format(format!(
                "header section is {} bytes, want {HEADER_LEN}",
                header.len()
            )));
        }
        let mut h = Reader {
            bytes: header,
            pos: 0,
        };
        let meta = SnapshotMeta {
            snapshot_version: h.u64()?,
            taxonomy_digest: h.u64()?,
            num_transactions: h.u64()?,
            min_support_count: h.u64()?,
            min_ri: f64::from_bits(h.u64()?),
            min_confidence: f64::from_bits(h.u64()?),
        };
        let n_pos = h.u32()? as usize;
        let n_neg = h.u32()? as usize;
        check_digest(meta.taxonomy_digest, tax)?;

        let pos_payload = read_section(&mut r, b'P')?;
        let positive = decode_positive(pos_payload, n_pos, tax)?;
        let neg_payload = read_section(&mut r, b'N')?;
        let negative = decode_negative(neg_payload, n_neg, tax)?;
        let idx_payload = read_section(&mut r, b'X')?;
        let index = decode_index(idx_payload, n_pos + n_neg)?;
        if r.pos != bytes.len() {
            return Err(ServeError::Format(format!(
                "{} trailing bytes after the index section",
                bytes.len() - r.pos
            )));
        }
        // The index is data *about* the rules; trust only what can be
        // reproduced from them.
        if index != build_index(&positive, &negative) {
            return Err(ServeError::Format(
                "antecedent index does not match the rule sections".into(),
            ));
        }
        Ok(Snapshot {
            meta,
            positive,
            negative,
            index,
        })
    }
}

/// Serialize `export` as a NARS v1 snapshot at `path`. Refuses (typed
/// [`ServeError::SnapshotTaxonomyMismatch`]) when the bundle was not
/// mined under `tax`.
pub fn export_snapshot<P: AsRef<Path>>(
    path: P,
    export: &RuleSetExport,
    tax: &Taxonomy,
    snapshot_version: u64,
) -> Result<(), ServeError> {
    check_digest(export.taxonomy_digest, tax)?;
    let bytes = snapshot_bytes(export, snapshot_version)?;
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// The exact bytes [`export_snapshot`] writes.
pub fn snapshot_bytes(
    export: &RuleSetExport,
    snapshot_version: u64,
) -> Result<Vec<u8>, ServeError> {
    if export.positive.len() > u32::MAX as usize || export.negative.len() > u32::MAX as usize {
        return Err(ServeError::Format("more than u32::MAX rules".into()));
    }
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);

    let mut header = Vec::with_capacity(HEADER_LEN);
    put_u64(&mut header, snapshot_version);
    put_u64(&mut header, export.taxonomy_digest);
    put_u64(&mut header, export.num_transactions);
    put_u64(&mut header, export.min_support_count);
    put_u64(&mut header, export.min_ri.to_bits());
    put_u64(&mut header, export.min_confidence.to_bits());
    put_u32(&mut header, export.positive.len() as u32);
    put_u32(&mut header, export.negative.len() as u32);
    write_section(&mut out, b'H', &header)?;

    let mut pos = Vec::new();
    for rule in &export.positive {
        put_itemset(&mut pos, &rule.antecedent)?;
        put_itemset(&mut pos, &rule.consequent)?;
        put_u64(&mut pos, rule.support);
        put_u64(&mut pos, rule.confidence.to_bits());
    }
    write_section(&mut out, b'P', &pos)?;

    let mut neg = Vec::new();
    for rule in &export.negative {
        put_itemset(&mut neg, &rule.antecedent)?;
        put_itemset(&mut neg, &rule.consequent)?;
        put_u64(&mut neg, rule.expected.to_bits());
        put_u64(&mut neg, rule.actual);
        put_u64(&mut neg, rule.ri.to_bits());
    }
    write_section(&mut out, b'N', &neg)?;

    let mut idx = Vec::new();
    let index = build_index(&export.positive, &export.negative);
    put_u32(&mut idx, index.len() as u32);
    for (anchor, postings) in &index {
        put_u32(&mut idx, anchor.0);
        put_u32(&mut idx, postings.len() as u32);
        for &rid in postings {
            put_u32(&mut idx, rid);
        }
    }
    write_section(&mut out, b'X', &idx)?;
    Ok(out)
}

/// The antecedent index: combined rule ids (positives first) posted
/// under the smallest antecedent item id, anchors sorted, postings
/// sorted. Deterministic in the canonical rule order, so writer and
/// loader agree bit-for-bit.
fn build_index(positive: &[Rule], negative: &[NegativeRule]) -> Vec<(ItemId, Vec<u32>)> {
    let mut index: Vec<(ItemId, Vec<u32>)> = Vec::new();
    let mut post = |anchor: Option<&ItemId>, rid: u32| {
        // Antecedents are nonempty by construction; an empty one would
        // have been rejected at decode/export validation.
        let Some(&anchor) = anchor else { return };
        match index.binary_search_by_key(&anchor, |e| e.0) {
            Ok(i) => index[i].1.push(rid),
            Err(i) => index.insert(i, (anchor, vec![rid])),
        }
    };
    for (i, rule) in positive.iter().enumerate() {
        post(rule.antecedent.items().first(), i as u32);
    }
    for (i, rule) in negative.iter().enumerate() {
        post(rule.antecedent.items().first(), (positive.len() + i) as u32);
    }
    for entry in &mut index {
        entry.1.sort_unstable();
    }
    index
}

fn check_digest(recorded: u64, tax: &Taxonomy) -> Result<(), ServeError> {
    let loaded = tax.digest();
    if recorded != loaded {
        return Err(ServeError::SnapshotTaxonomyMismatch {
            snapshot: recorded,
            taxonomy: loaded,
        });
    }
    Ok(())
}

// ---- framing ----

fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_SECTION as usize {
        return Err(ServeError::Format(format!(
            "section '{}' exceeds {MAX_SECTION} bytes",
            tag as char
        )));
    }
    let frame_start = out.len();
    out.push(tag);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    let frame_crc = crc32(&out[frame_start..]);
    put_u32(out, frame_crc);
    out.extend_from_slice(payload);
    Ok(())
}

fn read_section<'a>(r: &mut Reader<'a>, want_tag: u8) -> Result<&'a [u8], ServeError> {
    let frame = r.take(13)?;
    let framed = &frame[..9];
    let frame_crc = u32::from_le_bytes([frame[9], frame[10], frame[11], frame[12]]);
    if crc32(framed) != frame_crc {
        return Err(ServeError::Format(format!(
            "section '{}' frame checksum mismatch",
            want_tag as char
        )));
    }
    let tag = frame[0];
    if tag != want_tag {
        return Err(ServeError::Format(format!(
            "expected section '{}', found '{}'",
            want_tag as char, tag as char
        )));
    }
    let len = u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]);
    if len > MAX_SECTION {
        return Err(ServeError::Format(format!(
            "section '{}' claims {len} bytes (cap {MAX_SECTION})",
            tag as char
        )));
    }
    let payload_crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
    let payload = r.take(len as usize)?;
    if crc32(payload) != payload_crc {
        return Err(ServeError::Format(format!(
            "section '{}' payload checksum mismatch",
            tag as char
        )));
    }
    Ok(payload)
}

// ---- payload decode ----

fn decode_positive(payload: &[u8], n: usize, tax: &Taxonomy) -> Result<Vec<Rule>, ServeError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let antecedent = take_itemset(&mut r, tax)?;
        let consequent = take_itemset(&mut r, tax)?;
        let support = r.u64()?;
        let confidence = f64::from_bits(r.u64()?);
        out.push(Rule {
            antecedent,
            consequent,
            support,
            confidence,
        });
    }
    expect_drained(&r, 'P')?;
    Ok(out)
}

fn decode_negative(
    payload: &[u8],
    n: usize,
    tax: &Taxonomy,
) -> Result<Vec<NegativeRule>, ServeError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let antecedent = take_itemset(&mut r, tax)?;
        let consequent = take_itemset(&mut r, tax)?;
        let expected = f64::from_bits(r.u64()?);
        let actual = r.u64()?;
        let ri = f64::from_bits(r.u64()?);
        out.push(NegativeRule {
            antecedent,
            consequent,
            expected,
            actual,
            ri,
            // Derivations are mine-time provenance; the snapshot carries
            // the serving answer only.
            derivation: None,
        });
    }
    expect_drained(&r, 'N')?;
    Ok(out)
}

fn decode_index(payload: &[u8], num_rules: usize) -> Result<Vec<(ItemId, Vec<u32>)>, ServeError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let entries = r.u32()? as usize;
    let mut out = Vec::with_capacity(entries.min(1 << 20));
    for _ in 0..entries {
        let anchor = ItemId(r.u32()?);
        let count = r.u32()? as usize;
        let mut postings = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let rid = r.u32()?;
            if rid as usize >= num_rules {
                return Err(ServeError::Format(format!(
                    "index references rule {rid} of {num_rules}"
                )));
            }
            postings.push(rid);
        }
        out.push((anchor, postings));
    }
    expect_drained(&r, 'X')?;
    Ok(out)
}

fn expect_drained(r: &Reader<'_>, tag: char) -> Result<(), ServeError> {
    if r.pos != r.bytes.len() {
        return Err(ServeError::Format(format!(
            "section '{tag}' has {} undecoded trailing bytes",
            r.bytes.len() - r.pos
        )));
    }
    Ok(())
}

// ---- primitive encode/decode ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_itemset(out: &mut Vec<u8>, set: &Itemset) -> Result<(), ServeError> {
    if set.is_empty() {
        return Err(ServeError::Format("rule with an empty itemset side".into()));
    }
    if set.len() > u16::MAX as usize {
        return Err(ServeError::Format("itemset longer than u16::MAX".into()));
    }
    out.extend_from_slice(&(set.len() as u16).to_le_bytes());
    for &item in set.items() {
        put_u32(out, item.0);
    }
    Ok(())
}

fn take_itemset(r: &mut Reader<'_>, tax: &Taxonomy) -> Result<Itemset, ServeError> {
    let len = r.u16()? as usize;
    if len == 0 {
        return Err(ServeError::Format("rule with an empty itemset side".into()));
    }
    let mut items = Vec::with_capacity(len);
    let mut prev: Option<u32> = None;
    for _ in 0..len {
        let id = r.u32()?;
        if id as usize >= tax.len() {
            return Err(ServeError::Format(format!(
                "item id {id} out of range for a {}-item taxonomy",
                tax.len()
            )));
        }
        if prev.is_some_and(|p| p >= id) {
            return Err(ServeError::Format("itemset not strictly ascending".into()));
        }
        prev = Some(id);
        items.push(ItemId(id));
    }
    Ok(Itemset::from_sorted(items))
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ServeError::Format("truncated snapshot".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}
