//! # negassoc-serve — rule-set snapshots and the basket-matching server
//!
//! The mining pipeline ends in a one-shot rule list; this crate turns it
//! into a durable, queryable artifact and a long-running service
//! (ROADMAP item 1): *which of the mined positive and negative rules
//! apply to this basket, right now?*
//!
//! Three layers, splittable at each seam:
//!
//! * [`snapshot`] — the immutable **NARS v1** file format: CRC-32-framed
//!   sections (the NADB v2 discipline), a self-describing header whose
//!   taxonomy digest pins the rules to the hierarchy they were mined
//!   under, and an antecedent index keyed by sorted item ids. Built from
//!   a [`negassoc::RuleSetExport`], loaded with full verification.
//! * [`engine`] — taxonomy-expanded matching: a basket containing an
//!   item matches rules over any of the item's ancestor categories.
//!   Ships both the indexed matcher and a deliberately independent
//!   full-scan oracle so CI can diff served answers byte-for-byte.
//! * [`server`] — dependency-free TCP serving: length-prefixed frames, a
//!   worker pool on the `txdb::block` spawn discipline (bounded queue,
//!   `recv_timeout` + token poll, scoped joins), snapshot hot-swap via
//!   an `Arc` pointer flip, graceful drain on [`CancelToken`], and
//!   counters/latency histograms through `obs::Metrics`.
//!
//! [`CancelToken`]: negassoc_txdb::ctrl::CancelToken

pub mod engine;
pub mod error;
pub mod server;
pub mod snapshot;

pub use engine::{answer_basket_line, Matches};
pub use error::ServeError;
pub use server::{request, serve, ServeState, ServeStats, SnapshotCell};
pub use snapshot::{export_snapshot, Snapshot, SnapshotMeta};

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc::{MinerConfig, NegativeMiner, RuleSetExport};
    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::{Taxonomy, TaxonomyBuilder};
    use negassoc_txdb::TransactionDbBuilder;
    use std::path::{Path, PathBuf};

    /// A unique temp path cleaned up on drop.
    struct TempFile(PathBuf);

    impl TempFile {
        fn new(name: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            TempFile(
                std::env::temp_dir()
                    .join(format!("negassoc-serve-{}-{n}-{name}", std::process::id())),
            )
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    /// Mine the crate-doc toy dataset: Ruffles co-occurs with Coke and
    /// (negatively) with Pepsi under a two-root taxonomy.
    fn mined_export() -> (Taxonomy, RuleSetExport) {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("soft drinks");
        let coke = tb.add_child(drinks, "Coke").unwrap();
        let pepsi = tb.add_child(drinks, "Pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let ruffles = tb.add_child(snacks, "Ruffles").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for i in 0..120u32 {
            match i % 4 {
                0 | 1 => db.add([coke, ruffles]),
                2 => db.add([pepsi]),
                _ => db.add([coke]),
            };
        }
        let db = db.build();
        let config = MinerConfig {
            min_support: MinSupport::Fraction(0.15),
            min_ri: 0.3,
            ..MinerConfig::default()
        };
        let outcome = NegativeMiner::new(config).mine(&db, &tax).expect("mine");
        let export = outcome.rule_export(&tax, 0.6, 0.3);
        (tax, export)
    }

    fn other_taxonomy() -> Taxonomy {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("soft drinks");
        tb.add_child(drinks, "Coke").unwrap();
        // One extra leaf: same prefix, different digest.
        tb.add_child(drinks, "Fanta").unwrap();
        tb.build()
    }

    #[test]
    fn snapshot_file_round_trips_bit_exactly() {
        let (tax, export) = mined_export();
        assert!(export.positive.len() + export.negative.len() > 0);
        let file = TempFile::new("roundtrip.nars");
        export_snapshot(file.path(), &export, &tax, 7).expect("export");
        let loaded = Snapshot::load(file.path(), &tax).expect("load");
        assert_eq!(loaded.meta().snapshot_version, 7);
        assert_eq!(loaded.meta().taxonomy_digest, tax.digest());
        assert_eq!(loaded.meta().num_transactions, export.num_transactions);
        assert_eq!(loaded.positive(), &export.positive[..]);
        assert_eq!(loaded.negative().len(), export.negative.len());
        for (got, want) in loaded.negative().iter().zip(&export.negative) {
            assert_eq!(got.antecedent, want.antecedent);
            assert_eq!(got.consequent, want.consequent);
            assert_eq!(got.actual, want.actual);
            assert_eq!(got.expected.to_bits(), want.expected.to_bits());
            assert_eq!(got.ri.to_bits(), want.ri.to_bits());
        }
        // Same export, same bytes: snapshots are deterministic artifacts.
        let a = snapshot::snapshot_bytes(&export, 7).expect("bytes");
        let b = snapshot::snapshot_bytes(&export, 7).expect("bytes");
        assert_eq!(a, b);
    }

    #[test]
    fn export_rejects_taxonomy_mismatch() {
        // Satellite regression: rules mined under taxonomy A must not
        // export or load against taxonomy B.
        let (tax, export) = mined_export();
        let wrong = other_taxonomy();
        let file = TempFile::new("mismatch.nars");

        let err = export_snapshot(file.path(), &export, &wrong, 1).expect_err("must refuse");
        match err {
            ServeError::SnapshotTaxonomyMismatch { snapshot, taxonomy } => {
                assert_eq!(snapshot, tax.digest());
                assert_eq!(taxonomy, wrong.digest());
            }
            other => panic!("want SnapshotTaxonomyMismatch, got {other}"),
        }
        assert!(
            err.to_string().contains("taxonomy mismatch"),
            "message should say what went wrong: {err}"
        );

        // The load path refuses the same pairing.
        export_snapshot(file.path(), &export, &tax, 1).expect("export under the right taxonomy");
        let err = Snapshot::load(file.path(), &wrong).expect_err("load must refuse");
        assert!(matches!(err, ServeError::SnapshotTaxonomyMismatch { .. }));

        // And a mismatched in-memory install is refused too (hot-swap
        // path), leaving the old snapshot serving.
        let snap = std::sync::Arc::new(Snapshot::load(file.path(), &tax).expect("load"));
        let state = ServeState::new(tax.clone(), std::sync::Arc::clone(&snap)).expect("state");
        let err = ServeState::new(wrong, snap).expect_err("state must refuse");
        assert!(matches!(err, ServeError::SnapshotTaxonomyMismatch { .. }));
        let _ = state;
    }

    #[test]
    fn corruption_is_caught_by_the_framing() {
        let (tax, export) = mined_export();
        let bytes = snapshot::snapshot_bytes(&export, 3).expect("bytes");
        // Flipping any single byte must fail verification (try a spread
        // of positions: magic, header, each section).
        for pos in [0, 6, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Snapshot::from_bytes(&bad, &tax).is_err(),
                "byte flip at {pos} went undetected"
            );
        }
        // Truncation at any boundary fails too.
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 1], &tax).is_err());
        assert!(Snapshot::from_bytes(&bytes[..4], &tax).is_err());
    }

    #[test]
    fn indexed_matcher_agrees_with_the_oracle_on_every_basket() {
        let (tax, export) = mined_export();
        let snap = Snapshot::from_export(&export, &tax, 1).expect("snapshot");
        // Every single-item basket and every pair, by name.
        let names: Vec<&str> = ["soft drinks", "Coke", "Pepsi", "snacks", "Ruffles"].to_vec();
        let mut baskets: Vec<String> = names.iter().map(|n| (*n).to_owned()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                baskets.push(format!("{a}, {b}"));
            }
        }
        let mut matched_something = false;
        for basket in &baskets {
            let indexed = answer_basket_line(&tax, &snap, basket, false);
            let oracle = answer_basket_line(&tax, &snap, basket, true);
            assert_eq!(indexed, oracle, "divergence on basket {basket:?}");
            if indexed.lines().count() > 1 {
                matched_something = true;
            }
        }
        assert!(
            matched_something,
            "test data should match at least one rule"
        );
        // A Ruffles basket matches rules written over its ancestors.
        let answer = answer_basket_line(&tax, &snap, "Ruffles, Pepsi", false);
        assert!(answer.starts_with("snapshot 1 basket [Ruffles + Pepsi]"));
        // Unknown items and empty baskets render as error bodies.
        assert!(answer_basket_line(&tax, &snap, "Sprite", false).starts_with("error: unknown item"));
        assert_eq!(
            answer_basket_line(&tax, &snap, " , ", false),
            "error: empty basket\n"
        );
    }
}
