//! Typed errors of the snapshot and serving layer.

use std::fmt;
use std::io;

/// Everything that can go wrong writing, loading, or serving a rule-set
/// snapshot.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying I/O failure (file or socket).
    Io(io::Error),
    /// The bytes are not a valid NARS snapshot (bad magic, checksum
    /// mismatch, truncation, or inconsistent internal structure).
    Format(String),
    /// The snapshot's rules were mined under a different taxonomy than
    /// the one loaded: its baked-in item ids would silently mis-expand
    /// categories at query time, so both the export and the load path
    /// refuse the pairing outright.
    SnapshotTaxonomyMismatch {
        /// Digest recorded in the snapshot (the mine-time hierarchy).
        snapshot: u64,
        /// Digest of the taxonomy presented now.
        taxonomy: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Format(detail) => write!(f, "invalid snapshot: {detail}"),
            ServeError::SnapshotTaxonomyMismatch { snapshot, taxonomy } => write!(
                f,
                "snapshot taxonomy mismatch: rules were mined under taxonomy \
                 digest {snapshot:#018x}, but the loaded taxonomy has digest \
                 {taxonomy:#018x}; re-mine or load the matching taxonomy"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
