//! The paper's evaluation datasets (Table 4) and scaled variants.
//!
//! Two gaps in the published table (`|T|` and `R` are illegible in the
//! available text) are filled with `|T| = 10` and `R = 100`; see DESIGN.md
//! "Paper ambiguities" for the derivation (R must be large enough that
//! root-category pairs sit near the support thresholds of the sweep, or
//! the generalized itemset counts explode far beyond the paper's §3.2
//! figures). Everything else matches Table 4 exactly.

use crate::params::GenParams;

/// The "Short" dataset: fan-out 9 — a shallow, bushy taxonomy.
pub fn short() -> GenParams {
    GenParams {
        num_transactions: 50_000,
        avg_transaction_len: 10.0, // |T|: OCR gap, see module docs
        avg_cluster_size: 5.0,
        avg_itemset_size: 5.0,
        avg_itemsets_per_cluster: 3.0,
        num_clusters: 2_000,
        num_items: 8_000,
        num_roots: 100, // R: OCR gap, see module docs
        fanout: 9.0,
        corruption_mean: 0.5,
        corruption_variance: 0.1,
        seed: 0x5601,
    }
}

/// The "Tall" dataset: fan-out 3 — a deep, narrow taxonomy over the same
/// items and transactions.
pub fn tall() -> GenParams {
    GenParams {
        fanout: 3.0,
        seed: 0x7a11,
        ..short()
    }
}

/// `preset` scaled to `num_transactions` transactions — same shape,
/// laptop-test sized.
///
/// The item universe `N` is kept: the ratio between a fractional minimum
/// support and a category's support is `|T|·F^level / (N·s)`, independent
/// of `|D|`, so keeping `N` preserves which taxonomy levels clear a given
/// support threshold. The cluster count shrinks linearly with `|D|` so the
/// *per-pattern* transaction count (≈ `|D|/|L|`, 25 at full scale) is
/// preserved too.
pub fn scaled(preset: GenParams, num_transactions: usize) -> GenParams {
    let ratio = (num_transactions as f64 / preset.num_transactions as f64).min(1.0);
    GenParams {
        num_transactions,
        num_clusters: ((preset.num_clusters as f64 * ratio) as usize).max(10),
        ..preset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        let s = short();
        assert_eq!(s.num_transactions, 50_000);
        assert_eq!(s.num_clusters, 2_000);
        assert_eq!(s.num_items, 8_000);
        assert_eq!(s.avg_cluster_size, 5.0);
        assert_eq!(s.avg_itemset_size, 5.0);
        assert_eq!(s.avg_itemsets_per_cluster, 3.0);
        assert_eq!(s.fanout, 9.0);
        let t = tall();
        assert_eq!(t.fanout, 3.0);
        assert_eq!(t.num_items, s.num_items);
        assert_eq!(t.num_transactions, s.num_transactions);
        s.validate();
        t.validate();
    }

    #[test]
    fn scaled_preserves_shape() {
        let sc = scaled(short(), 2_000);
        assert_eq!(sc.num_transactions, 2_000);
        // N is preserved (support ratios are |D|-independent, module docs);
        // clusters shrink linearly so each pattern keeps ~25 transactions.
        assert_eq!(sc.num_items, 8_000);
        assert_eq!(sc.num_clusters, 80);
        assert_eq!(sc.fanout, 9.0);
        sc.validate();
    }

    #[test]
    fn scaling_up_does_not_inflate() {
        let sc = scaled(short(), 100_000);
        assert_eq!(sc.num_items, 8_000);
        assert_eq!(sc.num_clusters, 2_000);
        sc.validate();
    }
}
