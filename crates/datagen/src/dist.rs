//! The random distributions the §3.1 model draws from, implemented over any
//! [`rand::RngExt`]: Poisson (Knuth's product method), exponential (inverse
//! CDF) and normal (Box–Muller). Property tests pin their first two
//! moments.

use rand::RngExt;

/// Sample a Poisson variate with the given `mean` (λ).
///
/// Knuth's product-of-uniforms method: O(λ) per draw, exact, and fine for
/// the single-digit means of Table 3/4. For λ > ~30 it switches to a
/// normal approximation (rounded, clamped at zero) to stay O(1).
///
/// # Panics
/// Panics when `mean` is negative or not finite.
pub fn poisson<R: RngExt + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "invalid Poisson mean {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let v = normal(rng, mean, mean.sqrt()).round();
        return if v < 0.0 { 0 } else { v as u64 };
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample an exponential variate with the given `mean` (so rate 1/mean).
///
/// # Panics
/// Panics when `mean` is not positive and finite.
pub fn exponential<R: RngExt + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "invalid exponential mean {mean}"
    );
    // 1 - u is in (0, 1], so ln is finite.
    -mean * (1.0 - rng.random::<f64>()).ln()
}

/// Sample a normal variate via Box–Muller.
///
/// # Panics
/// Panics when `std_dev` is negative or either parameter is not finite.
pub fn normal<R: RngExt + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
        "invalid normal parameters ({mean}, {std_dev})"
    );
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// A discrete distribution over weights, sampled by inverse CDF.
///
/// This is how clusters and itemsets are picked "according to their weight"
/// in §3.1 (weights are exponential draws normalized to sum 1; the
/// normalization is implicit here — only ratios matter).
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Build from non-negative weights with a positive sum.
    ///
    /// # Panics
    /// Panics on an empty list, a negative/non-finite weight, or an
    /// all-zero total.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "weights must not all be zero");
        Self { cumulative }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when empty (cannot occur for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw an index proportionally to its weight.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let Some(&total) = self.cumulative.last() else {
            return 0; // unreachable: constructors reject empty weights
        };
        let x = rng.random::<f64>() * total;
        // partition_point: first index with cumulative > x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const N: usize = 40_000;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn poisson_moments() {
        let mut r = rng();
        for lambda in [0.5, 3.0, 9.0] {
            let samples: Vec<f64> = (0..N).map(|_| poisson(&mut r, lambda) as f64).collect();
            let (m, v) = mean_var(&samples);
            assert!(
                (m - lambda).abs() < 0.1 * lambda.max(1.0),
                "mean {m} vs {lambda}"
            );
            assert!(
                (v - lambda).abs() < 0.15 * lambda.max(1.0),
                "var {v} vs {lambda}"
            );
        }
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let samples: Vec<f64> = (0..N).map(|_| poisson(&mut r, 100.0) as f64).collect();
        let (m, v) = mean_var(&samples);
        assert!((m - 100.0).abs() < 2.0);
        assert!((v - 100.0).abs() < 10.0);
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn exponential_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..N).map(|_| exponential(&mut r, 2.0)).collect();
        let (m, v) = mean_var(&samples);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
        assert!((v - 4.0).abs() < 0.5, "var {v}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..N).map(|_| normal(&mut r, 0.5, 0.1)).collect();
        let (m, v) = mean_var(&samples);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!((v - 0.01).abs() < 0.002, "var {v}");
    }

    #[test]
    fn weighted_index_respects_ratios() {
        let mut r = rng();
        let w = WeightedIndex::new(&[1.0, 3.0, 0.0, 6.0]);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        let mut counts = [0usize; 4];
        for _ in 0..N {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[2], 0);
        let total = N as f64;
        assert!((counts[0] as f64 / total - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / total - 0.3).abs() < 0.02);
        assert!((counts[3] as f64 / total - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "invalid Poisson mean")]
    fn poisson_rejects_negative_mean() {
        poisson(&mut rng(), -1.0);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn weighted_index_rejects_zero_total() {
        WeightedIndex::new(&[0.0, 0.0]);
    }
}
