//! The classic flat Quest-style generator of Agrawal & Srikant (VLDB '94),
//! without taxonomy structure: potentially-maximal large itemsets drawn
//! over the item universe, exponential weights, per-itemset corruption.
//! Used as a taxonomy-free cross-check for the Apriori substrate and for
//! the counting-backend ablation (patterns without category structure).

use crate::dist::{exponential, normal, poisson, WeightedIndex};
use negassoc_taxonomy::ItemId;
use negassoc_txdb::{TransactionDb, TransactionDbBuilder};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the flat generator (names follow AgrSri94: T10.I4.D100K
/// means `avg_transaction_len` 10, `avg_pattern_len` 4, 100k transactions).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuestParams {
    /// `|D|` — number of transactions.
    pub num_transactions: usize,
    /// `|T|` — average transaction length.
    pub avg_transaction_len: f64,
    /// `|I|` — average pattern length.
    pub avg_pattern_len: f64,
    /// `|L|` — number of potentially large itemsets.
    pub num_patterns: usize,
    /// `N` — number of items.
    pub num_items: usize,
    /// Corruption mean (paper: 0.5).
    pub corruption_mean: f64,
    /// Corruption variance (paper: 0.1).
    pub corruption_variance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuestParams {
    fn default() -> Self {
        Self {
            num_transactions: 10_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 500,
            num_items: 1_000,
            corruption_mean: 0.5,
            corruption_variance: 0.1,
            seed: 424242,
        }
    }
}

/// Generate a flat transaction database.
pub fn generate_quest(params: &QuestParams) -> TransactionDb {
    assert!(params.num_items > 0, "num_items must be positive");
    assert!(params.num_patterns > 0, "num_patterns must be positive");
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let corruption_std = params.corruption_variance.sqrt();

    // Patterns: sizes Poisson(|I|), members uniform; successive patterns
    // share a fraction of items with the previous one in AgrSri94 — we use
    // independent draws, which preserves the skew properties the substrate
    // tests need (documented simplification).
    let mut patterns: Vec<(Vec<ItemId>, f64)> = Vec::with_capacity(params.num_patterns);
    let mut weights = Vec::with_capacity(params.num_patterns);
    for _ in 0..params.num_patterns {
        let size =
            (poisson(&mut rng, params.avg_pattern_len).max(1) as usize).min(params.num_items);
        let mut items = Vec::with_capacity(size);
        while items.len() < size {
            let it = ItemId(
                (rng.random::<f64>() * params.num_items as f64) as u32 % params.num_items as u32,
            );
            if !items.contains(&it) {
                items.push(it);
            }
        }
        items.sort_unstable();
        let corruption = normal(&mut rng, params.corruption_mean, corruption_std).clamp(0.0, 0.999);
        patterns.push((items, corruption));
        weights.push(exponential(&mut rng, 1.0));
    }
    let choose = WeightedIndex::new(&weights);

    let mut b = TransactionDbBuilder::with_capacity(
        params.num_transactions,
        params.avg_transaction_len.ceil() as usize,
    );
    let mut basket: Vec<ItemId> = Vec::new();
    for _ in 0..params.num_transactions {
        let target = poisson(&mut rng, params.avg_transaction_len).max(1) as usize;
        basket.clear();
        let mut stalls = 0;
        while basket.len() < target && stalls < 50 {
            let (items, corruption) = &patterns[choose.sample(&mut rng)];
            let before = basket.len();
            for &item in items {
                if rng.random::<f64>() < *corruption {
                    continue;
                }
                if !basket.contains(&item) {
                    basket.push(item);
                }
            }
            if basket.len() == before {
                stalls += 1;
            }
        }
        b.add(basket.iter().copied());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_txdb::stats;

    #[test]
    fn generates_shape_and_is_deterministic() {
        let p = QuestParams {
            num_transactions: 1500,
            num_items: 200,
            ..QuestParams::default()
        };
        let a = generate_quest(&p);
        let b = generate_quest(&p);
        assert_eq!(a.len(), 1500);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.items(), y.items());
        }
        let (s, counts) = stats::collect(&a).unwrap();
        assert!(s.avg_len > 4.0 && s.avg_len < 18.0);
        assert!(counts.len() <= 200);
    }

    #[test]
    fn patterns_induce_frequent_cooccurrence() {
        // Some pair must co-occur far more often than uniform independence
        // would allow: with 200 items and ~10-item baskets, independent
        // pairs appear ~ n * (10/200)^2 = 0.25% of baskets; patterns push
        // the hottest pair well above that.
        let p = QuestParams {
            num_transactions: 2000,
            num_items: 200,
            ..QuestParams::default()
        };
        let db = generate_quest(&p);
        let large = negassoc_apriori_stub::top_pair_count(&db);
        assert!(large > 40, "hottest pair only {large}");
    }

    /// Tiny local helper (avoids a dev-dependency cycle with the apriori
    /// crate): count the hottest pair by brute force on a sample.
    mod negassoc_apriori_stub {
        use negassoc_taxonomy::fxhash::FxHashMap;
        use negassoc_txdb::TransactionDb;

        pub fn top_pair_count(db: &TransactionDb) -> u64 {
            let mut counts: FxHashMap<(u32, u32), u64> = FxHashMap::default();
            for t in db.iter() {
                let items = t.items();
                for i in 0..items.len() {
                    for j in i + 1..items.len() {
                        *counts.entry((items[i].0, items[j].0)).or_insert(0) += 1;
                    }
                }
            }
            counts.values().copied().max().unwrap_or(0)
        }
    }
}
