//! Shard-split writer for test fixtures: turn any database (normally a
//! freshly generated one) into the on-disk sharded layout —
//! `{stem}-shard-{i:03}.nadb` files plus the checksummed manifest — that
//! [`negassoc_txdb::shard::ShardedSource`] mines. The chaos suite and the
//! CI sharded smoke stage build their corrupted-shard fixtures through
//! this instead of hand-rolling manifests.

use negassoc_txdb::shard::{write_sharded, ShardManifest};
use negassoc_txdb::TransactionSource;
use std::io;
use std::path::Path;

/// Split `source` into `num_shards` NADB v2 shard files next to
/// `manifest_path` and write the manifest there. Delegates to
/// [`negassoc_txdb::shard::write_sharded`]; TIDs are preserved, shard
/// sizes differ by at most one transaction, and replaying the shards in
/// manifest order reproduces `source` exactly.
pub fn write_sharded_fixture<S: TransactionSource + ?Sized, P: AsRef<Path>>(
    source: &S,
    manifest_path: P,
    num_shards: usize,
) -> io::Result<ShardManifest> {
    write_sharded(source, manifest_path, num_shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, presets};
    use negassoc_txdb::shard::ShardedSource;

    #[test]
    fn generated_dataset_round_trips_through_shards() {
        let mut params = presets::short();
        params.num_transactions = 50;
        let ds = generate(&params);

        let dir = std::env::temp_dir().join(format!(
            "negassoc-datagen-shard-{}-{}",
            std::process::id(),
            params.seed
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest_path = dir.join("fixture.manifest");
        let manifest = write_sharded_fixture(&ds.db, &manifest_path, 4).unwrap();
        assert_eq!(manifest.len(), 4);
        assert_eq!(manifest.total_transactions(), ds.db.len() as u64);

        let src = ShardedSource::open(&manifest_path).unwrap();
        let collect = |s: &dyn TransactionSource| {
            let mut v = Vec::new();
            s.pass(&mut |t| v.push((t.tid(), t.items().to_vec())))
                .unwrap();
            v
        };
        assert_eq!(collect(&src), collect(&ds.db));
        std::fs::remove_dir_all(&dir).ok();
    }
}
