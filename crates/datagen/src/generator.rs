//! Transaction synthesis (§3.1): draw a Poisson length, then stamp weighted
//! pattern itemsets into the basket — dropping items "as long as a
//! uniformly generated random number between 0 and 1 is less than the
//! corruption level" — until the basket is full. Transactions contain only
//! leaf items.

use crate::nested_logit::{build_model, PatternModel};
use crate::params::GenParams;
use crate::taxgen::generate_taxonomy;
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::{TransactionDb, TransactionDbBuilder};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A generated dataset: the taxonomy and the transactions over its leaves.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The item taxonomy.
    pub taxonomy: Taxonomy,
    /// The transaction database.
    pub db: TransactionDb,
    /// The parameters that produced it.
    pub params: GenParams,
}

/// Generate a full dataset from `params` (deterministic in `params.seed`).
pub fn generate(params: &GenParams) -> Dataset {
    params.validate();
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let taxonomy = generate_taxonomy(&mut rng, params);
    let model = build_model(&mut rng, &taxonomy, params);
    let db = generate_transactions(&mut rng, &model, params);
    Dataset {
        taxonomy,
        db,
        params: *params,
    }
}

/// Generate only the transactions, given a prebuilt pattern model.
pub fn generate_transactions<R: RngExt + ?Sized>(
    rng: &mut R,
    model: &PatternModel,
    params: &GenParams,
) -> TransactionDb {
    let mut b = TransactionDbBuilder::with_capacity(
        params.num_transactions,
        params.avg_transaction_len.ceil() as usize,
    );
    let mut basket: Vec<ItemId> = Vec::new();
    for _ in 0..params.num_transactions {
        let target = crate::dist::poisson(rng, params.avg_transaction_len).max(1) as usize;
        basket.clear();
        // Guard against patterns that corrupt away entirely: bail out after
        // enough fruitless draws rather than spinning.
        let mut stalls = 0;
        while basket.len() < target && stalls < 50 {
            let pattern = model.draw(rng);
            let before = basket.len();
            for &item in &pattern.items {
                // Drop items while the coin keeps landing under the
                // pattern's corruption level.
                if rng.random::<f64>() < pattern.corruption {
                    continue;
                }
                if !basket.contains(&item) {
                    basket.push(item);
                }
            }
            if basket.len() == before {
                stalls += 1;
            }
        }
        b.add(basket.iter().copied());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_txdb::stats;

    fn small_params() -> GenParams {
        GenParams {
            num_transactions: 2000,
            num_items: 300,
            num_roots: 5,
            num_clusters: 50,
            avg_transaction_len: 8.0,
            ..GenParams::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let ds = generate(&small_params());
        assert_eq!(ds.db.len(), 2000);
        assert_eq!(ds.taxonomy.num_leaves(), 300);
        let (s, _) = stats::collect(&ds.db).unwrap();
        // Average length lands near |T| (corruption and dedup pull it
        // around, so the tolerance is loose).
        assert!(s.avg_len > 3.0 && s.avg_len < 16.0, "avg {}", s.avg_len);
    }

    #[test]
    fn transactions_contain_only_leaves() {
        let ds = generate(&small_params());
        for t in ds.db.iter().take(200) {
            for &it in t.items() {
                assert!(ds.taxonomy.is_leaf(it));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_params());
        let b = generate(&small_params());
        assert_eq!(a.db.len(), b.db.len());
        for (x, y) in a.db.iter().zip(b.db.iter()) {
            assert_eq!(x.items(), y.items());
        }
        let c = generate(&GenParams {
            seed: 1,
            ..small_params()
        });
        let differs =
            a.db.iter()
                .zip(c.db.iter())
                .any(|(x, y)| x.items() != y.items());
        assert!(differs);
    }

    #[test]
    fn buying_patterns_are_skewed() {
        // The nested-logit model must produce correlated baskets: the most
        // frequent pair should be far above the uniform-independence
        // baseline.
        let ds = generate(&small_params());
        let (_, counts) = stats::collect(&ds.db).unwrap();
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let mean = counts.iter().copied().sum::<u64>() as f64 / counts.len().max(1) as f64;
        assert!(max > 4.0 * mean, "max {max} mean {mean}");
    }
}
