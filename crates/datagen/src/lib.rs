//! Synthetic retail-transaction generation.
//!
//! The paper evaluates on synthetic data "generated such that it simulates
//! customer buying pattern in a retail market environment" (§3.1): a random
//! taxonomy with Poisson fan-out, a *nested-logit* model of consumer choice
//! (pick a cluster of categories, then an itemset of concrete brands under
//! it), exponential cluster/itemset weights, and per-itemset corruption.
//! This crate reimplements that generator from the published description:
//!
//! * [`dist`] — the Poisson / exponential / normal samplers the model needs
//!   (implemented here; `rand_distr` is not on the approved dependency
//!   list and these are small),
//! * [`params::GenParams`] — the Table 3 parameter set,
//! * [`taxgen`] — Poisson-fanout taxonomy generation,
//! * [`nested_logit`] — clusters, per-cluster itemsets, and weights,
//! * [`generator`] — transaction synthesis,
//! * [`quest`] — the flat Quest-style generator of Agrawal & Srikant
//!   (VLDB '94) as a taxonomy-free cross-check,
//! * [`presets`] — the paper's "Short" (fanout 9) and "Tall" (fanout 3)
//!   datasets (Table 4), plus scaled-down variants for tests.
//!
//! Generation is fully deterministic under [`params::GenParams::seed`].

pub mod dist;
pub mod generator;
pub mod nested_logit;
pub mod params;
pub mod presets;
pub mod quest;
pub mod sharding;
pub mod taxgen;

pub use generator::{generate, Dataset};
pub use params::GenParams;
