//! The generator's parameter set — Table 3 of the paper, with the same
//! names spelled out.

/// Parameters of the §3.1 synthetic-data generator (paper Table 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenParams {
    /// `|D|` — number of transactions.
    pub num_transactions: usize,
    /// `|T|` — average transaction size (Poisson mean).
    pub avg_transaction_len: f64,
    /// `|C|` — average size of the maximal potentially large *clusters*
    /// (Poisson mean).
    pub avg_cluster_size: f64,
    /// `|I|` — average size of the maximal potentially large itemsets
    /// (Poisson mean).
    pub avg_itemset_size: f64,
    /// `|S|` — average number of itemsets per cluster (Poisson mean).
    pub avg_itemsets_per_cluster: f64,
    /// `|L|` — number of maximal potentially large clusters.
    pub num_clusters: usize,
    /// `N` — number of (leaf) items.
    pub num_items: usize,
    /// `R` — number of taxonomy roots.
    pub num_roots: usize,
    /// `F` — average fan-out of the taxonomy (Poisson mean).
    pub fanout: f64,
    /// Mean of the per-itemset corruption level (paper: 0.5).
    pub corruption_mean: f64,
    /// Variance of the corruption level (paper: 0.1).
    pub corruption_variance: f64,
    /// RNG seed; every artifact of the generator is deterministic in it.
    pub seed: u64,
}

impl Default for GenParams {
    /// A small laptop-friendly default (not a paper preset; see
    /// [`crate::presets`] for those).
    fn default() -> Self {
        Self {
            num_transactions: 10_000,
            avg_transaction_len: 10.0,
            avg_cluster_size: 5.0,
            avg_itemset_size: 5.0,
            avg_itemsets_per_cluster: 3.0,
            num_clusters: 400,
            num_items: 1_000,
            num_roots: 10,
            fanout: 5.0,
            corruption_mean: 0.5,
            corruption_variance: 0.1,
            seed: 20260708,
        }
    }
}

impl GenParams {
    /// Sanity-check the parameter combination.
    ///
    /// # Panics
    /// Panics with a descriptive message on nonsensical values; the
    /// generator calls this before doing any work.
    pub fn validate(&self) {
        assert!(self.num_items > 0, "num_items must be positive");
        assert!(self.num_roots > 0, "num_roots must be positive");
        assert!(
            self.num_roots <= self.num_items,
            "more roots than items ({} > {})",
            self.num_roots,
            self.num_items
        );
        assert!(self.fanout >= 1.0, "fanout must be at least 1");
        assert!(
            self.avg_transaction_len > 0.0,
            "avg transaction length must be positive"
        );
        assert!(
            self.avg_cluster_size > 0.0,
            "avg cluster size must be positive"
        );
        assert!(
            self.avg_itemset_size > 0.0,
            "avg itemset size must be positive"
        );
        assert!(
            self.avg_itemsets_per_cluster > 0.0,
            "itemsets per cluster must be positive"
        );
        assert!(self.num_clusters > 0, "num_clusters must be positive");
        assert!(
            (0.0..=1.0).contains(&self.corruption_mean),
            "corruption mean must be in [0, 1]"
        );
        assert!(
            self.corruption_variance >= 0.0,
            "corruption variance must be non-negative"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        GenParams::default().validate();
    }

    #[test]
    #[should_panic(expected = "more roots than items")]
    fn rejects_roots_exceeding_items() {
        GenParams {
            num_roots: 11,
            num_items: 10,
            ..GenParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn rejects_tiny_fanout() {
        GenParams {
            fanout: 0.5,
            ..GenParams::default()
        }
        .validate();
    }
}
