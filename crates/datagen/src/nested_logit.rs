//! The nested-logit consumer-choice model of §3.1.
//!
//! "Consumers first decide on which category to buy and then decide which
//! particular brand to buy within that category." Concretely:
//!
//! * *clusters* of categories are drawn from the level one above the
//!   leaves — sizes Poisson(`|C|`), members uniform over those categories,
//!   weights Exp(1) (normalized implicitly by [`WeightedIndex`]);
//! * each cluster owns Poisson(`|S|`) *potentially maximal large itemsets*
//!   whose members are leaves under the cluster's categories — sizes
//!   Poisson(`|I|`), weights Exp(1) within the cluster;
//! * every itemset carries a fixed *corruption level* drawn from
//!   Normal(0.5, variance 0.1), clamped to `[0, 1)`.

use crate::dist::{exponential, normal, poisson, WeightedIndex};
use crate::params::GenParams;
use negassoc_taxonomy::{ItemId, Taxonomy};
use rand::RngExt;

/// One potentially-maximal large itemset.
#[derive(Clone, Debug)]
pub struct PatternItemset {
    /// Leaf items of the pattern.
    pub items: Vec<ItemId>,
    /// Probability that each item is *dropped* when the pattern is stamped
    /// into a transaction (the paper's corruption level).
    pub corruption: f64,
}

/// One cluster of categories with its itemsets.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// The categories (taxonomy level above the leaves) the cluster spans.
    pub categories: Vec<ItemId>,
    /// The cluster's patterns.
    pub itemsets: Vec<PatternItemset>,
    /// Weighted choice over `itemsets`.
    pub itemset_weights: WeightedIndex,
}

/// The full pattern model: clusters plus the weighted choice over them.
#[derive(Clone, Debug)]
pub struct PatternModel {
    /// All clusters (non-empty).
    pub clusters: Vec<Cluster>,
    /// Weighted choice over `clusters`.
    pub cluster_weights: WeightedIndex,
}

impl PatternModel {
    /// Draw one pattern itemset: cluster by weight, then itemset by weight.
    pub fn draw<'a, R: RngExt + ?Sized>(&'a self, rng: &mut R) -> &'a PatternItemset {
        let cluster = &self.clusters[self.cluster_weights.sample(rng)];
        &cluster.itemsets[cluster.itemset_weights.sample(rng)]
    }
}

/// The categories "one level above the leaf level": parents of leaves.
pub fn leaf_parents(tax: &Taxonomy) -> Vec<ItemId> {
    let mut parents: Vec<ItemId> = tax.leaves().filter_map(|l| tax.parent(l)).collect();
    parents.sort_unstable();
    parents.dedup();
    parents
}

/// Build the pattern model for `tax` under `params`.
///
/// # Panics
/// Panics when the taxonomy has no leaves (nothing to sell).
pub fn build_model<R: RngExt + ?Sized>(
    rng: &mut R,
    tax: &Taxonomy,
    params: &GenParams,
) -> PatternModel {
    params.validate();
    let parents = leaf_parents(tax);
    // A flat taxonomy (leaves are roots) has no leaf parents; treat each
    // leaf as its own "category" so the model still works.
    let categories: Vec<ItemId> = if parents.is_empty() {
        tax.leaves().collect()
    } else {
        parents
    };
    assert!(!categories.is_empty(), "taxonomy has no items");
    let corruption_std = params.corruption_variance.sqrt();

    let mut clusters = Vec::with_capacity(params.num_clusters);
    let mut weights = Vec::with_capacity(params.num_clusters);
    while clusters.len() < params.num_clusters {
        // Cluster membership: Poisson(|C|) categories, uniform draws.
        let size = (poisson(rng, params.avg_cluster_size).max(1) as usize).min(categories.len());
        let mut members = Vec::with_capacity(size);
        while members.len() < size {
            let c = categories
                [(rng.random::<f64>() * categories.len() as f64) as usize % categories.len()];
            if !members.contains(&c) {
                members.push(c);
            }
        }
        // Candidate leaf pool: children of the cluster's categories (the
        // categories themselves when the taxonomy is flat).
        let mut pool: Vec<ItemId> = Vec::new();
        for &cat in &members {
            if tax.is_leaf(cat) {
                pool.push(cat);
            } else {
                pool.extend(
                    tax.children(cat)
                        .iter()
                        .copied()
                        .filter(|&c| tax.is_leaf(c)),
                );
            }
        }
        pool.sort_unstable();
        pool.dedup();
        if pool.is_empty() {
            // A cluster of categories whose children are all internal can
            // occur in deep taxonomies; redraw.
            continue;
        }

        // Itemsets of the cluster.
        let n_sets = poisson(rng, params.avg_itemsets_per_cluster).max(1) as usize;
        let mut itemsets = Vec::with_capacity(n_sets);
        let mut iw = Vec::with_capacity(n_sets);
        for _ in 0..n_sets {
            let size = (poisson(rng, params.avg_itemset_size).max(1) as usize).min(pool.len());
            let mut items = Vec::with_capacity(size);
            while items.len() < size {
                let it = pool[(rng.random::<f64>() * pool.len() as f64) as usize % pool.len()];
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            items.sort_unstable();
            let corruption = normal(rng, params.corruption_mean, corruption_std).clamp(0.0, 0.999);
            itemsets.push(PatternItemset { items, corruption });
            iw.push(exponential(rng, 1.0));
        }
        clusters.push(Cluster {
            categories: members,
            itemset_weights: WeightedIndex::new(&iw),
            itemsets,
        });
        weights.push(exponential(rng, 1.0));
    }
    PatternModel {
        cluster_weights: WeightedIndex::new(&weights),
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxgen::generate_taxonomy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(num_items: usize, fanout: f64) -> (Taxonomy, PatternModel, GenParams) {
        let params = GenParams {
            num_items,
            num_roots: 4,
            fanout,
            num_clusters: 30,
            ..GenParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let tax = generate_taxonomy(&mut rng, &params);
        let model = build_model(&mut rng, &tax, &params);
        (tax, model, params)
    }

    #[test]
    fn model_shape() {
        let (tax, model, params) = setup(200, 4.0);
        assert_eq!(model.clusters.len(), params.num_clusters);
        for cluster in &model.clusters {
            assert!(!cluster.categories.is_empty());
            assert!(!cluster.itemsets.is_empty());
            for set in &cluster.itemsets {
                assert!(!set.items.is_empty());
                assert!((0.0..1.0).contains(&set.corruption));
                // All pattern items are leaves.
                for &it in &set.items {
                    assert!(tax.is_leaf(it));
                }
                // Sorted, distinct.
                assert!(set.items.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn cluster_members_are_leaf_parents() {
        let (tax, model, _) = setup(200, 4.0);
        let parents = leaf_parents(&tax);
        for cluster in &model.clusters {
            for &cat in &cluster.categories {
                assert!(parents.contains(&cat));
            }
        }
    }

    #[test]
    fn draws_follow_weights_and_terminate() {
        let (_tax, model, _) = setup(100, 3.0);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            let p = model.draw(&mut rng);
            assert!(!p.items.is_empty());
        }
    }

    #[test]
    fn flat_taxonomy_falls_back_to_leaves_as_categories() {
        let mut b = negassoc_taxonomy::TaxonomyBuilder::new();
        for i in 0..20 {
            b.add_root(&format!("item{i}"));
        }
        let tax = b.build();
        let params = GenParams {
            num_items: 20,
            num_roots: 20,
            num_clusters: 5,
            ..GenParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let model = build_model(&mut rng, &tax, &params);
        assert_eq!(model.clusters.len(), 5);
    }
}
