//! Random taxonomy generation (§3.1): "For any internal node, the number of
//! children are picked from a Poisson distribution with mean set to F. This
//! process is [repeated] starting from the root level... until there are no
//! more items."
//!
//! The concrete construction: starting from `R` root categories, each
//! frontier node draws `max(1, Poisson(F))` children, level by level. When
//! the next level would reach the `N`-leaf budget, the remaining leaves are
//! distributed over the current frontier (round-robin over the same Poisson
//! draws) and generation stops. The result always has exactly `N` leaves
//! and every internal node has at least one child.

use crate::dist::poisson;
use crate::params::GenParams;
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};
use rand::RngExt;

/// Generate a taxonomy with `params.num_items` leaves.
pub fn generate_taxonomy<R: RngExt + ?Sized>(rng: &mut R, params: &GenParams) -> Taxonomy {
    params.validate();
    let n = params.num_items;
    let f = params.fanout;
    let mut b = TaxonomyBuilder::with_capacity(n * 2);

    let roots: Vec<ItemId> = (0..params.num_roots)
        .map(|i| b.add_root(&format!("cat-{i}")))
        .collect();
    if n == params.num_roots {
        // Degenerate: the roots themselves are the leaf items.
        return b.build();
    }

    let mut frontier = roots;
    let mut category_counter = frontier.len();
    let mut leaf_counter = 0usize;
    loop {
        // Draw this level's fan-outs.
        let fanouts: Vec<usize> = frontier
            .iter()
            .map(|_| poisson(rng, f).max(1) as usize)
            .collect();
        let next_size: usize = fanouts.iter().sum();
        // If one more internal level would meet or exceed the leaf budget,
        // emit leaves instead and stop.
        if next_size >= n - leaf_counter {
            let remaining = n - leaf_counter;
            // Distribute the remaining leaves over the frontier,
            // proportional to the drawn fan-outs but with at least one leaf
            // per parent so no category ends up childless. The frontier is
            // strictly smaller than `remaining` (each level only became
            // internal because it was smaller than the leaf budget), so a
            // minimum of one per parent always fits.
            debug_assert!(frontier.len() <= remaining);
            let mut quota: Vec<usize> = fanouts.iter().map(|&c| c.clamp(1, remaining)).collect();
            let mut total: usize = quota.iter().sum();
            // Greedy trim from the end, never below one.
            'trim: while total > remaining {
                let before = total;
                for q in quota.iter_mut().rev() {
                    if total == remaining {
                        break 'trim;
                    }
                    if *q > 1 {
                        *q -= 1;
                        total -= 1;
                    }
                }
                assert!(total < before, "leaf distribution cannot converge");
            }
            for (parent, q) in frontier.iter().zip(&quota) {
                for _ in 0..*q {
                    b.add_child(*parent, &format!("item-{leaf_counter}"))
                        // negassoc-lint: allow(L001) -- "item-N" names are fresh by construction
                        .expect("generated names are unique");
                    leaf_counter += 1;
                }
            }
            debug_assert_eq!(leaf_counter, n);
            break;
        }
        // Otherwise this level is internal categories.
        let mut next = Vec::with_capacity(next_size);
        for (parent, c) in frontier.iter().zip(&fanouts) {
            for _ in 0..*c {
                let id = b
                    .add_child(*parent, &format!("cat-{category_counter}"))
                    // negassoc-lint: allow(L001) -- "cat-N" names are fresh by construction
                    .expect("generated names are unique");
                category_counter += 1;
                next.push(id);
            }
        }
        frontier = next;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen(num_items: usize, num_roots: usize, fanout: f64, seed: u64) -> Taxonomy {
        let params = GenParams {
            num_items,
            num_roots,
            fanout,
            ..GenParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_taxonomy(&mut rng, &params)
    }

    #[test]
    fn exact_leaf_count() {
        for (n, r, f) in [(100, 5, 3.0), (1000, 10, 9.0), (50, 1, 2.0), (8, 8, 5.0)] {
            let t = gen(n, r, f, 7);
            assert_eq!(t.num_leaves(), n, "n={n} r={r} f={f}");
            assert_eq!(t.roots().len(), r);
        }
    }

    #[test]
    fn higher_fanout_means_shallower_trees() {
        // The paper's "Short" (F=9) vs "Tall" (F=3) distinction.
        let short = gen(2000, 20, 9.0, 11);
        let tall = gen(2000, 20, 3.0, 11);
        assert!(
            tall.max_depth() > short.max_depth(),
            "tall {} vs short {}",
            tall.max_depth(),
            short.max_depth()
        );
    }

    #[test]
    fn every_internal_node_has_children_and_leaves_are_items() {
        let t = gen(500, 5, 4.0, 3);
        for id in t.items() {
            if t.name(id).starts_with("cat-") {
                assert!(!t.is_leaf(id), "category {} has no children", t.name(id));
            } else {
                assert!(t.is_leaf(id));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = gen(300, 4, 5.0, 99);
        let b = gen(300, 4, 5.0, 99);
        assert_eq!(a.len(), b.len());
        for id in a.items() {
            assert_eq!(a.name(id), b.name(id));
            assert_eq!(a.parent(id), b.parent(id));
        }
        let c = gen(300, 4, 5.0, 100);
        // Different seed: almost surely a different structure (same leaf
        // count though).
        assert_eq!(c.num_leaves(), 300);
    }
}
