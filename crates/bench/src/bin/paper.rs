//! `paper` — regenerate every table and figure of the paper's evaluation
//! as text rows.
//!
//! ```text
//! cargo run --release -p negassoc-bench --bin paper -- all
//! cargo run --release -p negassoc-bench --bin paper -- fig5 --scale 10000
//! ```
//!
//! Subcommands: `params` (Tables 3–4), `tables` (worked example Tables
//! 1–2), `counts` (§3.2 itemset counts), `fig5`, `fig6`, `fig7`, `all`,
//! `counting` (sequential-vs-threaded pass timings, written to
//! `BENCH_counting.json`), `ctrl` (cancel-token overhead, written to
//! `BENCH_ctrl.json`), `obs` (trace-emission overhead with a no-op
//! sink, written to `BENCH_obs.json`), and `serve` (rule-serving
//! throughput with oracle and hot-swap checks, written to
//! `BENCH_serve.json`).
//! `--scale N` runs on N transactions instead of the full 50,000 (the
//! qualitative shapes survive scaling; the full size takes minutes).

use negassoc_bench::{
    counting_scale, ctrl_bench, fig7_series, itemset_counts, obs_bench, secs, serve_bench,
    sharded_counting_bench, short_dataset, tall_dataset, CountingBench, FIG56_SUPPORTS_PCT,
    FIG7_SUPPORT_PCT,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut scale: Option<usize> = None;
    let mut support: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => scale = Some(n),
                    None => {
                        eprintln!("--scale needs a number");
                        return ExitCode::from(2);
                    }
                }
            }
            "--support" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(pct) => support = Some(pct),
                    None => {
                        eprintln!("--support needs a percentage");
                        return ExitCode::from(2);
                    }
                }
            }
            cmd if command.is_none() => command = Some(cmd.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let command = command.unwrap_or_else(|| "all".to_owned());
    let support_pct = support.unwrap_or(FIG7_SUPPORT_PCT);
    match command.as_str() {
        "params" => params(),
        "tables" => tables(),
        "counts" => counts(scale, support_pct),
        "fig5" => fig56(false, scale),
        "fig6" => fig56(true, scale),
        "fig7" => fig7(scale, support_pct),
        "counting" => {
            if let Err(e) = counting(scale) {
                eprintln!("counting bench: {e}");
                return ExitCode::from(1);
            }
        }
        "ctrl" => {
            if let Err(e) = ctrl(scale) {
                eprintln!("ctrl bench: {e}");
                return ExitCode::from(1);
            }
        }
        "obs" => {
            if let Err(e) = obs(scale) {
                eprintln!("obs bench: {e}");
                return ExitCode::from(1);
            }
        }
        "serve" => {
            if let Err(e) = serve(scale) {
                eprintln!("serve bench: {e}");
                return ExitCode::from(1);
            }
        }
        "all" => {
            params();
            tables();
            counts(scale, support_pct);
            fig56(false, scale);
            fig56(true, scale);
            fig7(scale, support_pct);
        }
        other => {
            eprintln!(
                "unknown command {other:?} \
                 (params|tables|counts|fig5|fig6|fig7|counting|ctrl|obs|serve|all)"
            );
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Tables 3 and 4: the generator parameters.
fn params() {
    use negassoc_datagen::presets;
    println!("== Table 3/4: synthetic data parameters ==");
    println!("{:<44} {:>10} {:>10}", "parameter", "Short", "Tall");
    let s = presets::short();
    let t = presets::tall();
    let rows: Vec<(&str, String, String)> = vec![
        (
            "|D|  transactions",
            s.num_transactions.to_string(),
            t.num_transactions.to_string(),
        ),
        (
            "|T|  avg transaction size",
            s.avg_transaction_len.to_string(),
            t.avg_transaction_len.to_string(),
        ),
        (
            "|C|  avg cluster size",
            s.avg_cluster_size.to_string(),
            t.avg_cluster_size.to_string(),
        ),
        (
            "|I|  avg itemset size",
            s.avg_itemset_size.to_string(),
            t.avg_itemset_size.to_string(),
        ),
        (
            "|S|  avg itemsets per cluster",
            s.avg_itemsets_per_cluster.to_string(),
            t.avg_itemsets_per_cluster.to_string(),
        ),
        (
            "|L|  clusters",
            s.num_clusters.to_string(),
            t.num_clusters.to_string(),
        ),
        (
            "N    items (leaves)",
            s.num_items.to_string(),
            t.num_items.to_string(),
        ),
        (
            "R    roots",
            s.num_roots.to_string(),
            t.num_roots.to_string(),
        ),
        ("F    fanout", s.fanout.to_string(), t.fanout.to_string()),
    ];
    for (name, sv, tv) in rows {
        println!("{name:<44} {sv:>10} {tv:>10}");
    }
    println!("(|T| and R reconstruct OCR-lost values; see DESIGN.md)\n");
}

/// Tables 1 and 2: the worked example (delegates to the same code path the
/// example binary uses, condensed).
fn tables() {
    use negassoc::candidates::{CandidateGenerator, CandidateSet};
    use negassoc::expected::is_negative;
    use negassoc::rules::generate_negative_rules;
    use negassoc::NegativeItemset;
    use negassoc_apriori::{Itemset, LargeItemsets};
    use negassoc_taxonomy::TaxonomyBuilder;

    let mut b = TaxonomyBuilder::new();
    let bev = b.add_root("beverages");
    let water = b.add_child(bev, "bottled water").unwrap();
    let perrier = b.add_child(water, "Perrier").unwrap();
    let evian = b.add_child(water, "Evian").unwrap();
    let des = b.add_root("desserts");
    let yog = b.add_child(des, "frozen yogurt").unwrap();
    let bryers = b.add_child(yog, "Bryers").unwrap();
    let hc = b.add_child(yog, "Healthy Choice").unwrap();
    let tax = b.build();

    println!("== Table 1: supports (corrected water brands, see DESIGN.md) ==");
    let mut large = LargeItemsets::new(1_000_000, 4_000);
    for (item, sup) in [
        (bryers, 20_000u64),
        (hc, 10_000),
        (evian, 12_000),
        (perrier, 8_000),
        (yog, 30_000),
        (water, 20_000),
    ] {
        println!("  {:<18} {:>7}", tax.name(item), sup);
        large.insert(Itemset::singleton(item), sup);
    }
    let seed = Itemset::from_unsorted(vec![yog, water]);
    large.insert(seed.clone(), 15_000);
    println!("  {:<18} {:>7}", "yogurt & water", 15_000);
    large.insert(Itemset::from_unsorted(vec![bryers, evian]), 7_500);
    large.insert(Itemset::from_unsorted(vec![hc, evian]), 4_200);

    let generator = CandidateGenerator::new(&tax, &large, 0.4);
    let mut set = CandidateSet::new();
    generator
        .extend_from_itemset(&seed, 15_000, &mut set)
        .expect("candidate generation");
    let (mut cands, _) = set.into_candidates();
    cands.sort_by(|a, b| a.itemset.cmp(&b.itemset));

    println!("== Table 2: expected vs actual ==");
    let actual = |s: &Itemset| -> u64 {
        if s.contains(bryers) && s.contains(perrier) {
            500
        } else if s.contains(hc) && s.contains(perrier) {
            2_500
        } else {
            0
        }
    };
    let mut negatives = Vec::new();
    for c in &cands {
        if !c.itemset.items().iter().all(|&i| tax.is_leaf(i)) {
            continue;
        }
        let names: Vec<&str> = c.itemset.items().iter().map(|&i| tax.name(i)).collect();
        let a = actual(&c.itemset);
        println!(
            "  {:<30} E {:>7.0}  actual {:>5}",
            names.join(" & "),
            c.expected,
            a
        );
        if is_negative(c.expected, a, 4_000, 0.4) {
            negatives.push(NegativeItemset {
                itemset: c.itemset.clone(),
                expected: c.expected,
                actual: a,
                derivation: Some(c.derivation.clone()),
            });
        }
    }
    let rules = generate_negative_rules(&negatives, &large, 0.4).expect("rule generation");
    for r in &rules {
        let lhs: Vec<&str> = r.antecedent.items().iter().map(|&i| tax.name(i)).collect();
        let rhs: Vec<&str> = r.consequent.items().iter().map(|&i| tax.name(i)).collect();
        println!(
            "  rule: {} =/=> {} (RI {:.4})",
            lhs.join("+"),
            rhs.join("+"),
            r.ri
        );
    }
    println!();
}

/// §3.2: generalized large-itemset counts (default 1.5% support).
fn counts(scale: Option<usize>, support_pct: f64) {
    println!("== §3.2: generalized large itemsets at {support_pct}% support ==");
    let short = short_dataset(scale);
    let tall = tall_dataset(scale);
    let (s, t) = itemset_counts(&short, &tall, support_pct);
    println!("  Short (F=9): {s}");
    println!("  Tall  (F=3): {t}");
    println!("  (paper: 1,499 vs 15,476 at full scale; shape: Tall >> Short)\n");
}

/// Figures 5 and 6: execution times, naive vs improved.
fn fig56(tall: bool, scale: Option<usize>) {
    let (name, fig, ds) = if tall {
        ("Tall", "Figure 6", tall_dataset(scale))
    } else {
        ("Short", "Figure 5", short_dataset(scale))
    };
    println!(
        "== {fig}: execution times, \"{name}\" dataset ({} transactions, streamed from disk) ==",
        ds.db.len()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10} {:>9} {:>6}",
        "minsup%", "naive(s)", "improved", "n-pass", "i-pass", "large", "cands", "negs", "rules"
    );
    let print_rows = |rows: &[negassoc_bench::Fig56Row]| {
        for row in rows {
            println!(
                "{:>8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10} {:>9} {:>6}",
                row.min_support_pct,
                secs(row.naive),
                secs(row.improved),
                row.naive_passes,
                row.improved_passes,
                row.large_itemsets,
                row.candidates,
                row.negatives,
                row.rules
            );
        }
    };
    let disk = negassoc_bench::DiskDataset::spill(&ds).expect("spill dataset");
    let rows: Vec<negassoc_bench::Fig56Row> = FIG56_SUPPORTS_PCT
        .iter()
        .map(|&s| negassoc_bench::fig56_row_source(&disk.source, &disk.taxonomy, s))
        .collect();
    print_rows(&rows);
    println!(
        "-- with 1995-disk I/O simulation ({} MB/s per pass; paper's cost regime) --",
        negassoc_txdb::throttle::DISK_1995_BYTES_PER_SEC / (1024.0 * 1024.0)
    );
    print_rows(&negassoc_bench::fig56_sweep_throttled(
        &ds,
        FIG56_SUPPORTS_PCT,
    ));
    println!();
}

/// Figure 7: negative candidates per large itemset, by itemset size.
fn fig7(scale: Option<usize>, support_pct: f64) {
    println!(
        "== Figure 7: negative candidates (normalized) vs itemset size (minsup {support_pct}%) =="
    );
    for ds in [short_dataset(scale), tall_dataset(scale)] {
        let series = fig7_series(&ds, support_pct);
        println!("  fanout {}:", series.fanout);
        println!(
            "    {:>4} {:>12} {:>10} {:>14}",
            "size", "candidates", "large", "cands/large"
        );
        for (k, cands, large, norm) in &series.rows {
            println!("    {k:>4} {cands:>12} {large:>10} {norm:>14.2}");
        }
    }
    println!("  (paper: normalized candidates grow with size; fanout 9 > fanout 3)");
}

/// The counting-backend benchmark: run the same mining job under every
/// backend (flat subset-hash-map, hash tree, TID bitmap) at 1/2/4 worker
/// threads, print the per-pass tables, and write the machine-readable
/// result to `BENCH_counting.json`. Alongside the primary `--scale`, a
/// 100,000-transaction scale always runs (at 1/4 threads to keep the
/// matrix affordable) so the artifact records behavior past toy sizes.
fn counting(scale: Option<usize>) -> std::io::Result<()> {
    let transactions = scale.unwrap_or(4_000);
    let mut scales = vec![counting_scale(transactions, &[1, 2, 4])];
    scales[0].sharded = sharded_counting_bench(transactions, &[1, 4, 16]);
    if transactions != 100_000 {
        println!("(running the fixed 100,000-transaction scale too; backends x 1/4 threads)");
        scales.push(counting_scale(100_000, &[1, 4]));
    }
    let bench = CountingBench {
        available_parallelism: negassoc_apriori::parallel::Parallelism::Auto.resolve(),
        scales,
    };
    println!("== counting backends: flat vs hash tree vs TID bitmap ==");
    println!("available parallelism {}", bench.available_parallelism);
    for scale in &bench.scales {
        println!("-- {} transactions --", scale.transactions);
        println!(
            "{:>9} {:>7} {:>5} {:<9} {:>10} {:>12} {:>9}",
            "backend", "threads", "pass", "label", "candidates", "transactions", "wall"
        );
        for run in &scale.runs {
            for r in &run.rows {
                println!(
                    "{:>9} {:>7} {:>5} {:<9} {:>10} {:>12} {:>8}s",
                    run.backend,
                    run.threads,
                    r.pass,
                    r.label,
                    r.candidates,
                    r.transactions,
                    secs(r.wall)
                );
            }
        }
        for run in &scale.runs {
            if run.threads != 1 {
                if let Some(sp) = scale.speedup(run.backend, run.threads) {
                    println!("{} speedup x{}: {sp:.3}", run.backend, run.threads);
                }
            }
        }
        if let Some(sp) = scale.l2_speedup_bitmap_vs_flat() {
            println!("L2 speedup, bitmap vs flat (sequential): {sp:.3}");
        }
        if scale.sharded.is_empty() {
            continue;
        }
        println!("-- sharded counting (one shard resident at a time) --");
        println!(
            "{:>7} {:>14} {:>20} {:>9}",
            "shards", "largest_shard", "max_pass_candidates", "wall"
        );
        for r in &scale.sharded {
            println!(
                "{:>7} {:>14} {:>20} {:>8}s",
                r.shards,
                r.largest_shard,
                r.max_pass_candidates,
                secs(r.wall)
            );
        }
    }
    std::fs::write("BENCH_counting.json", bench.to_json())?;
    println!("wrote BENCH_counting.json");
    Ok(())
}

/// The control-plane overhead benchmark: the same mining job with no
/// cancel token vs under a fully armed `RunControl`, written to
/// `BENCH_ctrl.json`. The run control plane's acceptance bar is < 2%
/// median overhead.
fn ctrl(scale: Option<usize>) -> std::io::Result<()> {
    let transactions = scale.unwrap_or(4_000);
    let bench = ctrl_bench(transactions, 5);
    println!("== run control plane: token-check overhead ==");
    println!(
        "{} transactions, {} repetitions per variant",
        bench.transactions, bench.repetitions
    );
    println!(
        "median baseline {:.3}s, median armed {:.3}s, overhead {:+.3}%",
        bench.median_baseline_s(),
        bench.median_controlled_s(),
        bench.overhead_pct()
    );
    std::fs::write("BENCH_ctrl.json", bench.to_json())?;
    println!("wrote BENCH_ctrl.json");
    Ok(())
}

/// The observability overhead benchmark: the same mining job with no
/// observer vs with a no-op trace sink attached, written to
/// `BENCH_obs.json`. The obs layer's acceptance bar is < 2% median
/// overhead (DESIGN.md §11).
fn obs(scale: Option<usize>) -> std::io::Result<()> {
    let transactions = scale.unwrap_or(4_000);
    let bench = obs_bench(transactions, 5);
    println!("== observability layer: no-op-sink emission overhead ==");
    println!(
        "{} transactions, {} repetitions per variant",
        bench.transactions, bench.repetitions
    );
    println!(
        "median baseline {:.3}s, median observed {:.3}s, overhead {:+.3}%",
        bench.median_baseline_s(),
        bench.median_observed_s(),
        bench.overhead_pct()
    );
    std::fs::write("BENCH_obs.json", bench.to_json())?;
    println!("wrote BENCH_obs.json");
    Ok(())
}

/// The rule-serving benchmark: queries/sec through the server's answer
/// path on a snapshot mined from the 4,000-transaction "Short" dataset,
/// with oracle agreement and a mid-batch hot-swap checked in the same
/// run; written to `BENCH_serve.json`. The serving layer's acceptance bar
/// is ≥ 10,000 queries/sec with both contract flags true.
fn serve(scale: Option<usize>) -> std::io::Result<()> {
    let transactions = scale.unwrap_or(4_000);
    let bench = serve_bench(transactions, 1_000, 0.015);
    println!("== rule serving: basket-match throughput ==");
    println!(
        "{} transactions, {} queries, {} positive + {} negative rules",
        bench.transactions, bench.queries, bench.positive_rules, bench.negative_rules
    );
    println!(
        "batch wall {:.4}s, {:.0} queries/sec, {} answers matched rules",
        bench.wall_s, bench.queries_per_sec, bench.matched_answers
    );
    println!(
        "oracle agreement: {}; hot-swap mid-batch survived: {}",
        bench.oracle_agreement, bench.hot_swap_survived
    );
    std::fs::write("BENCH_serve.json", bench.to_json())?;
    println!("wrote BENCH_serve.json");
    Ok(())
}
