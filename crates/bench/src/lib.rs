//! Experiment runners shared by the Criterion benches and the `paper`
//! binary. Each public function regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Absolute times will differ from the paper's SPARCstation 5; the *shape*
//! — who wins, how curves move with MinSup and fan-out — is the
//! reproduction target, so every row also reports the machine-independent
//! metrics (passes, candidate and itemset counts).

use negassoc::candidates::{CandidateGenerator, CandidateSet};
use negassoc::config::Driver;
use negassoc::{Deadline, MinerConfig, NegativeMiner, RunControl};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::parallel::Parallelism;
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets, Dataset, GenParams};
use std::time::Duration;

/// The MinSup sweep of Figures 5 and 6 (percent).
pub const FIG56_SUPPORTS_PCT: &[f64] = &[2.0, 1.5, 1.0, 0.75, 0.5];

/// The fixed MinRI of the whole evaluation ("The minimum RI was set to 0.5
/// in all cases").
pub const PAPER_MIN_RI: f64 = 0.5;

/// The MinSup used for Figure 7 and the §3.2 itemset-count comparison.
pub const FIG7_SUPPORT_PCT: f64 = 1.5;

/// Materialize the "Short" dataset, optionally scaled down to
/// `transactions` (full Table 4 size when `None`).
pub fn short_dataset(transactions: Option<usize>) -> Dataset {
    build(presets::short(), transactions)
}

/// Materialize the "Tall" dataset.
pub fn tall_dataset(transactions: Option<usize>) -> Dataset {
    build(presets::tall(), transactions)
}

fn build(preset: GenParams, transactions: Option<usize>) -> Dataset {
    let params = match transactions {
        None => preset,
        Some(n) => presets::scaled(preset, n),
    };
    generate(&params)
}

/// One row of Figure 5 / Figure 6: execution time of the naive and
/// improved algorithms at one minimum support.
#[derive(Clone, Debug)]
pub struct Fig56Row {
    /// Minimum support, percent of the database.
    pub min_support_pct: f64,
    /// Naive driver wall time.
    pub naive: Duration,
    /// Improved driver wall time.
    pub improved: Duration,
    /// Database passes of each driver.
    pub naive_passes: u64,
    /// Database passes of the improved driver.
    pub improved_passes: u64,
    /// Generalized large itemsets at this support.
    pub large_itemsets: usize,
    /// Distinct negative candidates.
    pub candidates: u64,
    /// Confirmed negative itemsets.
    pub negatives: usize,
    /// Emitted rules.
    pub rules: usize,
}

fn miner_config(min_support_pct: f64, driver: Driver) -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(min_support_pct / 100.0),
        min_ri: PAPER_MIN_RI,
        driver,
        ..MinerConfig::default()
    }
}

/// Run one Figure 5/6 row over any transaction source.
///
/// Like the paper, the timings cover negative-itemset and rule generation
/// but *not* the shared positive mining ("we have not included the time
/// taken to generate the generalized large itemsets"); the drivers report
/// their phase timings directly.
pub fn fig56_row_source<S: negassoc_txdb::TransactionSource + ?Sized>(
    source: &S,
    taxonomy: &negassoc_taxonomy::Taxonomy,
    min_support_pct: f64,
) -> Fig56Row {
    let run = |driver: Driver| {
        let out = NegativeMiner::new(miner_config(min_support_pct, driver))
            .mine(source, taxonomy)
            .expect("mining");
        let negative_phase = out.report.negative_time + out.report.rule_time;
        (negative_phase, out)
    };
    let (naive_time, naive_out) = run(Driver::Naive);
    let (improved_time, improved_out) = run(Driver::Improved);

    Fig56Row {
        min_support_pct,
        naive: naive_time,
        improved: improved_time,
        naive_passes: naive_out.report.passes,
        improved_passes: improved_out.report.passes,
        large_itemsets: improved_out.large.total(),
        candidates: improved_out.report.candidates.unique,
        negatives: improved_out.negatives.len(),
        rules: improved_out.rules.len(),
    }
}

/// In-memory convenience wrapper around [`fig56_row_source`].
pub fn fig56_row(ds: &Dataset, min_support_pct: f64) -> Fig56Row {
    fig56_row_source(&ds.db, &ds.taxonomy, min_support_pct)
}

/// Run the full Figure 5/6 sweep in memory.
pub fn fig56_sweep(ds: &Dataset, supports_pct: &[f64]) -> Vec<Fig56Row> {
    supports_pct.iter().map(|&s| fig56_row(ds, s)).collect()
}

/// A dataset spilled to disk in the binary format, mined by streaming —
/// the paper's setting (its database did not fit the SPARCstation's 32 MB
/// of memory, so every pass re-read the disk). The temp file is removed on
/// drop.
pub struct DiskDataset {
    /// The taxonomy (kept in memory, as in the paper).
    pub taxonomy: negassoc_taxonomy::Taxonomy,
    /// Streaming source over the spilled file.
    pub source: negassoc_txdb::binfmt::FileSource,
    path: std::path::PathBuf,
}

impl DiskDataset {
    /// Spill `ds` to a temp file and open it for streaming.
    pub fn spill(ds: &Dataset) -> std::io::Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "negassoc-bench-{}-{}-{}.nadb",
            std::process::id(),
            ds.params.fanout,
            ds.db.len()
        ));
        negassoc_txdb::binfmt::save(&ds.db, &path)?;
        let source = negassoc_txdb::binfmt::FileSource::open(&path)?;
        Ok(Self {
            taxonomy: ds.taxonomy.clone(),
            source,
            path,
        })
    }

    /// Run the Figure 5/6 sweep streaming from disk.
    pub fn fig56_sweep(&self, supports_pct: &[f64]) -> Vec<Fig56Row> {
        supports_pct
            .iter()
            .map(|&s| fig56_row_source(&self.source, &self.taxonomy, s))
            .collect()
    }
}

impl Drop for DiskDataset {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Run the Figure 5/6 sweep under the 1995-disk I/O simulation
/// (`negassoc_txdb::throttle`): each database pass carries the I/O cost the
/// paper's hardware paid, which is what separates the `2n`-pass naive
/// driver from the `n + 1`-pass improved one. See DESIGN.md
/// "Substitutions".
pub fn fig56_sweep_throttled(ds: &Dataset, supports_pct: &[f64]) -> Vec<Fig56Row> {
    let throttled = negassoc_txdb::throttle::ThrottledSource::new(
        &ds.db,
        negassoc_txdb::throttle::DISK_1995_BYTES_PER_SEC,
    )
    .expect("in-memory pass cannot fail");
    supports_pct
        .iter()
        .map(|&s| fig56_row_source(&throttled, &ds.taxonomy, s))
        .collect()
}

/// One series of Figure 7: per itemset size, the number of negative
/// candidates normalized by the number of large itemsets of that size.
#[derive(Clone, Debug)]
pub struct Fig7Series {
    /// The taxonomy fan-out of the dataset (9 = Short, 3 = Tall).
    pub fanout: f64,
    /// `(itemset size, candidates, large itemsets, candidates-per-large)`.
    pub rows: Vec<(usize, u64, usize, f64)>,
}

/// Compute one Figure 7 series at `min_support_pct`.
pub fn fig7_series(ds: &Dataset, min_support_pct: f64) -> Fig7Series {
    let large = negassoc_apriori::cumulate::cumulate(
        &ds.db,
        &ds.taxonomy,
        MinSupport::Fraction(min_support_pct / 100.0),
        CountingBackend::HashTree,
        Parallelism::Sequential,
    )
    .expect("positive mining");
    let generator = CandidateGenerator::new(&ds.taxonomy, &large, PAPER_MIN_RI);
    let mut rows = Vec::new();
    for k in 2..=large.max_level() {
        let mut set = CandidateSet::new();
        generator
            .extend_from_level(k, &mut set)
            .expect("candidate generation");
        let (cands, _) = set.into_candidates();
        let large_k = large.level_len(k);
        if large_k == 0 {
            continue;
        }
        let normalized = cands.len() as f64 / large_k as f64;
        rows.push((k, cands.len() as u64, large_k, normalized));
    }
    Fig7Series {
        fanout: ds.params.fanout,
        rows,
    }
}

/// §3.2 comparison: generalized large-itemset counts of the two datasets at
/// 1.5% support (paper: 15,476 for "Tall" vs 1,499 for "Short").
pub fn itemset_counts(short: &Dataset, tall: &Dataset, min_support_pct: f64) -> (usize, usize) {
    let count = |ds: &Dataset| {
        negassoc_apriori::cumulate::cumulate(
            &ds.db,
            &ds.taxonomy,
            MinSupport::Fraction(min_support_pct / 100.0),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .expect("positive mining")
        .total()
    };
    (count(short), count(tall))
}

/// Render a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// One measured counting pass of the parallel-counting benchmark.
#[derive(Clone, Debug)]
pub struct CountingPassRow {
    /// Worker threads the pass ran with (1 = sequential path).
    pub threads: usize,
    /// Pass number within its run.
    pub pass: u64,
    /// Pass label (`L1`, `L2`, …, `negative`).
    pub label: String,
    /// Candidates counted in the pass.
    pub candidates: usize,
    /// Transactions scanned.
    pub transactions: u64,
    /// Wall time of the pass.
    pub wall: Duration,
}

/// The parallel-counting benchmark: end-to-end negative mining on the
/// paper's synthetic generator, once per thread policy, reporting every
/// counting pass's wall time.
#[derive(Clone, Debug)]
pub struct CountingBench {
    /// Transactions in the generated dataset.
    pub transactions: usize,
    /// What `Parallelism::Auto` resolves to on this machine.
    pub available_parallelism: usize,
    /// Every pass of every run.
    pub rows: Vec<CountingPassRow>,
}

impl CountingBench {
    /// Total counting wall time of one thread policy's run.
    pub fn total_wall(&self, threads: usize) -> Duration {
        self.rows
            .iter()
            .filter(|r| r.threads == threads)
            .map(|r| r.wall)
            .sum()
    }

    /// Sequential wall time divided by the `threads`-worker wall time
    /// (> 1 means the workers won). `None` when either run is missing.
    pub fn speedup(&self, threads: usize) -> Option<f64> {
        let seq = self.total_wall(1).as_secs_f64();
        let par = self.total_wall(threads).as_secs_f64();
        (seq > 0.0 && par > 0.0).then(|| seq / par)
    }

    /// Render as a JSON document (hand-rolled; the workspace carries no
    /// serializer dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str("  \"passes\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"threads\": {}, \"pass\": {}, \"label\": \"{}\", \"candidates\": {}, \
                 \"transactions\": {}, \"wall_s\": {:.6}}}{comma}\n",
                r.threads,
                r.pass,
                r.label,
                r.candidates,
                r.transactions,
                r.wall.as_secs_f64()
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"total_wall_s\": {");
        let mut threads: Vec<usize> = self.rows.iter().map(|r| r.threads).collect();
        threads.sort_unstable();
        threads.dedup();
        for (i, &t) in threads.iter().enumerate() {
            let comma = if i + 1 == threads.len() { "" } else { ", " };
            out.push_str(&format!(
                "\"{t}\": {:.6}{comma}",
                self.total_wall(t).as_secs_f64()
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"speedup_vs_sequential\": {{{}}}\n",
            threads
                .iter()
                .filter(|&&t| t != 1)
                .map(|&t| format!("\"{t}\": {:.3}", self.speedup(t).unwrap_or(0.0)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("}\n");
        out
    }
}

/// Run the counting benchmark: the same mining configuration once per
/// thread policy in `thread_counts` (1 = sequential), on the "Short"
/// dataset scaled to `transactions`.
pub fn counting_bench(transactions: usize, thread_counts: &[usize]) -> CountingBench {
    let ds = short_dataset(Some(transactions));
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let parallelism = if threads <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Threads(threads)
        };
        let out = NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.015),
            min_ri: PAPER_MIN_RI,
            driver: Driver::Improved,
            max_negative_size: Some(3),
            parallelism,
            ..MinerConfig::default()
        })
        .mine(&ds.db, &ds.taxonomy)
        .expect("counting bench run");
        rows.extend(out.report.pass_stats.iter().map(|s| CountingPassRow {
            threads,
            pass: s.pass,
            label: s.label.clone(),
            candidates: s.candidates,
            transactions: s.transactions,
            wall: s.wall,
        }));
    }
    CountingBench {
        transactions,
        available_parallelism: Parallelism::Auto.resolve(),
        rows,
    }
}

/// The control-plane overhead benchmark: the same improved-driver mining
/// job with no cancel token at all (baseline) and under a fully armed
/// [`RunControl`] — live watchdog thread, far-future deadline, stall
/// window, interrupt flag — so every block and pass boundary pays its
/// token check. The acceptance bar for the run control plane is
/// `overhead_pct < 2`.
#[derive(Clone, Debug)]
pub struct CtrlBench {
    /// Transactions in the generated dataset.
    pub transactions: usize,
    /// Timed repetitions per variant (interleaved to share cache state).
    pub repetitions: usize,
    /// Wall seconds of each baseline (no token) run.
    pub baseline_s: Vec<f64>,
    /// Wall seconds of each armed-control run.
    pub controlled_s: Vec<f64>,
}

impl CtrlBench {
    fn median(samples: &[f64]) -> f64 {
        let mut s = samples.to_vec();
        s.sort_by(f64::total_cmp);
        match s.len() {
            0 => 0.0,
            n if n % 2 == 1 => s[n / 2],
            n => (s[n / 2 - 1] + s[n / 2]) / 2.0,
        }
    }

    /// Median baseline wall time, seconds.
    pub fn median_baseline_s(&self) -> f64 {
        Self::median(&self.baseline_s)
    }

    /// Median armed-control wall time, seconds.
    pub fn median_controlled_s(&self) -> f64 {
        Self::median(&self.controlled_s)
    }

    /// Median token-check overhead, percent of the baseline (negative
    /// means the difference drowned in run-to-run noise).
    pub fn overhead_pct(&self) -> f64 {
        let base = self.median_baseline_s();
        if base <= 0.0 {
            return 0.0;
        }
        (self.median_controlled_s() / base - 1.0) * 100.0
    }

    /// Render as a JSON document (hand-rolled; the workspace carries no
    /// serializer dependency).
    pub fn to_json(&self) -> String {
        let list = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:.6}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        out.push_str(&format!(
            "  \"baseline_s\": [{}],\n",
            list(&self.baseline_s)
        ));
        out.push_str(&format!(
            "  \"controlled_s\": [{}],\n",
            list(&self.controlled_s)
        ));
        out.push_str(&format!(
            "  \"median_baseline_s\": {:.6},\n",
            self.median_baseline_s()
        ));
        out.push_str(&format!(
            "  \"median_controlled_s\": {:.6},\n",
            self.median_controlled_s()
        ));
        out.push_str(&format!("  \"overhead_pct\": {:.3}\n", self.overhead_pct()));
        out.push_str("}\n");
        out
    }
}

/// Run the control-plane overhead benchmark on the "Short" dataset scaled
/// to `transactions`, `repetitions` interleaved pairs of runs.
pub fn ctrl_bench(transactions: usize, repetitions: usize) -> CtrlBench {
    let ds = short_dataset(Some(transactions));
    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.015),
        min_ri: PAPER_MIN_RI,
        driver: Driver::Improved,
        max_negative_size: Some(3),
        ..MinerConfig::default()
    };
    let miner = NegativeMiner::new(config);
    let mut baseline_s = Vec::with_capacity(repetitions);
    let mut controlled_s = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        let start = std::time::Instant::now();
        let base = miner.mine(&ds.db, &ds.taxonomy).expect("baseline run");
        baseline_s.push(start.elapsed().as_secs_f64());

        // Far-future triggers: the watchdog thread lives, the token is
        // checked everywhere, nothing ever fires.
        let ctrl = RunControl::new()
            .with_deadline(Deadline::after(Duration::from_secs(3_600)))
            .with_stall_window(Duration::from_secs(3_600))
            .with_interrupt_flag(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(
                false,
            )));
        let start = std::time::Instant::now();
        let ctrled = miner
            .mine_with_controls(&ds.db, &ds.taxonomy, None, None, &ctrl)
            .expect("controlled run");
        controlled_s.push(start.elapsed().as_secs_f64());
        assert_eq!(
            base.rules.len(),
            ctrled.rules.len(),
            "control plane changed the answer"
        );
    }
    CtrlBench {
        transactions,
        repetitions,
        baseline_s,
        controlled_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig56_row_shapes() {
        let ds = short_dataset(Some(500));
        let row = fig56_row(&ds, 5.0);
        assert_eq!(row.min_support_pct, 5.0);
        assert!(row.large_itemsets > 0);
        // Improved never makes more passes than naive.
        assert!(row.improved_passes <= row.naive_passes);
    }

    #[test]
    fn fig7_series_has_fanout_and_rows() {
        let ds = short_dataset(Some(500));
        let s = fig7_series(&ds, 5.0);
        assert_eq!(s.fanout, 9.0);
        for (k, cands, large, norm) in &s.rows {
            assert!(*k >= 2);
            assert!(*large > 0);
            assert!((*norm - *cands as f64 / *large as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn itemset_counts_tall_exceeds_short() {
        // The §3.2 claim at small scale: the deeper taxonomy (fanout 3)
        // yields more generalized large itemsets than the bushy one.
        let short = short_dataset(Some(500));
        let tall = tall_dataset(Some(500));
        let (s, t) = itemset_counts(&short, &tall, 5.0);
        assert!(s > 0 && t > 0);
        assert!(t > s, "tall {t} vs short {s}");
    }
}
