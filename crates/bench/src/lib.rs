//! Experiment runners shared by the Criterion benches and the `paper`
//! binary. Each public function regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Absolute times will differ from the paper's SPARCstation 5; the *shape*
//! — who wins, how curves move with MinSup and fan-out — is the
//! reproduction target, so every row also reports the machine-independent
//! metrics (passes, candidate and itemset counts).

use negassoc::candidates::{CandidateGenerator, CandidateSet};
use negassoc::config::Driver;
use negassoc::obs::{json_num, Event, NoopSink, Obs, RingBufferSink};
use negassoc::{Deadline, MinerConfig, NegativeMiner, RunControl};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::parallel::{Parallelism, PassStats};
use negassoc_apriori::MinSupport;
use negassoc_datagen::{generate, presets, Dataset, GenParams};
use std::sync::Arc;
use std::time::Duration;

/// Ring capacity for per-run trace recording: generously above the event
/// count of any bench-sized run (a full mine emits a few events per pass).
const EVENT_RING_CAPACITY: usize = 4096;

/// The MinSup sweep of Figures 5 and 6 (percent).
pub const FIG56_SUPPORTS_PCT: &[f64] = &[2.0, 1.5, 1.0, 0.75, 0.5];

/// The fixed MinRI of the whole evaluation ("The minimum RI was set to 0.5
/// in all cases").
pub const PAPER_MIN_RI: f64 = 0.5;

/// The MinSup used for Figure 7 and the §3.2 itemset-count comparison.
pub const FIG7_SUPPORT_PCT: f64 = 1.5;

/// Materialize the "Short" dataset, optionally scaled down to
/// `transactions` (full Table 4 size when `None`).
pub fn short_dataset(transactions: Option<usize>) -> Dataset {
    build(presets::short(), transactions)
}

/// Materialize the "Tall" dataset.
pub fn tall_dataset(transactions: Option<usize>) -> Dataset {
    build(presets::tall(), transactions)
}

fn build(preset: GenParams, transactions: Option<usize>) -> Dataset {
    let params = match transactions {
        None => preset,
        Some(n) => presets::scaled(preset, n),
    };
    generate(&params)
}

/// One row of Figure 5 / Figure 6: execution time of the naive and
/// improved algorithms at one minimum support.
#[derive(Clone, Debug)]
pub struct Fig56Row {
    /// Minimum support, percent of the database.
    pub min_support_pct: f64,
    /// Naive driver wall time.
    pub naive: Duration,
    /// Improved driver wall time.
    pub improved: Duration,
    /// Database passes of each driver.
    pub naive_passes: u64,
    /// Database passes of the improved driver.
    pub improved_passes: u64,
    /// Generalized large itemsets at this support.
    pub large_itemsets: usize,
    /// Distinct negative candidates.
    pub candidates: u64,
    /// Confirmed negative itemsets.
    pub negatives: usize,
    /// Emitted rules.
    pub rules: usize,
}

fn miner_config(min_support_pct: f64, driver: Driver) -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(min_support_pct / 100.0),
        min_ri: PAPER_MIN_RI,
        driver,
        ..MinerConfig::default()
    }
}

/// Run one Figure 5/6 row over any transaction source.
///
/// Like the paper, the timings cover negative-itemset and rule generation
/// but *not* the shared positive mining ("we have not included the time
/// taken to generate the generalized large itemsets"); the drivers report
/// their phase timings directly.
pub fn fig56_row_source<S: negassoc_txdb::TransactionSource + ?Sized>(
    source: &S,
    taxonomy: &negassoc_taxonomy::Taxonomy,
    min_support_pct: f64,
) -> Fig56Row {
    let run = |driver: Driver| {
        let out = NegativeMiner::new(miner_config(min_support_pct, driver))
            .mine(source, taxonomy)
            .expect("mining");
        let negative_phase = out.report.negative_time + out.report.rule_time;
        (negative_phase, out)
    };
    let (naive_time, naive_out) = run(Driver::Naive);
    let (improved_time, improved_out) = run(Driver::Improved);

    Fig56Row {
        min_support_pct,
        naive: naive_time,
        improved: improved_time,
        naive_passes: naive_out.report.passes,
        improved_passes: improved_out.report.passes,
        large_itemsets: improved_out.large.total(),
        candidates: improved_out.report.candidates.unique,
        negatives: improved_out.negatives.len(),
        rules: improved_out.rules.len(),
    }
}

/// In-memory convenience wrapper around [`fig56_row_source`].
pub fn fig56_row(ds: &Dataset, min_support_pct: f64) -> Fig56Row {
    fig56_row_source(&ds.db, &ds.taxonomy, min_support_pct)
}

/// Run the full Figure 5/6 sweep in memory.
pub fn fig56_sweep(ds: &Dataset, supports_pct: &[f64]) -> Vec<Fig56Row> {
    supports_pct.iter().map(|&s| fig56_row(ds, s)).collect()
}

/// A dataset spilled to disk in the binary format, mined by streaming —
/// the paper's setting (its database did not fit the SPARCstation's 32 MB
/// of memory, so every pass re-read the disk). The temp file is removed on
/// drop.
pub struct DiskDataset {
    /// The taxonomy (kept in memory, as in the paper).
    pub taxonomy: negassoc_taxonomy::Taxonomy,
    /// Streaming source over the spilled file.
    pub source: negassoc_txdb::binfmt::FileSource,
    path: std::path::PathBuf,
}

impl DiskDataset {
    /// Spill `ds` to a temp file and open it for streaming.
    pub fn spill(ds: &Dataset) -> std::io::Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "negassoc-bench-{}-{}-{}.nadb",
            std::process::id(),
            ds.params.fanout,
            ds.db.len()
        ));
        negassoc_txdb::binfmt::save(&ds.db, &path)?;
        let source = negassoc_txdb::binfmt::FileSource::open(&path)?;
        Ok(Self {
            taxonomy: ds.taxonomy.clone(),
            source,
            path,
        })
    }

    /// Run the Figure 5/6 sweep streaming from disk.
    pub fn fig56_sweep(&self, supports_pct: &[f64]) -> Vec<Fig56Row> {
        supports_pct
            .iter()
            .map(|&s| fig56_row_source(&self.source, &self.taxonomy, s))
            .collect()
    }
}

impl Drop for DiskDataset {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Run the Figure 5/6 sweep under the 1995-disk I/O simulation
/// (`negassoc_txdb::throttle`): each database pass carries the I/O cost the
/// paper's hardware paid, which is what separates the `2n`-pass naive
/// driver from the `n + 1`-pass improved one. See DESIGN.md
/// "Substitutions".
pub fn fig56_sweep_throttled(ds: &Dataset, supports_pct: &[f64]) -> Vec<Fig56Row> {
    let throttled = negassoc_txdb::throttle::ThrottledSource::new(
        &ds.db,
        negassoc_txdb::throttle::DISK_1995_BYTES_PER_SEC,
    )
    .expect("in-memory pass cannot fail");
    supports_pct
        .iter()
        .map(|&s| fig56_row_source(&throttled, &ds.taxonomy, s))
        .collect()
}

/// One series of Figure 7: per itemset size, the number of negative
/// candidates normalized by the number of large itemsets of that size.
#[derive(Clone, Debug)]
pub struct Fig7Series {
    /// The taxonomy fan-out of the dataset (9 = Short, 3 = Tall).
    pub fanout: f64,
    /// `(itemset size, candidates, large itemsets, candidates-per-large)`.
    pub rows: Vec<(usize, u64, usize, f64)>,
}

/// Compute one Figure 7 series at `min_support_pct`.
pub fn fig7_series(ds: &Dataset, min_support_pct: f64) -> Fig7Series {
    let large = negassoc_apriori::cumulate::cumulate(
        &ds.db,
        &ds.taxonomy,
        MinSupport::Fraction(min_support_pct / 100.0),
        CountingBackend::HashTree,
        Parallelism::Sequential,
    )
    .expect("positive mining");
    let generator = CandidateGenerator::new(&ds.taxonomy, &large, PAPER_MIN_RI);
    let mut rows = Vec::new();
    for k in 2..=large.max_level() {
        let mut set = CandidateSet::new();
        generator
            .extend_from_level(k, &mut set)
            .expect("candidate generation");
        let (cands, _) = set.into_candidates();
        let large_k = large.level_len(k);
        if large_k == 0 {
            continue;
        }
        let normalized = cands.len() as f64 / large_k as f64;
        rows.push((k, cands.len() as u64, large_k, normalized));
    }
    Fig7Series {
        fanout: ds.params.fanout,
        rows,
    }
}

/// §3.2 comparison: generalized large-itemset counts of the two datasets at
/// 1.5% support (paper: 15,476 for "Tall" vs 1,499 for "Short").
pub fn itemset_counts(short: &Dataset, tall: &Dataset, min_support_pct: f64) -> (usize, usize) {
    let count = |ds: &Dataset| {
        negassoc_apriori::cumulate::cumulate(
            &ds.db,
            &ds.taxonomy,
            MinSupport::Fraction(min_support_pct / 100.0),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .expect("positive mining")
        .total()
    };
    (count(short), count(tall))
}

/// Render a duration in seconds with millisecond resolution. A nonzero
/// duration below the resolution renders as `< 0.001` instead of a
/// misleading `0.000`: these strings are for human tables only, and every
/// derived ratio in this crate is computed from the `Duration`s
/// themselves, never parsed back from the rendering.
pub fn secs(d: Duration) -> String {
    if !d.is_zero() && d < Duration::from_millis(1) {
        "< 0.001".to_owned()
    } else {
        format!("{:.3}", d.as_secs_f64())
    }
}

/// Median of a sample list (0.0 when empty).
fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    match s.len() {
        0 => 0.0,
        n if n % 2 == 1 => s[n / 2],
        n => (s[n / 2 - 1] + s[n / 2]) / 2.0,
    }
}

/// Extract completed-pass telemetry from recorded trace events,
/// renumbered `1..=n`: sub-phases restart their local pass numbering, and
/// the chronological `pass_end` order *is* the run order, so the result
/// matches the renumbered `pass_stats` of the run's own report exactly.
pub fn pass_rows_from_events(events: &[Event]) -> Vec<PassStats> {
    let mut rows: Vec<PassStats> = events
        .iter()
        .filter_map(|e| match e {
            Event::PassEnd { stats } => Some(stats.clone()),
            _ => None,
        })
        .collect();
    for (i, r) in rows.iter_mut().enumerate() {
        r.pass = i as u64 + 1;
    }
    rows
}

/// Collect the wall-second samples named `which` from recorded
/// [`Event::Sample`]s, in repetition order.
fn samples_from_events(events: &[Event], which: &str) -> Vec<f64> {
    let mut samples: Vec<(usize, f64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Sample { name, index, wall } if name == which => {
                Some((*index, wall.as_secs_f64()))
            }
            _ => None,
        })
        .collect();
    samples.sort_by_key(|&(i, _)| i);
    samples.into_iter().map(|(_, w)| w).collect()
}

/// The counting backends the benchmark compares, with their CLI names
/// (`--backend flat|hashtree|bitmap`).
pub const BENCH_BACKENDS: &[(&str, CountingBackend)] = &[
    ("flat", CountingBackend::SubsetHashMap),
    ("hashtree", CountingBackend::HashTree),
    ("bitmap", CountingBackend::TidBitmap),
];

/// One run of the counting benchmark: one backend at one thread count,
/// reporting every counting pass's wall time.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// CLI name of the counting backend (`flat`, `hashtree`, `bitmap`).
    pub backend: &'static str,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Per-pass telemetry, renumbered `1..=n`.
    pub rows: Vec<PassStats>,
}

impl BackendRun {
    /// Total counting wall time of the run.
    pub fn total_wall(&self) -> Duration {
        self.rows.iter().map(|r| r.wall).sum()
    }

    /// Wall seconds of the L2 pass — the dominant pass of the whole mine
    /// (the largest candidate set) and the one the bitmap backend's
    /// acceptance bar is stated against.
    pub fn l2_wall_s(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == "L2")
            .map(|r| r.wall.as_secs_f64())
    }
}

/// The counting benchmark at one dataset scale: every backend crossed
/// with every thread count, plus the sharded bounded-memory rows.
#[derive(Clone, Debug)]
pub struct CountingScale {
    /// Transactions in the generated dataset.
    pub transactions: usize,
    /// One entry per backend × thread count, in run order.
    pub runs: Vec<BackendRun>,
    /// Sharded-counting rows (one per shard count), empty unless
    /// [`sharded_counting_bench`] was run for this scale.
    pub sharded: Vec<ShardedRow>,
}

impl CountingScale {
    /// The run for one backend at one thread count, if present.
    pub fn run(&self, backend: &str, threads: usize) -> Option<&BackendRun> {
        self.runs
            .iter()
            .find(|r| r.backend == backend && r.threads == threads)
    }

    /// Sequential wall time divided by the `threads`-worker wall time for
    /// one backend (> 1 means the workers won). `None` when either run is
    /// missing.
    pub fn speedup(&self, backend: &str, threads: usize) -> Option<f64> {
        let seq = self.run(backend, 1)?.total_wall().as_secs_f64();
        let par = self.run(backend, threads)?.total_wall().as_secs_f64();
        (seq > 0.0 && par > 0.0).then(|| seq / par)
    }

    /// The tentpole headline: sequential L2 pass wall time of the flat
    /// subset-hash-map backend divided by the bitmap backend's
    /// (`bench.sh` gates this at ≥ 3).
    pub fn l2_speedup_bitmap_vs_flat(&self) -> Option<f64> {
        let flat = self.run("flat", 1)?.l2_wall_s()?;
        let bitmap = self.run("bitmap", 1)?.l2_wall_s()?;
        (flat > 0.0 && bitmap > 0.0).then(|| flat / bitmap)
    }

    /// Thread-scaling headline: the bitmap backend's speedup at 4 worker
    /// threads (`bench.sh` gates this at > 1 on machines with ≥ 2 cores).
    pub fn bitmap_speedup_x4(&self) -> Option<f64> {
        self.speedup("bitmap", 4)
    }

    fn json_fragment(&self, indent: &str) -> String {
        let mut out = format!("{indent}{{\n");
        out.push_str(&format!(
            "{indent}  \"transactions\": {},\n",
            self.transactions
        ));
        out.push_str(&format!("{indent}  \"runs\": [\n"));
        for (i, run) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            out.push_str(&format!(
                "{indent}    {{\"backend\": \"{}\", \"threads\": {}, \"total_wall_s\": {}, \
                 \"passes\": [\n",
                run.backend,
                run.threads,
                json_num(run.total_wall().as_secs_f64(), 6)
            ));
            for (j, r) in run.rows.iter().enumerate() {
                let comma = if j + 1 == run.rows.len() { "" } else { "," };
                out.push_str(&format!(
                    "{indent}      {{\"pass\": {}, \"label\": \"{}\", \"candidates\": {}, \
                     \"transactions\": {}, \"wall_s\": {}}}{comma}\n",
                    r.pass,
                    r.label,
                    r.candidates,
                    r.transactions,
                    json_num(r.wall.as_secs_f64(), 6)
                ));
            }
            out.push_str(&format!("{indent}    ]}}{comma}\n"));
        }
        out.push_str(&format!("{indent}  ],\n"));
        let mut threads: Vec<usize> = self.runs.iter().map(|r| r.threads).collect();
        threads.sort_unstable();
        threads.dedup();
        let backends: Vec<&str> = {
            let mut seen = Vec::new();
            for r in &self.runs {
                if !seen.contains(&r.backend) {
                    seen.push(r.backend);
                }
            }
            seen
        };
        out.push_str(&format!(
            "{indent}  \"speedup_vs_sequential\": {{{}}},\n",
            backends
                .iter()
                .map(|&b| {
                    let per_thread = threads
                        .iter()
                        .filter(|&&t| t != 1)
                        .map(|&t| {
                            format!(
                                "\"{t}\": {}",
                                json_num(self.speedup(b, t).unwrap_or(f64::NAN), 3)
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("\"{b}\": {{{per_thread}}}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "{indent}  \"l2_speedup_bitmap_vs_flat\": {},\n",
            json_num(self.l2_speedup_bitmap_vs_flat().unwrap_or(f64::NAN), 3)
        ));
        out.push_str(&format!(
            "{indent}  \"bitmap_speedup_x4\": {},\n",
            json_num(self.bitmap_speedup_x4().unwrap_or(f64::NAN), 3)
        ));
        out.push_str(&format!("{indent}  \"sharded\": [\n"));
        for (i, r) in self.sharded.iter().enumerate() {
            let comma = if i + 1 == self.sharded.len() { "" } else { "," };
            out.push_str(&format!(
                "{indent}    {{\"shards\": {}, \"largest_shard\": {}, \"max_pass_candidates\": {}, \
                 \"wall_s\": {}}}{comma}\n",
                r.shards,
                r.largest_shard,
                r.max_pass_candidates,
                json_num(r.wall.as_secs_f64(), 6)
            ));
        }
        out.push_str(&format!("{indent}  ]\n"));
        out.push_str(&format!("{indent}}}"));
        out
    }
}

/// The parallel-counting benchmark: end-to-end negative mining on the
/// paper's synthetic generator, once per backend × thread policy ×
/// dataset scale. Rows are the workspace-wide [`PassStats`] telemetry
/// type, reconstructed from each run's recorded `pass_end` trace events
/// (DESIGN.md §11) — the bench consumes the observability layer instead
/// of keeping a private duplicate of it.
#[derive(Clone, Debug)]
pub struct CountingBench {
    /// What `Parallelism::Auto` resolves to on this machine.
    pub available_parallelism: usize,
    /// One entry per dataset scale, primary scale first.
    pub scales: Vec<CountingScale>,
}

impl CountingBench {
    /// Render as a JSON document (hand-rolled; the workspace carries no
    /// serializer dependency). Every float routes through
    /// [`json_num`], so a non-finite value (e.g. an undefined speedup)
    /// emits `null`, never the illegal bare `NaN`/`inf`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str("  \"scales\": [\n");
        for (i, scale) in self.scales.iter().enumerate() {
            let comma = if i + 1 == self.scales.len() { "" } else { "," };
            out.push_str(&scale.json_fragment("    "));
            out.push_str(comma);
            out.push('\n');
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Run the counting benchmark at one scale: the same mining configuration
/// once per backend in [`BENCH_BACKENDS`] per thread policy in
/// `thread_counts` (1 = sequential), on the "Short" dataset scaled to
/// `transactions`.
pub fn counting_scale(transactions: usize, thread_counts: &[usize]) -> CountingScale {
    let ds = short_dataset(Some(transactions));
    let mut runs = Vec::new();
    for &(name, backend) in BENCH_BACKENDS {
        for &threads in thread_counts {
            let parallelism = if threads <= 1 {
                Parallelism::Sequential
            } else {
                Parallelism::Threads(threads)
            };
            // Record the run's trace events and rebuild the rows from
            // them: the JSON artifact derives from the same telemetry
            // stream every other consumer sees, not from a privileged
            // side channel.
            let ring = Arc::new(RingBufferSink::new(EVENT_RING_CAPACITY));
            let ctrl = RunControl::new().with_observer(Obs::disabled().with_sink(ring.clone()));
            NegativeMiner::new(MinerConfig {
                min_support: MinSupport::Fraction(0.015),
                min_ri: PAPER_MIN_RI,
                driver: Driver::Improved,
                max_negative_size: Some(3),
                parallelism,
                backend,
                ..MinerConfig::default()
            })
            .mine_with_controls(&ds.db, &ds.taxonomy, None, None, &ctrl)
            .expect("counting bench run");
            runs.push(BackendRun {
                backend: name,
                threads,
                rows: pass_rows_from_events(&ring.snapshot()),
            });
        }
    }
    CountingScale {
        transactions,
        runs,
        sharded: Vec::new(),
    }
}

/// One row of the sharded-counting benchmark: the same mining job over a
/// manifest split into `shards` shard files, streamed one shard at a
/// time (DESIGN.md §13).
#[derive(Clone, Debug)]
pub struct ShardedRow {
    /// Shard files behind the manifest (1 ≈ unsharded).
    pub shards: usize,
    /// Transactions in the largest shard — the peak *resident*
    /// transaction count, since `ShardedSource` streams one shard at a
    /// time. Shrinks as the shard count grows.
    pub largest_shard: u64,
    /// Largest candidate set held by any counting pass — the peak
    /// candidate memory. The bounded-memory contract is that this does
    /// not grow with the shard count (`bench.sh` gates on it).
    pub max_pass_candidates: usize,
    /// End-to-end mining wall time.
    pub wall: Duration,
}

/// Run the sharded-counting benchmark: the counting configuration of
/// [`counting_bench`] once per shard count, with the dataset written as a
/// checksummed shard manifest and mined through
/// [`negassoc_txdb::shard::ShardedSource`]. The peak candidate set per
/// pass is reconstructed from the run's `pass_end` trace events, like
/// every other row in `BENCH_counting.json`.
pub fn sharded_counting_bench(transactions: usize, shard_counts: &[usize]) -> Vec<ShardedRow> {
    let ds = short_dataset(Some(transactions));
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let dir = std::env::temp_dir().join(format!(
            "negassoc-bench-sharded-{}-{shards}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("bench shard dir");
        let manifest_path = dir.join("bench.manifest");
        negassoc_txdb::shard::write_sharded(&ds.db, &manifest_path, shards)
            .expect("write bench shards");
        let source =
            negassoc_txdb::shard::ShardedSource::open(&manifest_path).expect("open bench manifest");
        let largest_shard = source
            .manifest()
            .entries()
            .iter()
            .map(|e| e.tx_count)
            .max()
            .unwrap_or(0);
        let ring = Arc::new(RingBufferSink::new(EVENT_RING_CAPACITY));
        let ctrl = RunControl::new().with_observer(Obs::disabled().with_sink(ring.clone()));
        let start = std::time::Instant::now();
        NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.015),
            min_ri: PAPER_MIN_RI,
            driver: Driver::Improved,
            max_negative_size: Some(3),
            ..MinerConfig::default()
        })
        .mine_with_controls(&source, &ds.taxonomy, None, None, &ctrl)
        .expect("sharded counting bench run");
        let wall = start.elapsed();
        let max_pass_candidates = pass_rows_from_events(&ring.snapshot())
            .iter()
            .map(|r| r.candidates)
            .max()
            .unwrap_or(0);
        std::fs::remove_dir_all(&dir).ok();
        rows.push(ShardedRow {
            shards,
            largest_shard,
            max_pass_candidates,
            wall,
        });
    }
    rows
}

/// The control-plane overhead benchmark: the same improved-driver mining
/// job with no cancel token at all (baseline) and under a fully armed
/// [`RunControl`] — live watchdog thread, far-future deadline, stall
/// window, interrupt flag — so every block and pass boundary pays its
/// token check. The acceptance bar for the run control plane is
/// `overhead_pct < 2`.
#[derive(Clone, Debug)]
pub struct CtrlBench {
    /// Transactions in the generated dataset.
    pub transactions: usize,
    /// Timed repetitions per variant (interleaved to share cache state).
    pub repetitions: usize,
    /// Wall seconds of each baseline (no token) run.
    pub baseline_s: Vec<f64>,
    /// Wall seconds of each armed-control run.
    pub controlled_s: Vec<f64>,
}

impl CtrlBench {
    /// Reconstruct a bench result from recorded [`Event::Sample`]s
    /// (names `"baseline"` and `"controlled"`) — the JSON artifact
    /// derives from the trace record, not a side channel.
    pub fn from_events(transactions: usize, events: &[Event]) -> Self {
        let baseline_s = samples_from_events(events, "baseline");
        let controlled_s = samples_from_events(events, "controlled");
        Self {
            transactions,
            repetitions: baseline_s.len().max(controlled_s.len()),
            baseline_s,
            controlled_s,
        }
    }

    /// Median baseline wall time, seconds.
    pub fn median_baseline_s(&self) -> f64 {
        median(&self.baseline_s)
    }

    /// Median armed-control wall time, seconds.
    pub fn median_controlled_s(&self) -> f64 {
        median(&self.controlled_s)
    }

    /// Median token-check overhead, percent of the baseline (negative
    /// means the difference drowned in run-to-run noise).
    pub fn overhead_pct(&self) -> f64 {
        let base = self.median_baseline_s();
        if base <= 0.0 {
            return 0.0;
        }
        (self.median_controlled_s() / base - 1.0) * 100.0
    }

    /// Render as a JSON document (hand-rolled; the workspace carries no
    /// serializer dependency). Floats route through [`json_num`]:
    /// non-finite values emit `null`, never a bare `NaN`/`inf`.
    pub fn to_json(&self) -> String {
        let list = |xs: &[f64]| {
            xs.iter()
                .map(|&x| json_num(x, 6))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        out.push_str(&format!(
            "  \"baseline_s\": [{}],\n",
            list(&self.baseline_s)
        ));
        out.push_str(&format!(
            "  \"controlled_s\": [{}],\n",
            list(&self.controlled_s)
        ));
        out.push_str(&format!(
            "  \"median_baseline_s\": {},\n",
            json_num(self.median_baseline_s(), 6)
        ));
        out.push_str(&format!(
            "  \"median_controlled_s\": {},\n",
            json_num(self.median_controlled_s(), 6)
        ));
        out.push_str(&format!(
            "  \"overhead_pct\": {}\n",
            json_num(self.overhead_pct(), 3)
        ));
        out.push_str("}\n");
        out
    }
}

/// Run the control-plane overhead benchmark on the "Short" dataset scaled
/// to `transactions`, `repetitions` interleaved pairs of runs.
pub fn ctrl_bench(transactions: usize, repetitions: usize) -> CtrlBench {
    let ds = short_dataset(Some(transactions));
    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.015),
        min_ri: PAPER_MIN_RI,
        driver: Driver::Improved,
        max_negative_size: Some(3),
        ..MinerConfig::default()
    };
    let miner = NegativeMiner::new(config);
    // Each repetition is recorded as an `Event::Sample` and the result is
    // rebuilt from the recording, so the JSON artifact and the trace
    // stream can never disagree.
    let ring = Arc::new(RingBufferSink::new(EVENT_RING_CAPACITY));
    let recorder = Obs::disabled().with_sink(ring.clone());
    for rep in 0..repetitions {
        let start = std::time::Instant::now();
        let base = miner.mine(&ds.db, &ds.taxonomy).expect("baseline run");
        recorder.emit(|| Event::Sample {
            name: "baseline".to_owned(),
            index: rep,
            wall: start.elapsed(),
        });

        // Far-future triggers: the watchdog thread lives, the token is
        // checked everywhere, nothing ever fires.
        let ctrl = RunControl::new()
            .with_deadline(Deadline::after(Duration::from_secs(3_600)))
            .with_stall_window(Duration::from_secs(3_600))
            .with_interrupt_flag(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(
                false,
            )));
        let start = std::time::Instant::now();
        let ctrled = miner
            .mine_with_controls(&ds.db, &ds.taxonomy, None, None, &ctrl)
            .expect("controlled run");
        recorder.emit(|| Event::Sample {
            name: "controlled".to_owned(),
            index: rep,
            wall: start.elapsed(),
        });
        assert_eq!(
            base.rules.len(),
            ctrled.rules.len(),
            "control plane changed the answer"
        );
    }
    CtrlBench::from_events(transactions, &ring.snapshot())
}

/// The observability overhead benchmark: the same improved-driver mining
/// job under a plain [`RunControl`] (no observer — every emission point
/// is a never-evaluated closure) and with a no-op sink attached (every
/// event is built, dispatched, and discarded). The acceptance bar for
/// the obs layer — enforced by `scripts/bench.sh`, same style as the
/// armed-token gate — is `overhead_pct < 2`.
#[derive(Clone, Debug)]
pub struct ObsBench {
    /// Transactions in the generated dataset.
    pub transactions: usize,
    /// Timed repetitions per variant (interleaved to share cache state).
    pub repetitions: usize,
    /// Wall seconds of each no-observer run.
    pub baseline_s: Vec<f64>,
    /// Wall seconds of each no-op-sink run.
    pub observed_s: Vec<f64>,
}

impl ObsBench {
    /// Reconstruct a bench result from recorded [`Event::Sample`]s
    /// (names `"baseline"` and `"observed"`).
    pub fn from_events(transactions: usize, events: &[Event]) -> Self {
        let baseline_s = samples_from_events(events, "baseline");
        let observed_s = samples_from_events(events, "observed");
        Self {
            transactions,
            repetitions: baseline_s.len().max(observed_s.len()),
            baseline_s,
            observed_s,
        }
    }

    /// Median no-observer wall time, seconds.
    pub fn median_baseline_s(&self) -> f64 {
        median(&self.baseline_s)
    }

    /// Median no-op-sink wall time, seconds.
    pub fn median_observed_s(&self) -> f64 {
        median(&self.observed_s)
    }

    /// Median emission overhead, percent of the baseline (negative means
    /// the difference drowned in run-to-run noise).
    pub fn overhead_pct(&self) -> f64 {
        let base = self.median_baseline_s();
        if base <= 0.0 {
            return 0.0;
        }
        (self.median_observed_s() / base - 1.0) * 100.0
    }

    /// Render as a JSON document; floats route through [`json_num`].
    pub fn to_json(&self) -> String {
        let list = |xs: &[f64]| {
            xs.iter()
                .map(|&x| json_num(x, 6))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        out.push_str(&format!(
            "  \"baseline_s\": [{}],\n",
            list(&self.baseline_s)
        ));
        out.push_str(&format!(
            "  \"observed_s\": [{}],\n",
            list(&self.observed_s)
        ));
        out.push_str(&format!(
            "  \"median_baseline_s\": {},\n",
            json_num(self.median_baseline_s(), 6)
        ));
        out.push_str(&format!(
            "  \"median_observed_s\": {},\n",
            json_num(self.median_observed_s(), 6)
        ));
        out.push_str(&format!(
            "  \"overhead_pct\": {}\n",
            json_num(self.overhead_pct(), 3)
        ));
        out.push_str("}\n");
        out
    }
}

/// Run the observability overhead benchmark on the "Short" dataset scaled
/// to `transactions`, `repetitions` interleaved pairs of runs. Both
/// variants run under the same plain `RunControl` so the comparison
/// isolates the emission points themselves.
pub fn obs_bench(transactions: usize, repetitions: usize) -> ObsBench {
    let ds = short_dataset(Some(transactions));
    let config = MinerConfig {
        min_support: MinSupport::Fraction(0.015),
        min_ri: PAPER_MIN_RI,
        driver: Driver::Improved,
        max_negative_size: Some(3),
        ..MinerConfig::default()
    };
    let miner = NegativeMiner::new(config);
    let ring = Arc::new(RingBufferSink::new(EVENT_RING_CAPACITY));
    let recorder = Obs::disabled().with_sink(ring.clone());
    for rep in 0..repetitions {
        let ctrl = RunControl::new();
        let start = std::time::Instant::now();
        let base = miner
            .mine_with_controls(&ds.db, &ds.taxonomy, None, None, &ctrl)
            .expect("baseline run");
        recorder.emit(|| Event::Sample {
            name: "baseline".to_owned(),
            index: rep,
            wall: start.elapsed(),
        });

        let observed_ctrl =
            RunControl::new().with_observer(Obs::disabled().with_sink(Arc::new(NoopSink)));
        let start = std::time::Instant::now();
        let observed = miner
            .mine_with_controls(&ds.db, &ds.taxonomy, None, None, &observed_ctrl)
            .expect("observed run");
        recorder.emit(|| Event::Sample {
            name: "observed".to_owned(),
            index: rep,
            wall: start.elapsed(),
        });
        assert_eq!(
            base.rules.len(),
            observed.rules.len(),
            "the observer changed the answer"
        );
    }
    ObsBench::from_events(transactions, &ring.snapshot())
}

/// The rule-serving benchmark: a snapshot mined from the "Short"
/// (T10.I4-shaped) dataset answered at interactive rates, with the two
/// ROADMAP-item-1 correctness contracts checked in the same run:
///
/// * every answer of the query batch is byte-identical to the offline
///   full-scan oracle over the same rule list, and
/// * a snapshot hot-swap lands mid-batch and every response is still
///   internally consistent with exactly one snapshot version.
///
/// `bench.sh` gates `queries_per_sec` at ≥ 10,000 on the 4,000-transaction
/// snapshot and fails on either contract flag being false.
#[derive(Clone, Debug)]
pub struct ServeBench {
    /// Transactions in the mined dataset.
    pub transactions: usize,
    /// Basket queries in the timed batch.
    pub queries: usize,
    /// Positive rules in the snapshot.
    pub positive_rules: usize,
    /// Negative rules in the snapshot.
    pub negative_rules: usize,
    /// Answers that matched at least one rule (the batch is seeded with
    /// rule antecedents, so this must be nonzero when rules exist).
    pub matched_answers: usize,
    /// Wall seconds of the timed batch (hot-swap included).
    pub wall_s: f64,
    /// The headline: `queries / wall_s`.
    pub queries_per_sec: f64,
    /// Indexed matcher agreed with the full-scan oracle on every basket.
    pub oracle_agreement: bool,
    /// Every mid-swap response matched exactly one snapshot's expected
    /// bytes — no torn reads.
    pub hot_swap_survived: bool,
}

impl ServeBench {
    /// Render as a JSON document; floats route through [`json_num`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"positive_rules\": {},\n", self.positive_rules));
        out.push_str(&format!("  \"negative_rules\": {},\n", self.negative_rules));
        out.push_str(&format!(
            "  \"matched_answers\": {},\n",
            self.matched_answers
        ));
        out.push_str(&format!("  \"wall_s\": {},\n", json_num(self.wall_s, 6)));
        out.push_str(&format!(
            "  \"queries_per_sec\": {},\n",
            json_num(self.queries_per_sec, 1)
        ));
        out.push_str(&format!(
            "  \"oracle_agreement\": {},\n",
            self.oracle_agreement
        ));
        out.push_str(&format!(
            "  \"hot_swap_survived\": {}\n",
            self.hot_swap_survived
        ));
        out.push_str("}\n");
        out
    }
}

/// Run the serving benchmark: mine the "Short" dataset scaled to
/// `transactions` at `min_support`, snapshot the rules, and answer a
/// deterministic `queries`-basket batch through
/// [`negassoc_serve::ServeState::answer`] (the server's own query path
/// minus the socket) with a hot-swap to an equal-content version-2
/// snapshot injected halfway through. The support knob matters: the
/// artifact run uses the paper-scale 1.5%, but small test datasets need
/// a higher floor or the absolute threshold collapses toward 1 and the
/// candidate space explodes.
pub fn serve_bench(transactions: usize, queries: usize, min_support: f64) -> ServeBench {
    use negassoc_serve::{answer_basket_line, ServeState, Snapshot};

    let ds = short_dataset(Some(transactions));
    let outcome = NegativeMiner::new(MinerConfig {
        min_support: MinSupport::Fraction(min_support),
        min_ri: PAPER_MIN_RI,
        driver: Driver::Improved,
        max_negative_size: Some(3),
        ..MinerConfig::default()
    })
    .mine(&ds.db, &ds.taxonomy)
    .expect("serve bench mine");
    let export = outcome.rule_export(&ds.taxonomy, 0.6, PAPER_MIN_RI);
    let tax = &ds.taxonomy;
    let snap1 = Arc::new(Snapshot::from_export(&export, tax, 1).expect("snapshot v1"));
    let snap2 = Arc::new(Snapshot::from_export(&export, tax, 2).expect("snapshot v2"));

    // A deterministic batch: leaf-item triples, with every fourth basket
    // seeded from a mined rule's antecedent so the matched path (posting
    // lists, antecedent verification, rendering) is actually exercised.
    let leaves: Vec<&str> = (0..tax.len() as u32)
        .map(negassoc_taxonomy::ItemId)
        .filter(|&i| tax.is_leaf(i))
        .map(|i| tax.name(i))
        .collect();
    let antecedents: Vec<String> = export
        .positive
        .iter()
        .map(|r| &r.antecedent)
        .chain(export.negative.iter().map(|r| &r.antecedent))
        .map(|a| {
            a.items()
                .iter()
                .map(|&i| tax.name(i))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    let baskets: Vec<String> = (0..queries)
        .map(|i| {
            if i % 4 == 0 && !antecedents.is_empty() {
                antecedents[(i / 4) % antecedents.len()].clone()
            } else {
                let pick = |j: usize| leaves[(i * 31 + j * 17) % leaves.len()];
                format!("{}, {}, {}", pick(1), pick(2), pick(3))
            }
        })
        .collect();

    // Contract 1 (untimed): the indexed matcher is byte-identical to the
    // full-scan oracle on every basket of the batch.
    let expected1: Vec<String> = baskets
        .iter()
        .map(|b| answer_basket_line(tax, &snap1, b, true))
        .collect();
    let oracle_agreement = baskets
        .iter()
        .zip(&expected1)
        .all(|(b, want)| answer_basket_line(tax, &snap1, b, false) == *want);

    // Timed batch through the server's own answer path, with the v2 swap
    // landing halfway — contract 2 is checked after the clock stops.
    let state = ServeState::new(tax.clone(), Arc::clone(&snap1)).expect("serve state");
    let mut answers = Vec::with_capacity(queries);
    let start = std::time::Instant::now();
    for (i, basket) in baskets.iter().enumerate() {
        if i == queries / 2 {
            state.install(Arc::clone(&snap2)).expect("hot swap");
        }
        answers.push(state.answer(basket));
    }
    let wall_s = start.elapsed().as_secs_f64();

    let expected2: Vec<String> = baskets
        .iter()
        .map(|b| answer_basket_line(tax, &snap2, b, false))
        .collect();
    let hot_swap_survived = answers
        .iter()
        .enumerate()
        .all(|(i, got)| *got == expected1[i] || *got == expected2[i]);
    let matched_answers = answers.iter().filter(|a| a.lines().count() > 1).count();

    ServeBench {
        transactions,
        queries,
        positive_rules: export.positive.len(),
        negative_rules: export.negative.len(),
        matched_answers,
        wall_s,
        queries_per_sec: if wall_s > 0.0 {
            queries as f64 / wall_s
        } else {
            f64::NAN
        },
        oracle_agreement,
        hot_swap_survived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig56_row_shapes() {
        let ds = short_dataset(Some(500));
        let row = fig56_row(&ds, 5.0);
        assert_eq!(row.min_support_pct, 5.0);
        assert!(row.large_itemsets > 0);
        // Improved never makes more passes than naive.
        assert!(row.improved_passes <= row.naive_passes);
    }

    #[test]
    fn fig7_series_has_fanout_and_rows() {
        let ds = short_dataset(Some(500));
        let s = fig7_series(&ds, 5.0);
        assert_eq!(s.fanout, 9.0);
        for (k, cands, large, norm) in &s.rows {
            assert!(*k >= 2);
            assert!(*large > 0);
            assert!((*norm - *cands as f64 / *large as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn secs_renders_sub_millisecond_durations_honestly() {
        assert_eq!(secs(Duration::ZERO), "0.000");
        assert_eq!(secs(Duration::from_micros(400)), "< 0.001");
        assert_eq!(secs(Duration::from_millis(1)), "0.001");
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn event_derived_rows_match_the_run_report() {
        // The rows rebuilt from recorded pass_end events must equal the
        // run's own renumbered pass_stats — same telemetry, two readers.
        let ds = short_dataset(Some(400));
        let ring = Arc::new(RingBufferSink::new(EVENT_RING_CAPACITY));
        let ctrl = RunControl::new().with_observer(Obs::disabled().with_sink(ring.clone()));
        let out = NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.05),
            min_ri: PAPER_MIN_RI,
            driver: Driver::Improved,
            max_negative_size: Some(3),
            ..MinerConfig::default()
        })
        .mine_with_controls(&ds.db, &ds.taxonomy, None, None, &ctrl)
        .expect("mining");
        let rows = pass_rows_from_events(&ring.snapshot());
        assert!(!rows.is_empty());
        assert_eq!(rows, out.report.pass_stats);
    }

    #[test]
    fn bench_json_documents_parse_and_are_nonfinite_safe() {
        // A bench with no sequential run has an undefined speedup, and a
        // bench with no bitmap run has an undefined headline; the
        // document must say `null`, not `NaN`, and still parse.
        let counting = CountingBench {
            available_parallelism: 1,
            scales: vec![CountingScale {
                transactions: 10,
                runs: vec![BackendRun {
                    backend: "flat",
                    threads: 2,
                    rows: vec![PassStats {
                        pass: 1,
                        label: "L1".to_owned(),
                        candidates: 5,
                        transactions: 10,
                        threads: 2,
                        wall: Duration::from_micros(500),
                    }],
                }],
                sharded: vec![ShardedRow {
                    shards: 4,
                    largest_shard: 3,
                    max_pass_candidates: 5,
                    wall: Duration::from_micros(250),
                }],
            }],
        };
        let doc = counting.to_json();
        assert!(
            doc.contains("\"speedup_vs_sequential\": {\"flat\": {\"2\": null}}"),
            "{doc}"
        );
        assert!(doc.contains("\"l2_speedup_bitmap_vs_flat\": null"), "{doc}");
        assert!(doc.contains("\"bitmap_speedup_x4\": null"), "{doc}");
        xtask::json::parse(&doc).expect("counting json parses");

        let ctrl = CtrlBench {
            transactions: 10,
            repetitions: 0,
            baseline_s: Vec::new(),
            controlled_s: Vec::new(),
        };
        xtask::json::parse(&ctrl.to_json()).expect("ctrl json parses");

        let obs = ObsBench {
            transactions: 10,
            repetitions: 2,
            baseline_s: vec![0.5, f64::INFINITY],
            observed_s: vec![0.5, 0.6],
        };
        let doc = obs.to_json();
        assert!(doc.contains("null"), "inf sample must render null: {doc}");
        xtask::json::parse(&doc).expect("obs json parses");
    }

    #[test]
    fn sample_events_round_trip_through_from_events() {
        let wall = |ms| Duration::from_millis(ms);
        let events = vec![
            Event::Sample {
                name: "controlled".to_owned(),
                index: 1,
                wall: wall(40),
            },
            Event::Sample {
                name: "baseline".to_owned(),
                index: 0,
                wall: wall(10),
            },
            Event::Sample {
                name: "baseline".to_owned(),
                index: 1,
                wall: wall(30),
            },
            Event::Sample {
                name: "controlled".to_owned(),
                index: 0,
                wall: wall(20),
            },
        ];
        let bench = CtrlBench::from_events(7, &events);
        assert_eq!(bench.transactions, 7);
        assert_eq!(bench.repetitions, 2);
        assert_eq!(bench.baseline_s, vec![0.010, 0.030]);
        assert_eq!(bench.controlled_s, vec![0.020, 0.040]);
    }

    #[test]
    fn serve_bench_contracts_hold_at_small_scale() {
        let bench = serve_bench(400, 60, 0.05);
        assert_eq!(bench.queries, 60);
        assert!(bench.oracle_agreement, "indexed/oracle divergence");
        assert!(bench.hot_swap_survived, "torn read under hot swap");
        assert!(bench.wall_s >= 0.0);
        assert!(bench.queries_per_sec > 0.0);
        if bench.positive_rules + bench.negative_rules > 0 {
            assert!(
                bench.matched_answers > 0,
                "antecedent-seeded baskets must match rules"
            );
        }
        let doc = bench.to_json();
        xtask::json::parse(&doc).expect("serve json parses");
        assert!(doc.contains("\"queries_per_sec\""), "{doc}");
    }

    #[test]
    fn itemset_counts_tall_exceeds_short() {
        // The §3.2 claim at small scale: the deeper taxonomy (fanout 3)
        // yields more generalized large itemsets than the bushy one.
        let short = short_dataset(Some(500));
        let tall = tall_dataset(Some(500));
        let (s, t) = itemset_counts(&short, &tall, 5.0);
        assert!(s > 0 && t > 0);
        assert!(t > s, "tall {t} vs short {s}");
    }
}
