//! Ablation: taxonomy compression (improved-driver optimization 1,
//! paper §2.2.2) and the §2.5 memory cap. Compression prunes small items
//! before candidate generation; the cap trades memory for extra passes.

#![allow(missing_docs)] // criterion_group! expands to an undocumented pub fn

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_bench::{short_dataset, PAPER_MIN_RI};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = short_dataset(Some(2_000));
    let mut group = c.benchmark_group("ablation_improved_driver");
    group.sample_size(10);

    let base = MinerConfig {
        min_support: MinSupport::Fraction(0.02),
        min_ri: PAPER_MIN_RI,
        ..MinerConfig::default()
    };
    let variants: Vec<(&str, MinerConfig)> = vec![
        ("compressed", base),
        (
            "uncompressed",
            MinerConfig {
                compress_taxonomy: false,
                ..base
            },
        ),
        (
            "capped_256",
            MinerConfig {
                max_candidates_per_pass: Some(256),
                ..base
            },
        ),
    ];
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::new("improved", name), &config, |b, config| {
            b.iter(|| {
                let out = NegativeMiner::new(*config)
                    .mine(&ds.db, &ds.taxonomy)
                    .unwrap();
                black_box(out.negatives.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
