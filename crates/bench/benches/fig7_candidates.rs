//! Figure 7 (Criterion form): the cost of negative-candidate generation on
//! the two taxonomies. The figure itself plots candidate *counts* (the
//! `paper -- fig7` binary prints those); this bench times the generation
//! step whose output the figure summarizes, per fanout. MinSup 3% keeps
//! the scaled-down dataset's itemset counts benchable (the 2,000-
//! transaction scale is denser than the full Table 4 data).

#![allow(missing_docs)] // criterion_group! expands to an undocumented pub fn

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use negassoc::candidates::{CandidateGenerator, CandidateSet};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::parallel::Parallelism;
use negassoc_apriori::MinSupport;
use negassoc_bench::{short_dataset, tall_dataset, PAPER_MIN_RI};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_candidate_generation");
    group.sample_size(10);
    for ds in [short_dataset(Some(2_000)), tall_dataset(Some(2_000))] {
        let large = negassoc_apriori::cumulate::cumulate(
            &ds.db,
            &ds.taxonomy,
            MinSupport::Fraction(0.03),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("generate", format!("fanout_{}", ds.params.fanout)),
            &large,
            |b, large| {
                b.iter(|| {
                    let generator = CandidateGenerator::new(&ds.taxonomy, large, PAPER_MIN_RI);
                    let mut set = CandidateSet::new();
                    for k in 2..=large.max_level() {
                        generator.extend_from_level(k, &mut set).unwrap();
                    }
                    black_box(set.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
