//! Figure 6 (Criterion form): negative mining time on the "Tall" dataset
//! (fanout 3), naive vs improved drivers, across the MinSup sweep. The
//! deep taxonomy produces far more generalized large itemsets than "Short"
//! at the same support — the paper's explanation for its longer runtimes.

#![allow(missing_docs)] // criterion_group! expands to an undocumented pub fn

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use negassoc::config::Driver;
use negassoc::{MinerConfig, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_bench::{tall_dataset, PAPER_MIN_RI};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = tall_dataset(Some(2_000));
    let mut group = c.benchmark_group("fig6_tall");
    group.sample_size(10);
    for &pct in &[3.0, 2.0] {
        for (name, driver) in [("naive", Driver::Naive), ("improved", Driver::Improved)] {
            let config = MinerConfig {
                min_support: MinSupport::Fraction(pct / 100.0),
                min_ri: PAPER_MIN_RI,
                driver,
                ..MinerConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(name, format!("minsup_{pct}pct")),
                &config,
                |b, config| {
                    b.iter(|| {
                        let out = NegativeMiner::new(*config)
                            .mine(&ds.db, &ds.taxonomy)
                            .unwrap();
                        black_box(out.rules.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
