//! Ablation: the generalized positive miners (Basic vs Cumulate vs
//! EstMerge). Cumulate's ancestor filtering should dominate Basic on the
//! deep "Tall" taxonomy, where full ancestor extension is most expensive.

#![allow(missing_docs)] // criterion_group! expands to an undocumented pub fn

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::est_merge::{est_merge, EstMergeConfig};
use negassoc_apriori::parallel::Parallelism;
use negassoc_apriori::{basic::basic, cumulate::cumulate, MinSupport};
use negassoc_bench::{short_dataset, tall_dataset};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_positive_miners");
    group.sample_size(10);
    for ds in [short_dataset(Some(2_000)), tall_dataset(Some(2_000))] {
        let tag = format!("fanout_{}", ds.params.fanout);
        group.bench_with_input(BenchmarkId::new("basic", &tag), &ds, |b, ds| {
            b.iter(|| {
                black_box(
                    basic(
                        &ds.db,
                        &ds.taxonomy,
                        MinSupport::Fraction(0.02),
                        CountingBackend::HashTree,
                        Parallelism::Sequential,
                    )
                    .unwrap()
                    .total(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("cumulate", &tag), &ds, |b, ds| {
            b.iter(|| {
                black_box(
                    cumulate(
                        &ds.db,
                        &ds.taxonomy,
                        MinSupport::Fraction(0.02),
                        CountingBackend::HashTree,
                        Parallelism::Sequential,
                    )
                    .unwrap()
                    .total(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("est_merge", &tag), &ds, |b, ds| {
            b.iter(|| {
                let (large, _) = est_merge(
                    &ds.db,
                    &ds.taxonomy,
                    MinSupport::Fraction(0.02),
                    CountingBackend::HashTree,
                    EstMergeConfig::default(),
                    Parallelism::Sequential,
                )
                .unwrap();
                black_box(large.total())
            })
        });
        group.bench_with_input(BenchmarkId::new("partition_4", &tag), &ds, |b, ds| {
            b.iter(|| {
                black_box(
                    negassoc_apriori::partition_mine::partition_mine(
                        &ds.db,
                        Some(&ds.taxonomy),
                        MinSupport::Fraction(0.02),
                        4,
                        CountingBackend::HashTree,
                        Parallelism::Sequential,
                    )
                    .unwrap()
                    .total(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
