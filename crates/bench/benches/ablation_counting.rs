//! Ablation: support-counting backends (DESIGN.md §6). Hash tree vs
//! per-candidate hash map on a positive mining run, and vertical TID-list
//! counting of a fixed candidate set.

#![allow(missing_docs)] // criterion_group! expands to an undocumented pub fn

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use negassoc_apriori::count::{count_with_tidlists, CountingBackend};
use negassoc_apriori::cumulate::cumulate;
use negassoc_apriori::parallel::Parallelism;
use negassoc_apriori::{Itemset, MinSupport};
use negassoc_bench::short_dataset;
use negassoc_txdb::vertical::TidListIndex;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = short_dataset(Some(2_000));
    let mut group = c.benchmark_group("ablation_counting");
    group.sample_size(10);

    for (name, backend) in [
        ("hash_tree", CountingBackend::HashTree),
        ("subset_hashmap", CountingBackend::SubsetHashMap),
    ] {
        group.bench_with_input(
            BenchmarkId::new("cumulate", name),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let large = cumulate(
                        &ds.db,
                        &ds.taxonomy,
                        MinSupport::Fraction(0.02),
                        backend,
                        Parallelism::Sequential,
                    )
                    .unwrap();
                    black_box(large.total())
                })
            },
        );
    }

    // Vertical counting: index once per iteration (that's its cost model —
    // one pass to build, then free counting).
    let large = cumulate(
        &ds.db,
        &ds.taxonomy,
        MinSupport::Fraction(0.02),
        CountingBackend::HashTree,
        Parallelism::Sequential,
    )
    .unwrap();
    let candidates: Vec<Itemset> = large.iter().map(|(s, _)| s.clone()).collect();
    group.bench_function("vertical_tidlists", |b| {
        b.iter(|| {
            let idx = TidListIndex::build_generalized(&ds.db, &ds.taxonomy).unwrap();
            let counted = count_with_tidlists(&idx, candidates.clone());
            black_box(counted.len())
        })
    });

    // Multi-threaded counting (identity mapper: flat candidate counting;
    // taxonomy extension per thread is exercised by the positive-miner
    // variants above).
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_hash_tree", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let run = negassoc_apriori::parallel::count_mixed_parallel(
                        &ds.db,
                        candidates.clone(),
                        CountingBackend::HashTree,
                        &negassoc_apriori::parallel::identity_sync_mapper,
                        Parallelism::Threads(threads),
                    )
                    .unwrap();
                    black_box(run.counts.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
