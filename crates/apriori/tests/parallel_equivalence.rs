//! Determinism contract of the parallel counting layer: for every thread
//! count, every backend, and every source — in-memory or streamed through
//! faults and retries — parallel counts are *exactly* the sequential
//! counts, in the same candidate order.

use negassoc_apriori::count::{count_mixed, identity_mapper, CountingBackend};
use negassoc_apriori::parallel::{count_mixed_parallel, identity_sync_mapper, Parallelism};
use negassoc_apriori::{basic::basic, Itemset, MinSupport};
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};
use negassoc_txdb::fault::{FaultPlan, FaultySource, RetryPolicy, RetryingSource};
use negassoc_txdb::obs::{MetricKind, Metrics};
use negassoc_txdb::{TransactionDb, TransactionDbBuilder};
use proptest::prelude::*;
use std::time::Duration;

const ITEMS: u32 = 16;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0..ITEMS, 0..7), 1..60).prop_map(|txs| {
        let mut b = TransactionDbBuilder::new();
        for t in txs {
            b.add(t.into_iter().map(ItemId));
        }
        b.build()
    })
}

fn arb_candidates() -> impl Strategy<Value = Vec<Itemset>> {
    prop::collection::btree_set(prop::collection::btree_set(0..ITEMS, 1..4), 1..20).prop_map(
        |cands| {
            cands
                .iter()
                .map(|c| Itemset::from_unsorted(c.iter().map(|&i| ItemId(i)).collect()))
                .collect()
        },
    )
}

fn flat_taxonomy() -> Taxonomy {
    let mut tb = TaxonomyBuilder::new();
    for i in 0..ITEMS {
        tb.add_root(&format!("item{i}"));
    }
    tb.build()
}

proptest! {
    /// In-memory source: 1/2/4/8 worker threads and all three backends
    /// reproduce the flat sequential counts in the sequential order. The
    /// flat subset-hash-map is the reference because it is the most
    /// literal transcription of "count every candidate in every
    /// transaction".
    #[test]
    fn every_thread_count_matches_sequential(
        db in arb_db(),
        candidates in arb_candidates(),
    ) {
        // The sequential entry point emits per-size groups in hash
        // order; sort both sides to compare the (itemset, count) sets.
        let mut reference = count_mixed(
            &db,
            candidates.clone(),
            CountingBackend::SubsetHashMap,
            &mut identity_mapper,
        )
        .unwrap();
        reference.sort();
        for backend in [
            CountingBackend::HashTree,
            CountingBackend::SubsetHashMap,
            CountingBackend::TidBitmap,
        ] {
            let mut sequential =
                count_mixed(&db, candidates.clone(), backend, &mut identity_mapper).unwrap();
            sequential.sort();
            prop_assert_eq!(&sequential, &reference, "sequential {:?}", backend);
            for threads in THREAD_COUNTS {
                let run = count_mixed_parallel(
                    &db,
                    candidates.clone(),
                    backend,
                    &identity_sync_mapper,
                    Parallelism::Threads(threads),
                )
                .unwrap();
                // The parallel entry point guarantees input order.
                let order: Vec<&Itemset> = run.counts.iter().map(|(c, _)| c).collect();
                prop_assert_eq!(order, candidates.iter().collect::<Vec<_>>());
                let mut parallel = run.counts;
                parallel.sort();
                prop_assert_eq!(&parallel, &sequential, "{:?} x{}", backend, threads);
            }
        }
    }

    /// Streamed source healing injected transient faults mid-pass: the
    /// retry layer's exactly-once delivery keeps parallel counts exact at
    /// every thread count, for every backend.
    #[test]
    fn faulty_retrying_stream_matches_sequential(
        db in arb_db(),
        candidates in arb_candidates(),
        seed in any::<u64>(),
    ) {
        let mut sequential = count_mixed(
            &db,
            candidates.clone(),
            CountingBackend::SubsetHashMap,
            &mut identity_mapper,
        )
        .unwrap();
        sequential.sort();
        for backend in [CountingBackend::HashTree, CountingBackend::TidBitmap] {
            for threads in THREAD_COUNTS {
                // A fresh faulty stream per run: the pass counter advances
                // on every attempt, so reuse would shift which pass faults.
                let faulty = FaultySource::new(
                    &db,
                    FaultPlan::seeded_transient(seed, 2, db.len() as u64, 3),
                );
                let healed = RetryingSource::new(faulty, RetryPolicy::new(8, Duration::ZERO));
                let run = count_mixed_parallel(
                    &healed,
                    candidates.clone(),
                    backend,
                    &identity_sync_mapper,
                    Parallelism::Threads(threads),
                )
                .unwrap();
                let mut parallel = run.counts;
                parallel.sort();
                prop_assert_eq!(&parallel, &sequential, "{:?} x{}", backend, threads);
            }
        }
    }

    /// The metrics registry obeys the same determinism contract as the
    /// counts themselves: dealing one increment stream across 1/2/4/8
    /// worker shards (on real threads) and absorbing them in either
    /// order reproduces the sequential totals exactly.
    #[test]
    fn metrics_shard_merge_matches_sequential(
        increments in prop::collection::vec((0usize..4, 1u64..100), 0..200),
        absorb_reversed in any::<bool>(),
    ) {
        let names = ["a", "b", "c", "d"];
        let sequential = Metrics::new();
        let ids: Vec<_> = names
            .iter()
            .map(|n| sequential.register(n, MetricKind::Counter))
            .collect();
        for &(slot, n) in &increments {
            sequential.add(ids[slot], n);
        }

        for threads in THREAD_COUNTS {
            let merged = Metrics::new();
            let merged_ids: Vec<_> = names
                .iter()
                .map(|n| merged.register(n, MetricKind::Counter))
                .collect();
            let mut shards: Vec<_> = (0..threads).map(|_| merged.shard()).collect();
            // Deal increments round-robin, as the block dispatcher deals
            // transaction blocks to workers.
            std::thread::scope(|scope| {
                for (w, shard) in shards.iter_mut().enumerate() {
                    let increments = &increments;
                    let merged_ids = &merged_ids;
                    scope.spawn(move || {
                        for (i, &(slot, n)) in increments.iter().enumerate() {
                            if i % threads == w {
                                shard.add(merged_ids[slot], n);
                            }
                        }
                    });
                }
            });
            if absorb_reversed {
                shards.reverse();
            }
            for shard in &shards {
                merged.absorb(shard);
            }
            prop_assert_eq!(merged.snapshot(), sequential.snapshot(), "x{}", threads);
        }
    }

    /// The whole miner, not just one pass: Basic over a flat taxonomy is
    /// identical for every parallelism policy and every backend.
    #[test]
    fn miner_output_is_thread_count_invariant(db in arb_db(), minsup in 1u64..5) {
        let tax = flat_taxonomy();
        let reference = basic(
            &db,
            &tax,
            MinSupport::Count(minsup),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        for backend in [CountingBackend::SubsetHashMap, CountingBackend::TidBitmap] {
            for threads in THREAD_COUNTS {
                let parallel = basic(
                    &db,
                    &tax,
                    MinSupport::Count(minsup),
                    backend,
                    Parallelism::Threads(threads),
                )
                .unwrap();
                prop_assert_eq!(parallel.total(), reference.total());
                for (set, sup) in reference.iter() {
                    prop_assert_eq!(parallel.support_of_set(set), Some(sup), "{:?}", backend);
                }
            }
        }
    }
}
