//! Property-based tests for the frequent-itemset mining substrate.

use negassoc_apriori::count::{count_candidates, identity_mapper, CountingBackend};
use negassoc_apriori::est_merge::{est_merge, EstMergeConfig};
use negassoc_apriori::parallel::Parallelism;
use negassoc_apriori::{apriori::apriori, basic::basic, cumulate::cumulate};
use negassoc_apriori::{HashTree, Itemset, MinSupport};
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};
use negassoc_txdb::{TransactionDb, TransactionDbBuilder};
use proptest::prelude::*;

const ITEMS: u32 = 20;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0..ITEMS, 0..8), 1..30).prop_map(|txs| {
        let mut b = TransactionDbBuilder::new();
        for t in txs {
            b.add(t.into_iter().map(ItemId));
        }
        b.build()
    })
}

/// A random forest over the fixed item universe (item `i`'s parent drawn
/// from `0..i` or none).
fn arb_taxonomy() -> impl Strategy<Value = Taxonomy> {
    prop::collection::vec(prop::option::weighted(0.7, 0u32..1000), ITEMS as usize).prop_map(
        |parents| {
            let mut b = TaxonomyBuilder::new();
            for (i, p) in parents.iter().enumerate() {
                let name = format!("item{i}");
                match p {
                    Some(raw) if i > 0 => {
                        b.add_child(ItemId(raw % i as u32), &name).unwrap();
                    }
                    _ => {
                        b.add_root(&name);
                    }
                }
            }
            b.build()
        },
    )
}

fn brute_support(db: &TransactionDb, items: &[ItemId]) -> u64 {
    db.iter().filter(|t| t.contains_all(items)).count() as u64
}

proptest! {
    /// Hash-tree counting equals brute-force subset counting.
    #[test]
    fn hash_tree_matches_bruteforce(
        db in arb_db(),
        cands in prop::collection::btree_set(
            prop::collection::btree_set(0..ITEMS, 2..4), 1..25),
    ) {
        // Group candidates by size (the tree is per-size).
        for k in 2..4usize {
            let sized: Vec<Itemset> = cands
                .iter()
                .filter(|c| c.len() == k)
                .map(|c| Itemset::from_unsorted(c.iter().map(|&i| ItemId(i)).collect()))
                .collect();
            if sized.is_empty() {
                continue;
            }
            let mut tree = HashTree::with_params(k, 3, 2);
            for c in sized.clone() {
                tree.insert(c);
            }
            db.iter().for_each(|t| tree.count_transaction(t.items()));
            for (cand, count) in tree.counts() {
                prop_assert_eq!(count, brute_support(&db, cand.items()), "{:?}", cand);
            }
        }
    }

    /// Counting backends agree with brute force on uniform-size candidates.
    #[test]
    fn backends_match_bruteforce(
        db in arb_db(),
        cands in prop::collection::btree_set(
            prop::collection::btree_set(0..ITEMS, 2..3), 1..20),
    ) {
        let sized: Vec<Itemset> = cands
            .iter()
            .filter(|c| c.len() == 2)
            .map(|c| Itemset::from_unsorted(c.iter().map(|&i| ItemId(i)).collect()))
            .collect();
        prop_assume!(!sized.is_empty());
        for backend in [CountingBackend::HashTree, CountingBackend::SubsetHashMap] {
            let counted =
                count_candidates(&db, sized.clone(), backend, &mut identity_mapper).unwrap();
            for (cand, count) in counted {
                prop_assert_eq!(count, brute_support(&db, cand.items()));
            }
        }
    }

    /// Apriori output is downward closed and supports are exact; AprioriTid
    /// computes the identical result in one database pass.
    #[test]
    fn apriori_downward_closure_and_exact_supports(db in arb_db(), minsup in 1u64..6) {
        let large = apriori(&db, MinSupport::Count(minsup), CountingBackend::HashTree).unwrap();
        let tid = negassoc_apriori::apriori_tid::apriori_tid(&db, MinSupport::Count(minsup))
            .unwrap();
        prop_assert_eq!(tid.total(), large.total());
        for (set, sup) in large.iter() {
            prop_assert_eq!(tid.support_of_set(set), Some(sup));
        }
        for (set, sup) in large.iter() {
            prop_assert_eq!(sup, brute_support(&db, set.items()));
            prop_assert!(sup >= large.min_support_count());
            for sub in set.one_smaller_subsets() {
                if !sub.is_empty() {
                    prop_assert!(large.contains(&sub), "missing subset {:?} of {:?}", sub, set);
                }
            }
        }
        // Completeness at level 2: every frequent pair is reported.
        for a in 0..ITEMS {
            for b in (a + 1)..ITEMS {
                let pair = [ItemId(a), ItemId(b)];
                let sup = brute_support(&db, &pair);
                if sup >= minsup {
                    prop_assert_eq!(large.support_of(&pair), Some(sup));
                }
            }
        }
    }

    /// Basic, Cumulate, EstMerge and Partition produce identical
    /// generalized results.
    #[test]
    fn generalized_algorithms_agree(
        db in arb_db(),
        tax in arb_taxonomy(),
        minsup in 1u64..6,
        seed in any::<u64>(),
        parts in 1usize..5,
    ) {
        let a = basic(
            &db,
            &tax,
            MinSupport::Count(minsup),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        let b = cumulate(
            &db,
            &tax,
            MinSupport::Count(minsup),
            CountingBackend::SubsetHashMap,
            Parallelism::Threads(2),
        )
        .unwrap();
        let (c, _) = est_merge(
            &db,
            &tax,
            MinSupport::Count(minsup),
            CountingBackend::HashTree,
            EstMergeConfig { sample_fraction: 0.5, safety_factor: 0.9, seed },
            Parallelism::Threads(3),
        )
        .unwrap();
        let d = negassoc_apriori::partition_mine::partition_mine(
            &db,
            Some(&tax),
            MinSupport::Count(minsup),
            parts,
            CountingBackend::HashTree,
            Parallelism::Auto,
        )
        .unwrap();
        prop_assert_eq!(a.total(), b.total());
        prop_assert_eq!(a.total(), c.total());
        prop_assert_eq!(a.total(), d.total());
        for (set, sup) in a.iter() {
            prop_assert_eq!(b.support_of_set(set), Some(sup));
            prop_assert_eq!(c.support_of_set(set), Some(sup));
            prop_assert_eq!(d.support_of_set(set), Some(sup));
        }
    }

    /// Parallel counting agrees with sequential counting.
    #[test]
    fn parallel_counting_agrees(
        db in arb_db(),
        cands in prop::collection::btree_set(
            prop::collection::btree_set(0..ITEMS, 1..4), 1..15),
        threads in 1usize..5,
    ) {
        let candidates: Vec<Itemset> = cands
            .iter()
            .map(|c| Itemset::from_unsorted(c.iter().map(|&i| ItemId(i)).collect()))
            .collect();
        let mut sequential = negassoc_apriori::count::count_mixed(
            &db,
            candidates.clone(),
            CountingBackend::HashTree,
            &mut identity_mapper,
        )
        .unwrap();
        sequential.sort();
        let run = negassoc_apriori::parallel::count_mixed_parallel(
            &db,
            candidates,
            CountingBackend::HashTree,
            &negassoc_apriori::parallel::identity_sync_mapper,
            negassoc_apriori::parallel::Parallelism::Threads(threads),
        )
        .unwrap();
        let mut parallel = run.counts;
        parallel.sort();
        prop_assert_eq!(sequential, parallel);
    }

    /// Generalized supports are exact: category support counts transactions
    /// containing any descendant.
    #[test]
    fn generalized_supports_are_exact(db in arb_db(), tax in arb_taxonomy()) {
        let large = cumulate(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        for (set, sup) in large.iter() {
            // Brute force: a transaction supports `set` when, for every
            // member, it contains the member or one of its descendants.
            let brute = db
                .iter()
                .filter(|t| {
                    set.items().iter().all(|&m| {
                        t.items()
                            .iter()
                            .any(|&it| it == m || tax.is_ancestor(m, it))
                    })
                })
                .count() as u64;
            prop_assert_eq!(sup, brute, "{:?}", set);
        }
    }
}
