//! The shared parallel support-counting layer.
//!
//! Every pass-based miner in the workspace funnels its counting through
//! this module: [`count_mixed_parallel`] (candidates of any sizes, one
//! pass) and [`count_items_parallel`] (the level-1 per-item tally). Both
//! stream *any* [`TransactionSource`] — in-memory or file-backed — through
//! [`negassoc_txdb::block::parallel_pass`]: the caller's thread slices the
//! single pass into fixed-size blocks, a pool of `std::thread::scope`
//! workers counts them with private [`HashTree`]/hash-map structures and
//! mapper buffers (no locks on the hot path), and per-candidate counts are
//! merged additively at the end.
//!
//! Counts are **exact**: blocks partition the pass, so per-worker tallies
//! are partition counts that sum to the sequential answer (Savasere et
//! al.'s Partition invariant; Agrawal & Shafer's count distribution). The
//! merge is *total* — every candidate appears exactly once in the output,
//! in the order the caller supplied — so sequential and parallel runs of
//! the same pass produce identical `(candidate, count)` sequences, which
//! is the foundation of the pipeline's byte-identical-output contract.
//!
//! [`HashTree`]: crate::hash_tree::HashTree

use crate::count::{items_of, BitmapPlan, BitmapWorker, Counter, CountingBackend};
use crate::itemset::Itemset;
use negassoc_taxonomy::fxhash::{FxHashMap, FxHashSet};
use negassoc_taxonomy::ItemId;
use negassoc_txdb::block::{parallel_pass_ctrl, DEFAULT_BLOCK_SIZE};
use negassoc_txdb::obs::{metric, Event};
use negassoc_txdb::TransactionSource;
use std::io;

pub use negassoc_txdb::block::Parallelism;
pub use negassoc_txdb::ctrl::CancelToken;
pub use negassoc_txdb::obs::{Obs, PassStats};

/// A transaction mapper shareable across counting workers (the `Sync`
/// sibling of [`crate::count::Mapper`]): transforms a transaction's items
/// into the counting buffer, e.g. taxonomy-ancestor extension. Must leave
/// the buffer strictly ascending.
pub type SyncMapper<'a> = dyn Fn(&[ItemId], &mut Vec<ItemId>) + Sync + 'a;

/// The identity [`SyncMapper`]: count over the literal transaction items.
pub fn identity_sync_mapper(items: &[ItemId], buf: &mut Vec<ItemId>) {
    buf.clear();
    buf.extend_from_slice(items);
}

/// What one counting pass did: the exact counts plus the telemetry the
/// `--pass-stats` report surfaces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassRun {
    /// `(candidate, support)` for every input candidate, in input order.
    pub counts: Vec<(Itemset, u64)>,
    /// Transactions scanned by the pass.
    pub transactions: u64,
    /// Worker threads the pass actually used.
    pub threads: usize,
}

/// Count supports of mixed-size `candidates` in a single pass of `source`
/// using the worker pool `parallelism` resolves to.
///
/// This is the workspace's one parallel counting entry point (the former
/// in-memory-only partitioned counter is folded into it). Semantics match
/// [`crate::count::count_mixed`] exactly — same grouping per candidate
/// size, same per-size item filters — with two guarantees on top:
///
/// * **total merge**: the output holds every input candidate exactly once,
///   in input order, with its exact support (nothing is silently dropped),
/// * **determinism**: the output is identical for every `parallelism`
///   value, because block counts are order-independent `u64` additions.
pub fn count_mixed_parallel<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
    backend: CountingBackend,
    mapper: &SyncMapper<'_>,
    parallelism: Parallelism,
) -> io::Result<PassRun> {
    count_mixed_parallel_ctrl(
        source,
        candidates,
        backend,
        mapper,
        parallelism,
        None,
        &Obs::disabled(),
    )
}

/// [`count_mixed_parallel`] with cooperative cancellation: the pool checks
/// `ctrl` at block boundaries and a cancelled pass returns the token's
/// [`io::ErrorKind::Interrupted`] error instead of partial counts (see
/// [`negassoc_txdb::ctrl`]). Block dispatch/merge events and the scan
/// counters flow to `obs` (see [`negassoc_txdb::obs`]).
// negassoc-lint: allow(L010) -- parallel_pass_ctrl polls at block boundaries; the loops here are candidate grouping and worker-closure counting over blocks it already dispatched
pub fn count_mixed_parallel_ctrl<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
    backend: CountingBackend,
    mapper: &SyncMapper<'_>,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> io::Result<PassRun> {
    let threads = parallelism.resolve();
    if candidates.is_empty() {
        return Ok(PassRun {
            counts: Vec::new(),
            transactions: 0,
            threads,
        });
    }
    if backend == CountingBackend::TidBitmap {
        return count_mixed_parallel_bitmap(source, candidates, mapper, threads, ctrl, obs);
    }

    // Group by size once; workers clone the per-size candidate lists to
    // build their private counting structures. The per-size item filter
    // (see count_mixed) is shared read-only across the pool.
    let mut by_size: FxHashMap<usize, Vec<Itemset>> = FxHashMap::default();
    for c in &candidates {
        by_size.entry(c.len()).or_default().push(c.clone());
    }
    let mut groups: Vec<(usize, Vec<Itemset>, FxHashSet<ItemId>)> = by_size
        .into_iter()
        .filter(|(k, _)| *k > 0)
        .map(|(k, cands)| {
            let needed = items_of(&cands);
            (k, cands, needed)
        })
        .collect();
    // Deterministic worker construction order (hash maps iterate in
    // arbitrary order; sizes are few).
    groups.sort_unstable_by_key(|(k, _, _)| *k);
    let single = groups.len() == 1;
    let groups = &groups;

    struct Worker {
        counters: Vec<Counter>,
        buf: Vec<ItemId>,
        scratch: Vec<ItemId>,
    }

    let (parts, transactions) = parallel_pass_ctrl(
        source,
        threads,
        DEFAULT_BLOCK_SIZE,
        ctrl,
        obs,
        || Worker {
            counters: groups
                .iter()
                .map(|(k, cands, _)| Counter::build(*k, cands.clone(), backend))
                .collect(),
            buf: Vec::new(),
            scratch: Vec::new(),
        },
        |w, block| {
            for t in block.iter() {
                mapper(t.items(), &mut w.buf);
                for (counter, (_, _, needed)) in w.counters.iter_mut().zip(groups.iter()) {
                    if single {
                        // One size: the caller's mapper already filtered.
                        counter.count(&w.buf);
                    } else {
                        w.scratch.clear();
                        w.scratch
                            .extend(w.buf.iter().copied().filter(|i| needed.contains(i)));
                        counter.count(&w.scratch);
                    }
                }
            }
        },
        |w| -> Vec<(Itemset, u64)> {
            w.counters
                .into_iter()
                .flat_map(Counter::into_counts)
                .collect()
        },
    )?;

    // Total additive merge: seeded with a zero for every candidate, so no
    // worker-reported count can be dropped and unseen candidates still
    // appear (with support 0).
    let mut merged: FxHashMap<Itemset, u64> = candidates.iter().map(|c| (c.clone(), 0)).collect();
    for part in parts {
        for (set, count) in part {
            *merged.entry(set).or_insert(0) += count;
        }
    }
    let counts: Vec<(Itemset, u64)> = candidates
        .into_iter()
        .map(|c| {
            let n = merged.remove(&c).unwrap_or(0);
            (c, n)
        })
        .collect();
    debug_assert!(
        merged.is_empty(),
        "counting produced itemsets outside the candidate set"
    );
    Ok(PassRun {
        counts,
        transactions,
        threads,
    })
}

/// The TID-bitmap arm of [`count_mixed_parallel_ctrl`]: build and count in
/// the *same* single pass. Each worker packs the transactions it is dealt
/// into private [`BitmapChunk`] row-ranges (one bit slot per transaction,
/// rows only for items the candidates mention), then answers every
/// candidate with word-wise AND + popcount over its own chunks. Workers
/// cover disjoint transaction slices, so the per-candidate partials merge
/// by plain `u64` addition — order-invariant, like a
/// [`negassoc_txdb::obs::MetricsShard`] absorb — and the result is exact
/// and identical to the horizontal backends for every thread count.
///
/// [`BitmapChunk`]: negassoc_txdb::vertical::BitmapChunk
// negassoc-lint: allow(L010) -- parallel_pass_ctrl polls at block boundaries; the loops here are plan setup, worker-closure bit-setting over dispatched blocks, and the in-memory partial-count merge
fn count_mixed_parallel_bitmap<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
    mapper: &SyncMapper<'_>,
    threads: usize,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> io::Result<PassRun> {
    let plan = BitmapPlan::new(&candidates);
    let plan = &plan;

    let (parts, transactions) = parallel_pass_ctrl(
        source,
        threads,
        DEFAULT_BLOCK_SIZE,
        ctrl,
        obs,
        || (BitmapWorker::new(plan.rows), Vec::<ItemId>::new()),
        |(w, buf), block| {
            for t in block.iter() {
                mapper(t.items(), buf);
                w.add(buf, &plan.row_of);
            }
        },
        |(w, _)| -> (Vec<u64>, u64, u64) {
            let mut anded = 0u64;
            let partials: Vec<u64> = plan
                .cand_rows
                .iter()
                .map(|rows| w.count_tracked(rows, &mut anded))
                .collect();
            (partials, w.words_built(), anded)
        },
    )?;

    // Order-invariant absorb: per-candidate partials sum element-wise, so
    // every candidate appears exactly once, in input order, and the total
    // is independent of worker completion order.
    let mut totals = vec![0u64; candidates.len()];
    let mut words_built = 0u64;
    let mut words_anded = 0u64;
    for (partials, built, anded) in parts {
        for (t, p) in totals.iter_mut().zip(partials) {
            *t += p;
        }
        words_built += built;
        words_anded += anded;
    }
    let ones: u64 = totals.iter().sum();
    let rows = plan.rows;
    let n_candidates = totals.len();
    obs.emit(|| Event::BackendBuild {
        backend: "bitmap".to_string(),
        items: rows,
        words: words_built,
    });
    obs.emit(|| Event::BackendCount {
        backend: "bitmap".to_string(),
        candidates: n_candidates,
        words: words_anded,
        ones,
    });
    obs.bump(metric::BITMAP_WORDS_BUILT, words_built);
    obs.bump(metric::BITMAP_WORDS_ANDED, words_anded);
    obs.bump(metric::BITMAP_ONES, ones);

    let counts: Vec<(Itemset, u64)> = candidates.into_iter().zip(totals).collect();
    Ok(PassRun {
        counts,
        transactions,
        threads,
    })
}

/// The level-1 pass: per-item supports over one (possibly parallel) scan.
///
/// Returns `counts[i]` = support of `ItemId(i)` for `i < num_items`
/// (mapped items at or above `num_items` are ignored, matching the
/// sequential level-1 pass), plus the number of transactions scanned.
pub fn count_items_parallel<S: TransactionSource + ?Sized>(
    source: &S,
    num_items: usize,
    mapper: &SyncMapper<'_>,
    parallelism: Parallelism,
) -> io::Result<(Vec<u64>, u64)> {
    count_items_parallel_ctrl(
        source,
        num_items,
        mapper,
        parallelism,
        None,
        &Obs::disabled(),
    )
}

/// [`count_items_parallel`] with cooperative cancellation (see
/// [`count_mixed_parallel_ctrl`]).
// negassoc-lint: allow(L010) -- parallel_pass_ctrl polls at block boundaries; the worker closure counts one dispatched block and the merge loop is in-memory
pub fn count_items_parallel_ctrl<S: TransactionSource + ?Sized>(
    source: &S,
    num_items: usize,
    mapper: &SyncMapper<'_>,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> io::Result<(Vec<u64>, u64)> {
    let threads = parallelism.resolve();
    let (parts, transactions) = parallel_pass_ctrl(
        source,
        threads,
        DEFAULT_BLOCK_SIZE,
        ctrl,
        obs,
        || (vec![0u64; num_items], Vec::<ItemId>::new()),
        |(counts, buf), block| {
            for t in block.iter() {
                mapper(t.items(), buf);
                for &it in buf.iter() {
                    if let Some(c) = counts.get_mut(it.index()) {
                        *c += 1;
                    }
                }
            }
        },
        |(counts, _)| counts,
    )?;
    let mut merged = vec![0u64; num_items];
    for part in parts {
        for (m, p) in merged.iter_mut().zip(part) {
            *m += p;
        }
    }
    Ok((merged, transactions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_txdb::{TransactionDb, TransactionDbBuilder};

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    fn sample_db(n: usize) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            let a = (i % 7) as u32;
            let c = (i % 5 + 7) as u32;
            let d = (i % 3 + 12) as u32;
            b.add([ItemId(a), ItemId(c), ItemId(d)]);
        }
        b.build()
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let db = sample_db(500);
        let candidates: Vec<Itemset> = vec![
            set(&[0, 7]),
            set(&[1, 8, 12]),
            set(&[3]),
            set(&[6, 11, 14]),
            set(&[2, 9]),
        ];
        let mut sequential = crate::count::count_mixed(
            &db,
            candidates.clone(),
            CountingBackend::HashTree,
            &mut crate::count::identity_mapper,
        )
        .unwrap();
        sequential.sort();
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Threads(7),
            Parallelism::Auto,
        ] {
            for backend in [CountingBackend::HashTree, CountingBackend::SubsetHashMap] {
                let run = count_mixed_parallel(
                    &db,
                    candidates.clone(),
                    backend,
                    &identity_sync_mapper,
                    parallelism,
                )
                .unwrap();
                assert_eq!(run.transactions, 500);
                assert_eq!(run.threads, parallelism.resolve());
                let mut parallel = run.counts;
                parallel.sort();
                assert_eq!(parallel, sequential, "{parallelism:?} {backend:?}");
            }
        }
    }

    /// The merge is total: candidates that never occur (support 0) are
    /// reported, and the output preserves the caller's candidate order.
    #[test]
    fn merge_is_total_and_order_preserving() {
        let db = sample_db(50);
        let candidates = vec![set(&[99]), set(&[0, 7]), set(&[98, 99])];
        let run = count_mixed_parallel(
            &db,
            candidates.clone(),
            CountingBackend::HashTree,
            &identity_sync_mapper,
            Parallelism::Threads(3),
        )
        .unwrap();
        assert_eq!(run.counts.len(), 3);
        for (i, (cand, _)) in run.counts.iter().enumerate() {
            assert_eq!(cand, &candidates[i], "order preserved");
        }
        assert_eq!(run.counts[0].1, 0);
        assert_eq!(run.counts[2].1, 0);
        assert!(run.counts[1].1 > 0);
    }

    #[test]
    fn empty_candidates_make_no_pass() {
        let db = sample_db(10);
        let pc = negassoc_txdb::PassCounter::new(db);
        let run = count_mixed_parallel(
            &pc,
            Vec::new(),
            CountingBackend::HashTree,
            &identity_sync_mapper,
            Parallelism::Threads(4),
        )
        .unwrap();
        assert!(run.counts.is_empty());
        assert_eq!(pc.passes(), 0);
    }

    #[test]
    fn item_counting_matches_sequential() {
        let db = sample_db(300);
        let mut expect = vec![0u64; 15];
        db.pass(&mut |t| {
            for &it in t.items() {
                expect[it.index()] += 1;
            }
        })
        .unwrap();
        for threads in [1, 2, 5] {
            let (got, transactions) = count_items_parallel(
                &db,
                15,
                &identity_sync_mapper,
                Parallelism::Threads(threads),
            )
            .unwrap();
            assert_eq!(got, expect, "{threads} threads");
            assert_eq!(transactions, 300);
        }
        // Items beyond the requested bound are ignored, not a panic.
        let (short, _) =
            count_items_parallel(&db, 3, &identity_sync_mapper, Parallelism::Threads(2)).unwrap();
        assert_eq!(short, expect[..3]);
    }

    /// A mapper that extends transactions (the taxonomy case) behaves
    /// identically across thread counts.
    #[test]
    fn extending_mapper_is_deterministic() {
        let db = sample_db(200);
        // Map every item onto itself plus a synthetic "category" 20.
        let extend = |items: &[ItemId], buf: &mut Vec<ItemId>| {
            buf.clear();
            buf.extend_from_slice(items);
            buf.push(ItemId(20));
        };
        let baseline = count_mixed_parallel(
            &db,
            vec![set(&[20]), set(&[0, 20])],
            CountingBackend::SubsetHashMap,
            &extend,
            Parallelism::Sequential,
        )
        .unwrap();
        for threads in [2, 4] {
            let run = count_mixed_parallel(
                &db,
                vec![set(&[20]), set(&[0, 20])],
                CountingBackend::SubsetHashMap,
                &extend,
                Parallelism::Threads(threads),
            )
            .unwrap();
            assert_eq!(run.counts, baseline.counts);
        }
        assert_eq!(baseline.counts[0].1, 200);
    }
}
