//! Multi-threaded support counting over an in-memory database.
//!
//! The pass-based miners stream any [`negassoc_txdb::TransactionSource`];
//! when the database is in memory it can instead be split into horizontal
//! partitions (à la Savasere et al.'s Partition algorithm) and counted on
//! one thread each, merging per-candidate counts at the end. Counts are
//! exact — partition counting is additive. Uses `std::thread::scope`, no
//! extra dependencies.

use crate::count::CountingBackend;
use crate::hash_tree::HashTree;
use crate::itemset::Itemset;
use negassoc_taxonomy::fxhash::FxHashMap;
use negassoc_taxonomy::ItemId;
use negassoc_txdb::partition::partitions;
use negassoc_txdb::{TransactionDb, TransactionSource};

/// Count mixed-size `candidates` over `db` using `threads` worker threads.
///
/// The `mapper` transforms each transaction before counting (e.g. taxonomy
/// extension); it must be `Sync` because all workers share it.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn count_mixed_parallel(
    db: &TransactionDb,
    candidates: Vec<Itemset>,
    backend: CountingBackend,
    mapper: &(dyn Fn(&[ItemId], &mut Vec<ItemId>) + Sync),
    threads: usize,
) -> Vec<(Itemset, u64)> {
    assert!(threads > 0, "need at least one thread");
    if candidates.is_empty() {
        return Vec::new();
    }
    if threads == 1 || db.len() < 2 {
        return count_part(&db, &candidates, backend, mapper);
    }
    let parts = partitions(db, threads);
    let mut merged: FxHashMap<Itemset, u64> = candidates.iter().cloned().map(|c| (c, 0)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|part| {
                let cands = &candidates;
                scope.spawn(move || count_part(part, cands, backend, mapper))
            })
            .collect();
        for handle in handles {
            // join() only errs when the worker panicked; re-raising that
            // panic on the caller is the contract.
            // negassoc-lint: allow(L001)
            for (set, count) in handle.join().expect("counting worker panicked") {
                // `merged` was seeded with every candidate; workers only
                // return counts for candidates they were handed.
                if let Some(m) = merged.get_mut(&set) {
                    *m += count;
                }
            }
        }
    });
    merged.into_iter().collect()
}

/// Count one partition sequentially (single allocation set per worker).
fn count_part<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: &[Itemset],
    backend: CountingBackend,
    mapper: &(dyn Fn(&[ItemId], &mut Vec<ItemId>) + Sync),
) -> Vec<(Itemset, u64)> {
    // Group by size; reuse the hash tree / map machinery directly.
    let mut by_size: FxHashMap<usize, Vec<Itemset>> = FxHashMap::default();
    for c in candidates {
        by_size.entry(c.len()).or_default().push(c.clone());
    }
    enum C {
        Tree(HashTree),
        Map {
            k: usize,
            map: FxHashMap<Itemset, u64>,
        },
    }
    let mut counters: Vec<C> = by_size
        .into_iter()
        .filter(|(k, _)| *k > 0)
        .map(|(k, cands)| match backend {
            CountingBackend::HashTree => C::Tree(HashTree::build(k, cands)),
            CountingBackend::SubsetHashMap => C::Map {
                k,
                map: cands.into_iter().map(|c| (c, 0)).collect(),
            },
        })
        .collect();
    let mut buf: Vec<ItemId> = Vec::new();
    source
        .pass(&mut |t| {
            mapper(t.items(), &mut buf);
            for c in &mut counters {
                match c {
                    C::Tree(tree) => tree.count_transaction(&buf),
                    C::Map { k, map } => {
                        // Reuse the adaptive probing through the sequential
                        // API by checking containment per candidate (maps
                        // here are small; the tree backend is the fast
                        // path).
                        if buf.len() >= *k {
                            for (cand, count) in map.iter_mut() {
                                if crate::itemset::is_sorted_subset(cand.items(), &buf) {
                                    *count += 1;
                                }
                            }
                        }
                    }
                }
            }
        })
        // in-memory TransactionDb passes never return Err; only a
        // file-backed source can.
        // negassoc-lint: allow(L001)
        .expect("in-memory pass cannot fail");
    counters
        .into_iter()
        .flat_map(|c| match c {
            C::Tree(t) => t.into_counts(),
            C::Map { map, .. } => map.into_iter().collect::<Vec<_>>(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_txdb::TransactionDbBuilder;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    fn sample_db(n: usize) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            let a = (i % 7) as u32;
            let c = (i % 5 + 7) as u32;
            let d = (i % 3 + 12) as u32;
            b.add([ItemId(a), ItemId(c), ItemId(d)]);
        }
        b.build()
    }

    fn identity(items: &[ItemId], buf: &mut Vec<ItemId>) {
        buf.clear();
        buf.extend_from_slice(items);
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let db = sample_db(500);
        let candidates: Vec<Itemset> = vec![
            set(&[0, 7]),
            set(&[1, 8, 12]),
            set(&[3]),
            set(&[6, 11, 14]),
            set(&[2, 9]),
        ];
        let mut sequential = crate::count::count_mixed(
            &db,
            candidates.clone(),
            CountingBackend::HashTree,
            &mut crate::count::identity_mapper,
        )
        .unwrap();
        sequential.sort();
        for threads in [1, 2, 4, 7] {
            for backend in [CountingBackend::HashTree, CountingBackend::SubsetHashMap] {
                let mut parallel =
                    count_mixed_parallel(&db, candidates.clone(), backend, &identity, threads);
                parallel.sort();
                assert_eq!(parallel, sequential, "threads {threads} {backend:?}");
            }
        }
    }

    #[test]
    fn empty_candidates() {
        let db = sample_db(10);
        assert!(
            count_mixed_parallel(&db, Vec::new(), CountingBackend::HashTree, &identity, 4)
                .is_empty()
        );
    }

    #[test]
    fn more_threads_than_transactions() {
        let db = sample_db(3);
        let out = count_mixed_parallel(
            &db,
            vec![set(&[0])],
            CountingBackend::HashTree,
            &identity,
            16,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let db = sample_db(3);
        count_mixed_parallel(
            &db,
            vec![set(&[0])],
            CountingBackend::HashTree,
            &identity,
            0,
        );
    }
}
