//! The **Partition** algorithm (Savasere, Omiecinski & Navathe, VLDB '95 —
//! the negative-association paper's reference [11] and its authors' own
//! prior work): mine each horizontal partition *in memory* for its locally
//! large itemsets, union them into a global candidate set, then verify the
//! candidates with exact counts in one final pass. Two logical reads of
//! the database in total, independent of the deepest itemset level.
//!
//! Correctness: a globally large itemset must be locally large (at the
//! same support *fraction*) in at least one partition — otherwise its
//! total count would be below the threshold — so the union of local
//! results is a superset of the answer and the verification pass makes the
//! result exact.
//!
//! Local mining uses per-partition TID-list intersection
//! ([`negassoc_txdb::vertical`]), as in the original; with a taxonomy the
//! index is generalized, so the same machinery mines generalized itemsets
//! (candidates containing an item and its ancestor are pruned as in
//! [`crate::cumulate`]).

use crate::count::CountingBackend;
use crate::gen::{apriori_gen, pairs_of};
use crate::generalized::{
    extend_filtered, items_of_candidates, prune_ancestor_pairs, AncestorTable,
};
use crate::itemset::{Itemset, LargeItemsets};
use crate::parallel::{
    count_mixed_parallel_ctrl, identity_sync_mapper, CancelToken, Obs, Parallelism, PassStats,
};
use crate::MinSupport;
use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::block::parallel_map;
use negassoc_txdb::obs::{metric, Event};
use negassoc_txdb::partition::partitions;
use negassoc_txdb::shard::ShardAccess;
use negassoc_txdb::vertical::{TidBitmap, TidListIndex};
use negassoc_txdb::{TransactionDb, TransactionSource};
use std::io;

/// What phase-1 local mining needs from a vertical index, satisfied by
/// both the TID-list and the TID-bitmap representation. The backend
/// selects which one each partition/shard builds; both answer exact local
/// supports, so the unioned candidate set — and everything downstream —
/// is identical.
trait LocalIndex {
    /// One past the largest item id with an index slot.
    fn max_item_bound(&self) -> u32;
    /// Support of a single item.
    fn support_1(&self, item: ItemId) -> u64;
    /// Support of an itemset.
    fn support(&self, itemset: &[ItemId]) -> u64;
}

impl LocalIndex for TidListIndex {
    fn max_item_bound(&self) -> u32 {
        TidListIndex::max_item_bound(self)
    }

    fn support_1(&self, item: ItemId) -> u64 {
        TidListIndex::support_1(self, item)
    }

    fn support(&self, itemset: &[ItemId]) -> u64 {
        TidListIndex::support(self, itemset)
    }
}

impl LocalIndex for TidBitmap {
    fn max_item_bound(&self) -> u32 {
        TidBitmap::max_item_bound(self)
    }

    fn support_1(&self, item: ItemId) -> u64 {
        TidBitmap::support_1(self, item)
    }

    fn support(&self, itemset: &[ItemId]) -> u64 {
        TidBitmap::support(self, itemset)
    }
}

/// Build the backend-selected vertical index over one partition/shard.
/// The bitmap build does its category unions once after the pass; the
/// TID-list build extends every transaction during it. Same answers.
fn build_local_index<S: TransactionSource>(
    part: &S,
    tax: Option<&Taxonomy>,
    backend: CountingBackend,
) -> io::Result<Box<dyn LocalIndex>> {
    Ok(match (backend, tax) {
        (CountingBackend::TidBitmap, Some(t)) => Box::new(TidBitmap::build_generalized(part, t)?),
        (CountingBackend::TidBitmap, None) => Box::new(TidBitmap::build(part)?),
        (_, Some(t)) => Box::new(TidListIndex::build_generalized(part, t)?),
        (_, None) => Box::new(TidListIndex::build(part)?),
    })
}

/// Mine all (generalized, when `tax` is given) large itemsets with the
/// Partition algorithm over `num_partitions` partitions.
///
/// With a multi-threaded [`Parallelism`] policy, phase 1 mines partitions
/// concurrently (each worker builds and mines its own TID-list indexes)
/// and the phase-2 verification pass runs on the shared worker-pool
/// counter. Local results are unioned in partition order and the global
/// candidate set is sorted before counting, so the result — and every
/// downstream byte of output — is identical for every policy.
///
/// # Panics
/// Panics when `num_partitions == 0`.
pub fn partition_mine(
    db: &TransactionDb,
    tax: Option<&Taxonomy>,
    min_support: MinSupport,
    num_partitions: usize,
    backend: CountingBackend,
    parallelism: Parallelism,
) -> io::Result<LargeItemsets> {
    partition_mine_ctrl(
        db,
        tax,
        min_support,
        num_partitions,
        backend,
        parallelism,
        None,
        &Obs::disabled(),
    )
}

/// [`partition_mine`] under an optional cancel token: phase 1 checks
/// `ctrl` before mining each partition and phase 2 checks it at block
/// boundaries; a cancelled run returns the token's
/// [`io::ErrorKind::Interrupted`] error (see [`negassoc_txdb::ctrl`]).
/// The phase-2 verification pass reports to `obs` under the
/// `"partition_verify"` label.
///
/// # Panics
/// Panics when `num_partitions == 0`.
#[allow(clippy::too_many_arguments)]
pub fn partition_mine_ctrl(
    db: &TransactionDb,
    tax: Option<&Taxonomy>,
    min_support: MinSupport,
    num_partitions: usize,
    backend: CountingBackend,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> io::Result<LargeItemsets> {
    assert!(num_partitions > 0, "need at least one partition");
    let total = db.len() as u64;
    let global_minsup = min_support.to_count(total);
    // The support *fraction* drives the local thresholds (see module docs).
    let frac = if total == 0 {
        1.0
    } else {
        global_minsup as f64 / total as f64
    };
    let ancestors = tax.map(AncestorTable::new);

    // Phase 1: locally large itemsets, mined per partition (concurrently
    // when allowed) and unioned in partition order.
    let parts = partitions(db, num_partitions);
    let ancestors_ref = ancestors.as_ref();
    let locals = parallel_map(parts, parallelism.resolve(), |part| -> io::Result<_> {
        if let Some(c) = ctrl {
            c.check()?;
        }
        let index = build_local_index(&part, tax, backend)?;
        let local_minsup = ((frac * part.len() as f64).ceil() as u64).max(1);
        let mut local: FxHashSet<Itemset> = FxHashSet::default();
        local_mine(index.as_ref(), local_minsup, ancestors_ref, &mut local);
        if let Some(c) = ctrl {
            c.record_progress(part.len() as u64);
        }
        Ok(local)
    });
    let mut global_candidates: FxHashSet<Itemset> = FxHashSet::default();
    for local in locals {
        global_candidates.extend(local?);
    }

    verify_candidates(
        db,
        total,
        global_minsup,
        global_candidates,
        ancestors.as_ref(),
        backend,
        parallelism,
        ctrl,
        obs,
    )
}

/// The Partition algorithm over a *sharded* database: phase 1 mines each
/// shard one at a time — loaded, mined for its locally large itemsets,
/// then dropped, so peak memory is bounded by the largest shard no matter
/// how many the manifest lists — and phase 2 verifies the unioned
/// candidates with one exact streaming pass over `source`. Quarantined
/// shards ([`ShardAccess::load_shard`] returning `None`) are skipped in
/// both phases: the result is exact over the delivered transactions,
/// identical to mining the healthy shards alone.
///
/// `source` and `shards` must be views of the same database (normally a
/// [`negassoc_txdb::shard::ShardedSource`] and its own
/// [`TransactionSource::as_shards`] handle); each shard plays the role a
/// horizontal partition plays in [`partition_mine_ctrl`], so the same
/// local-fraction correctness argument applies.
#[allow(clippy::too_many_arguments)]
pub fn partition_mine_shards<S: TransactionSource + ?Sized>(
    source: &S,
    shards: &dyn ShardAccess,
    tax: Option<&Taxonomy>,
    min_support: MinSupport,
    backend: CountingBackend,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> io::Result<LargeItemsets> {
    let total = source.count_transactions()?;
    let global_minsup = min_support.to_count(total);
    let frac = if total == 0 {
        1.0
    } else {
        global_minsup as f64 / total as f64
    };
    let ancestors = tax.map(AncestorTable::new);

    // Phase 1: shard-local mining, strictly one shard in memory at a time.
    let mut global_candidates: FxHashSet<Itemset> = FxHashSet::default();
    for i in 0..shards.shard_count() {
        if let Some(c) = ctrl {
            c.check()?;
        }
        let Some(db) = shards.load_shard(i)? else {
            continue; // quarantined
        };
        if db.is_empty() {
            continue;
        }
        let index = build_local_index(&db, tax, backend)?;
        let local_minsup = ((frac * db.len() as f64).ceil() as u64).max(1);
        local_mine(
            index.as_ref(),
            local_minsup,
            ancestors.as_ref(),
            &mut global_candidates,
        );
        if let Some(c) = ctrl {
            c.record_progress(db.len() as u64);
        }
    }

    verify_candidates(
        source,
        total,
        global_minsup,
        global_candidates,
        ancestors.as_ref(),
        backend,
        parallelism,
        ctrl,
        obs,
    )
}

/// Phase 2 of both partition variants: one exact counting pass over
/// `source` confirming which unioned local candidates are globally large.
#[allow(clippy::too_many_arguments)]
fn verify_candidates<S: TransactionSource + ?Sized>(
    source: &S,
    total: u64,
    global_minsup: u64,
    global_candidates: FxHashSet<Itemset>,
    ancestors: Option<&AncestorTable>,
    backend: CountingBackend,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> io::Result<LargeItemsets> {
    let mut large = LargeItemsets::new(total, global_minsup);
    if global_candidates.is_empty() {
        return Ok(large);
    }
    let mut candidates: Vec<Itemset> = global_candidates.into_iter().collect();
    // Sorted candidates decouple the verification pass (and the insertion
    // order of everything downstream) from hash-set iteration order.
    candidates.sort_unstable();
    let verify_size = candidates.len();
    obs.emit(|| Event::CandidateSet {
        label: "partition_verify".to_string(),
        size: verify_size,
    });
    obs.emit(|| Event::PassStart {
        label: "partition_verify".to_string(),
        candidates: verify_size,
    });
    let verify_started = std::time::Instant::now();
    let counted = match ancestors {
        Some(anc) => {
            let needed = items_of_candidates(&candidates);
            let mapper =
                |items: &[ItemId], out: &mut Vec<ItemId>| extend_filtered(items, anc, &needed, out);
            count_mixed_parallel_ctrl(source, candidates, backend, &mapper, parallelism, ctrl, obs)?
        }
        None => count_mixed_parallel_ctrl(
            source,
            candidates,
            backend,
            &identity_sync_mapper,
            parallelism,
            ctrl,
            obs,
        )?,
    };
    obs.emit(|| Event::PassEnd {
        stats: PassStats {
            pass: 2,
            label: "partition_verify".to_string(),
            candidates: verify_size,
            transactions: counted.transactions,
            threads: counted.threads,
            wall: verify_started.elapsed(),
        },
    });
    obs.bump(metric::PASSES_COMPLETED, 1);
    for (set, count) in counted.counts {
        if let Some(c) = ctrl {
            c.check()?;
        }
        if count >= global_minsup {
            large.insert(set, count);
        }
    }
    Ok(large)
}

/// Levelwise local mining against a partition's vertical index (TID-list
/// or TID-bitmap, per the selected backend).
fn local_mine(
    index: &dyn LocalIndex,
    local_minsup: u64,
    ancestors: Option<&AncestorTable>,
    out: &mut FxHashSet<Itemset>,
) {
    // Local L1.
    let mut large_1: Vec<ItemId> = Vec::new();
    for raw in 0..index.max_item_bound() {
        let item = ItemId(raw);
        if index.support_1(item) >= local_minsup {
            large_1.push(item);
            out.insert(Itemset::singleton(item));
        }
    }
    // Levels >= 2 by intersection.
    let mut frontier: Vec<Itemset> = Vec::new();
    let mut k = 2;
    loop {
        let candidates = if k == 2 {
            let pairs = pairs_of(&large_1);
            match ancestors {
                Some(anc) => prune_ancestor_pairs(pairs, anc),
                None => pairs,
            }
        } else {
            apriori_gen(&frontier)
        };
        if candidates.is_empty() {
            return;
        }
        frontier.clear();
        for cand in candidates {
            if index.support(cand.items()) >= local_minsup {
                out.insert(cand.clone());
                frontier.push(cand);
            }
        }
        if frontier.is_empty() {
            return;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::basic::tests::sa95;
    use crate::cumulate::cumulate;
    use negassoc_txdb::TransactionDbBuilder;

    fn textbook_db() -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1), ItemId(3), ItemId(4)]);
        b.add([ItemId(2), ItemId(3), ItemId(5)]);
        b.add([ItemId(1), ItemId(2), ItemId(3), ItemId(5)]);
        b.add([ItemId(2), ItemId(5)]);
        b.build()
    }

    fn assert_same(a: &LargeItemsets, b: &LargeItemsets) {
        assert_eq!(a.total(), b.total());
        for (set, sup) in a.iter() {
            assert_eq!(b.support_of_set(set), Some(sup), "{set:?}");
        }
    }

    #[test]
    fn flat_matches_apriori_for_any_partition_count() {
        let db = textbook_db();
        let reference = apriori(&db, MinSupport::Count(2), CountingBackend::HashTree).unwrap();
        for parts in [1, 2, 3, 4] {
            let got = partition_mine(
                &db,
                None,
                MinSupport::Count(2),
                parts,
                CountingBackend::HashTree,
                Parallelism::Threads(parts),
            )
            .unwrap();
            assert_same(&reference, &got);
        }
    }

    #[test]
    fn generalized_matches_cumulate() {
        let (tax, db, _) = sa95();
        let reference = cumulate(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        for parts in [1, 2, 3] {
            let got = partition_mine(
                &db,
                Some(&tax),
                MinSupport::Count(2),
                parts,
                CountingBackend::SubsetHashMap,
                Parallelism::Threads(2),
            )
            .unwrap();
            assert_same(&reference, &got);
        }
    }

    #[test]
    fn empty_database() {
        let db = TransactionDbBuilder::new().build();
        let got = partition_mine(
            &db,
            None,
            MinSupport::Fraction(0.1),
            4,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(got.total(), 0);
    }

    #[test]
    fn fractional_support_thresholds() {
        let db = textbook_db();
        let reference = apriori(&db, MinSupport::Fraction(0.5), CountingBackend::HashTree).unwrap();
        let got = partition_mine(
            &db,
            None,
            MinSupport::Fraction(0.5),
            2,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_same(&reference, &got);
    }

    /// In-memory stand-in for a sharded database: `None` = quarantined.
    struct FakeShards(Vec<Option<TransactionDb>>);

    impl ShardAccess for FakeShards {
        fn shard_count(&self) -> usize {
            self.0.len()
        }

        fn load_shard(&self, index: usize) -> io::Result<Option<TransactionDb>> {
            Ok(self.0[index].as_ref().map(clone_db))
        }
    }

    fn clone_db(db: &TransactionDb) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        db.pass(&mut |t| b.add_with_tid(t.tid(), t.items().iter().copied()))
            .unwrap();
        b.build()
    }

    fn concat(dbs: &[&TransactionDb]) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for db in dbs {
            db.pass(&mut |t| b.add_with_tid(t.tid(), t.items().iter().copied()))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn sharded_matches_apriori_and_skips_quarantined_shards() {
        let mut a = TransactionDbBuilder::new();
        a.add([ItemId(1), ItemId(3), ItemId(4)]);
        a.add([ItemId(2), ItemId(3), ItemId(5)]);
        let a = a.build();
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1), ItemId(2), ItemId(3), ItemId(5)]);
        b.add([ItemId(2), ItemId(5)]);
        let b = b.build();

        // All shards healthy: identical to apriori over the whole database.
        let whole = concat(&[&a, &b]);
        let reference = apriori(&whole, MinSupport::Count(2), CountingBackend::HashTree).unwrap();
        let shards = FakeShards(vec![Some(clone_db(&a)), Some(clone_db(&b))]);
        let got = partition_mine_shards(
            &whole,
            &shards,
            None,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Threads(2),
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert_same(&reference, &got);

        // Shard b quarantined: identical to mining shard a alone.
        let reference = apriori(&a, MinSupport::Count(1), CountingBackend::HashTree).unwrap();
        let shards = FakeShards(vec![Some(clone_db(&a)), None]);
        let got = partition_mine_shards(
            &a,
            &shards,
            None,
            MinSupport::Count(1),
            CountingBackend::HashTree,
            Parallelism::Sequential,
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert_same(&reference, &got);
    }

    #[test]
    fn sharded_generalized_matches_cumulate() {
        let (tax, db, _) = sa95();
        let reference = cumulate(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        // Split the SA'95 database into three in-memory shards.
        let n = db.len();
        let mut parts: Vec<TransactionDbBuilder> =
            (0..3).map(|_| TransactionDbBuilder::new()).collect();
        let mut i = 0usize;
        db.pass(&mut |t| {
            parts[i * 3 / n].add_with_tid(t.tid(), t.items().iter().copied());
            i += 1;
        })
        .unwrap();
        let shards = FakeShards(parts.into_iter().map(|p| Some(p.build())).collect());
        let got = partition_mine_shards(
            &db,
            &shards,
            Some(&tax),
            MinSupport::Count(2),
            CountingBackend::SubsetHashMap,
            Parallelism::Threads(2),
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert_same(&reference, &got);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let db = textbook_db();
        let _ = partition_mine(
            &db,
            None,
            MinSupport::Count(2),
            0,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        );
    }
}
