//! Level-by-level driver for generalized mining.
//!
//! The paper's *naive* negative-association algorithm interleaves work per
//! level: iteration `k` first mines the generalized large k-itemsets (one
//! pass) and then counts that level's negative candidates (a second pass).
//! [`GenLevelMiner`] exposes exactly that stepping; [`crate::basic`] and
//! [`crate::cumulate`] are thin run-to-completion wrappers around it.

use crate::count::CountingBackend;
use crate::gen::{apriori_gen, pairs_of};
use crate::generalized::{
    extend_filtered, extend_full, items_of_candidates, prune_ancestor_pairs, AncestorTable,
};
use crate::itemset::{Itemset, LargeItemsets};
use crate::parallel::{
    count_items_parallel_ctrl, count_mixed_parallel_ctrl, CancelToken, Obs, Parallelism, PassStats,
};
use crate::MinSupport;
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::obs::{metric, Event};
use negassoc_txdb::TransactionSource;
use std::fmt;
use std::io;
use std::time::Instant;

/// A level's candidate set outgrew the configured cap (see
/// [`GenLevelMiner::with_candidate_cap`]). Carried inside an
/// `io::ErrorKind::OutOfMemory` error so callers can downcast and pick a
/// degraded mining path instead of aborting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateBudgetExceeded {
    /// The level whose candidates overflowed.
    pub level: usize,
    /// How many candidates the level generated.
    pub candidates: usize,
    /// The cap they exceeded.
    pub cap: usize,
}

impl fmt::Display for CandidateBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "level {} generated {} candidates, over the cap of {}",
            self.level, self.candidates, self.cap
        )
    }
}

impl std::error::Error for CandidateBudgetExceeded {}

impl From<CandidateBudgetExceeded> for io::Error {
    fn from(e: CandidateBudgetExceeded) -> Self {
        io::Error::new(io::ErrorKind::OutOfMemory, e)
    }
}

/// Which transaction-extension strategy a [`GenLevelMiner`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GenStrategy {
    /// Extend every transaction with all ancestors (the Basic algorithm).
    Basic,
    /// Filter extension to items used by current candidates (Cumulate).
    #[default]
    Cumulate,
}

/// A snapshot of a [`GenLevelMiner`]'s stepping state, sufficient to
/// [`GenLevelMiner::resume`] mining after the process that produced it is
/// gone. Collections are kept sorted so snapshots of equal state compare
/// (and serialize) identically regardless of hash-map iteration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinerState {
    /// Transactions in the mined database.
    pub num_transactions: u64,
    /// Absolute minimum-support count in effect.
    pub minsup: u64,
    /// Every large itemset found so far, with support, sorted by itemset.
    pub large: Vec<(Itemset, u64)>,
    /// The last completed level's large itemsets (seeds of the next
    /// level's candidates), sorted.
    pub frontier: Vec<Itemset>,
    /// The level [`GenLevelMiner::mine_next_level`] would mine next.
    pub next_k: usize,
    /// `true` once mining has finished.
    pub done: bool,
}

/// Step-wise generalized large-itemset miner.
pub struct GenLevelMiner<'a, S: TransactionSource + ?Sized> {
    source: &'a S,
    ancestors: AncestorTable,
    strategy: GenStrategy,
    backend: CountingBackend,
    parallelism: Parallelism,
    minsup: u64,
    large: LargeItemsets,
    large_1: Vec<ItemId>,
    frontier: Vec<Itemset>,
    next_k: usize,
    done: bool,
    candidate_cap: Option<usize>,
    pass_stats: Vec<PassStats>,
    ctrl: Option<&'a CancelToken>,
    obs: Obs,
}

impl<'a, S: TransactionSource + ?Sized> GenLevelMiner<'a, S> {
    /// Mine level 1 (one pass) and prepare for stepping.
    pub fn new(
        source: &'a S,
        tax: &Taxonomy,
        min_support: MinSupport,
        strategy: GenStrategy,
        backend: CountingBackend,
        parallelism: Parallelism,
    ) -> io::Result<Self> {
        Self::new_with_ctrl(
            source,
            tax,
            min_support,
            strategy,
            backend,
            parallelism,
            None,
        )
    }

    /// [`Self::new`] under a cancel token: the level-1 pass and every
    /// subsequent [`Self::mine_next_level`] check `ctrl` at block and pass
    /// boundaries; a cancelled step returns the token's
    /// [`io::ErrorKind::Interrupted`] error and consumes no miner state.
    pub fn new_with_ctrl(
        source: &'a S,
        tax: &Taxonomy,
        min_support: MinSupport,
        strategy: GenStrategy,
        backend: CountingBackend,
        parallelism: Parallelism,
        ctrl: Option<&'a CancelToken>,
    ) -> io::Result<Self> {
        Self::new_observed(
            source,
            tax,
            min_support,
            strategy,
            backend,
            parallelism,
            ctrl,
            Obs::disabled(),
        )
    }

    /// [`Self::new_with_ctrl`] with an observability handle: the level-1
    /// pass made here (and every subsequent level) emits
    /// [`Event::PassStart`]/[`Event::PassEnd`] to `obs`, and the block
    /// layer below it reports dispatch/merge and scan counters.
    #[allow(clippy::too_many_arguments)]
    // negassoc-lint: allow(L010) -- the level-1 scan polls inside count_items_parallel_ctrl; the remaining loop is a bounded in-memory threshold sweep over item counts
    pub fn new_observed(
        source: &'a S,
        tax: &Taxonomy,
        min_support: MinSupport,
        strategy: GenStrategy,
        backend: CountingBackend,
        parallelism: Parallelism,
        ctrl: Option<&'a CancelToken>,
        obs: Obs,
    ) -> io::Result<Self> {
        let ancestors = AncestorTable::new(tax);
        let started = Instant::now();
        obs.emit(|| Event::PassStart {
            label: "L1".to_string(),
            candidates: tax.len(),
        });
        let mapper = |items: &[ItemId], out: &mut Vec<ItemId>| extend_full(items, &ancestors, out);
        let (counts, num_transactions) =
            count_items_parallel_ctrl(source, tax.len(), &mapper, parallelism, ctrl, &obs)?;
        let pass_stats = vec![PassStats {
            pass: 1,
            label: "L1".to_string(),
            candidates: tax.len(),
            transactions: num_transactions,
            threads: parallelism.resolve(),
            wall: started.elapsed(),
        }];
        obs.emit(|| Event::PassEnd {
            stats: pass_stats[0].clone(),
        });
        obs.bump(metric::PASSES_COMPLETED, 1);
        obs.gauge(metric::LAST_PASS_CANDIDATES, tax.len() as u64);
        let minsup = min_support.to_count(num_transactions);
        let mut large = LargeItemsets::new(num_transactions, minsup);
        let mut large_1 = Vec::new();
        for (idx, &c) in counts.iter().enumerate() {
            if c >= minsup {
                let item = ItemId(idx as u32);
                large_1.push(item);
                large.insert(Itemset::singleton(item), c);
            }
        }
        let done = large_1.is_empty();
        Ok(Self {
            source,
            ancestors,
            strategy,
            backend,
            parallelism,
            minsup,
            large,
            large_1,
            frontier: Vec::new(),
            next_k: 2,
            done,
            candidate_cap: None,
            pass_stats,
            ctrl,
            obs,
        })
    }

    /// Fail a level whose candidate set exceeds `cap` entries with an
    /// `io::ErrorKind::OutOfMemory` error carrying a
    /// [`CandidateBudgetExceeded`], instead of attempting to count it.
    /// The miner's state is untouched by such a failure, so the caller
    /// can hand the database to a memory-bounded algorithm (e.g.
    /// [`crate::partition_mine`]) and continue. `None` (the default)
    /// never fails.
    pub fn with_candidate_cap(mut self, cap: Option<usize>) -> Self {
        self.candidate_cap = cap;
        self
    }

    /// Attach (or detach) a cancel token after construction — the resume
    /// path's counterpart to [`Self::new_with_ctrl`], since
    /// [`Self::resume`] makes no pass of its own.
    pub fn with_ctrl(mut self, ctrl: Option<&'a CancelToken>) -> Self {
        self.ctrl = ctrl;
        self
    }

    /// Attach an observability handle after construction — the resume
    /// path's counterpart to [`Self::new_observed`], since
    /// [`Self::resume`] makes no pass of its own.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The level that [`Self::mine_next_level`] would mine next.
    pub fn next_level(&self) -> usize {
        self.next_k
    }

    /// `true` once no further level can contain large itemsets.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Results mined so far.
    pub fn large(&self) -> &LargeItemsets {
        &self.large
    }

    /// The precomputed ancestor table (shared with negative candidate
    /// generation, which needs the same relation).
    pub fn ancestors(&self) -> &AncestorTable {
        &self.ancestors
    }

    /// Telemetry for every counting pass this miner has made so far, in
    /// execution order. Pass numbers are local to this miner instance
    /// (a resumed miner starts again at 1 — it makes no level-1 pass, so
    /// its first entry is whatever level it counts first).
    pub fn pass_stats(&self) -> &[PassStats] {
        &self.pass_stats
    }

    /// Drain the collected pass telemetry, leaving the miner's log empty.
    pub fn take_pass_stats(&mut self) -> Vec<PassStats> {
        std::mem::take(&mut self.pass_stats)
    }

    /// Export the stepping state for checkpointing. No database pass.
    pub fn state(&self) -> MinerState {
        let mut large: Vec<(Itemset, u64)> =
            self.large.iter().map(|(s, c)| (s.clone(), c)).collect();
        large.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut frontier = self.frontier.clone();
        frontier.sort_unstable();
        MinerState {
            num_transactions: self.large.num_transactions(),
            minsup: self.minsup,
            large,
            frontier,
            next_k: self.next_k,
            done: self.done,
        }
    }

    /// Rebuild a miner from a [`MinerState`] snapshot without re-mining the
    /// completed levels (and without the level-1 pass [`Self::new`] makes).
    /// The caller must supply the same database, taxonomy and parameters
    /// the snapshot was taken under; the resumed miner then finds exactly
    /// the large itemsets an uninterrupted run would.
    pub fn resume(
        source: &'a S,
        tax: &Taxonomy,
        strategy: GenStrategy,
        backend: CountingBackend,
        parallelism: Parallelism,
        state: MinerState,
    ) -> Self {
        let ancestors = AncestorTable::new(tax);
        let mut large = LargeItemsets::new(state.num_transactions, state.minsup);
        let mut large_1 = Vec::new();
        for (set, count) in state.large {
            if let [only] = set.items() {
                large_1.push(*only);
            }
            large.insert(set, count);
        }
        large_1.sort_unstable();
        Self {
            source,
            ancestors,
            strategy,
            backend,
            parallelism,
            minsup: state.minsup,
            large,
            large_1,
            frontier: state.frontier,
            next_k: state.next_k,
            done: state.done,
            candidate_cap: None,
            pass_stats: Vec::new(),
            ctrl: None,
            obs: Obs::disabled(),
        }
    }

    /// Mine one more level (one database pass). Returns the number of large
    /// itemsets found at that level, or `None` when mining has finished.
    pub fn mine_next_level(&mut self) -> io::Result<Option<usize>> {
        if self.done {
            return Ok(None);
        }
        if let Some(c) = self.ctrl {
            c.check()?;
        }
        let k = self.next_k;
        let candidates = if k == 2 {
            prune_ancestor_pairs(pairs_of(&self.large_1), &self.ancestors)
        } else {
            apriori_gen(&self.frontier)
        };
        self.obs.emit(|| Event::CandidateSet {
            label: format!("L{k}"),
            size: candidates.len(),
        });
        if candidates.is_empty() {
            self.done = true;
            return Ok(None);
        }
        if let Some(cap) = self.candidate_cap {
            if candidates.len() > cap {
                return Err(CandidateBudgetExceeded {
                    level: k,
                    candidates: candidates.len(),
                    cap,
                }
                .into());
            }
        }
        let started = Instant::now();
        self.obs.emit(|| Event::PassStart {
            label: format!("L{k}"),
            candidates: candidates.len(),
        });
        let run = match self.strategy {
            GenStrategy::Basic => {
                let ancestors = &self.ancestors;
                let mapper =
                    |items: &[ItemId], out: &mut Vec<ItemId>| extend_full(items, ancestors, out);
                count_mixed_parallel_ctrl(
                    self.source,
                    candidates,
                    self.backend,
                    &mapper,
                    self.parallelism,
                    self.ctrl,
                    &self.obs,
                )?
            }
            GenStrategy::Cumulate => {
                let needed = items_of_candidates(&candidates);
                let ancestors = &self.ancestors;
                let mapper = |items: &[ItemId], out: &mut Vec<ItemId>| {
                    extend_filtered(items, ancestors, &needed, out)
                };
                count_mixed_parallel_ctrl(
                    self.source,
                    candidates,
                    self.backend,
                    &mapper,
                    self.parallelism,
                    self.ctrl,
                    &self.obs,
                )?
            }
        };
        let stats = PassStats {
            pass: self.pass_stats.len() as u64 + 1,
            label: format!("L{k}"),
            candidates: run.counts.len(),
            transactions: run.transactions,
            threads: run.threads,
            wall: started.elapsed(),
        };
        self.obs.emit(|| Event::PassEnd {
            stats: stats.clone(),
        });
        self.obs.bump(metric::PASSES_COMPLETED, 1);
        self.obs
            .gauge(metric::LAST_PASS_CANDIDATES, stats.candidates as u64);
        self.pass_stats.push(stats);
        self.frontier.clear();
        for (set, count) in run.counts {
            if count >= self.minsup {
                self.frontier.push(set.clone());
                self.large.insert(set, count);
            }
        }
        let found = self.frontier.len();
        if found == 0 {
            self.done = true;
        } else {
            self.next_k += 1;
        }
        Ok(Some(found))
    }

    /// Run every remaining level and return the complete result.
    pub fn run_to_completion(mut self) -> io::Result<LargeItemsets> {
        while self.mine_next_level()?.is_some() {}
        Ok(self.large)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::tests::sa95;

    #[test]
    fn stepping_matches_run_to_completion() {
        let (tax, db, _) = sa95();
        let stepped = {
            let mut m = GenLevelMiner::new(
                &db,
                &tax,
                MinSupport::Count(2),
                GenStrategy::Cumulate,
                CountingBackend::HashTree,
                Parallelism::Sequential,
            )
            .unwrap();
            let mut per_level = Vec::new();
            while let Some(found) = m.mine_next_level().unwrap() {
                per_level.push(found);
            }
            assert!(m.is_done());
            assert_eq!(m.mine_next_level().unwrap(), None);
            (per_level, m.large().total())
        };
        let full = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(2),
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap()
        .run_to_completion()
        .unwrap();
        assert_eq!(stepped.1, full.total());
        assert_eq!(stepped.0, vec![2]); // two large 2-itemsets, then done
    }

    #[test]
    fn candidate_cap_fails_typed_and_leaves_state_intact() {
        let (tax, db, _) = sa95();
        let mut m = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(2),
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap()
        .with_candidate_cap(Some(0));
        let before = m.state();
        let err = m.mine_next_level().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        let inner = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<CandidateBudgetExceeded>())
            .expect("budget errors carry CandidateBudgetExceeded");
        assert_eq!(inner.level, 2);
        assert_eq!(inner.cap, 0);
        assert!(inner.candidates > 0);
        assert!(inner.to_string().contains("over the cap"));
        // The failure consumed no state: lifting the cap resumes normally.
        assert_eq!(m.state(), before);
        let unlimited = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(2),
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap()
        .with_candidate_cap(Some(1000))
        .run_to_completion()
        .unwrap();
        let mut m = m.with_candidate_cap(None);
        while m.mine_next_level().unwrap().is_some() {}
        assert_eq!(m.large().total(), unlimited.total());
    }

    #[test]
    fn resume_from_snapshot_matches_uninterrupted_run() {
        let (tax, db, _) = sa95();
        let full = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(2),
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap()
        .run_to_completion()
        .unwrap();

        // Interrupt after level 1, snapshot, resume in a "new process".
        let state = {
            let m = GenLevelMiner::new(
                &db,
                &tax,
                MinSupport::Count(2),
                GenStrategy::Cumulate,
                CountingBackend::HashTree,
                Parallelism::Sequential,
            )
            .unwrap();
            m.state()
        };
        assert_eq!(state.next_k, 2);
        assert!(!state.done);
        let resumed = GenLevelMiner::resume(
            &db,
            &tax,
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
            state,
        )
        .run_to_completion()
        .unwrap();

        assert_eq!(resumed.total(), full.total());
        assert_eq!(resumed.num_transactions(), full.num_transactions());
        assert_eq!(resumed.min_support_count(), full.min_support_count());
        for (set, support) in full.iter() {
            assert_eq!(resumed.support_of_set(set), Some(support));
        }
        // Snapshots of equal state are identical (sorted collections).
        let a = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(2),
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap()
        .state();
        let b = GenLevelMiner::resume(
            &db,
            &tax,
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
            Parallelism::Sequential,
            a.clone(),
        )
        .state();
        assert_eq!(a, b);
    }

    #[test]
    fn no_large_singletons_finishes_immediately() {
        let (tax, db, _) = sa95();
        let m = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(100),
            GenStrategy::Basic,
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        assert!(m.is_done());
        assert_eq!(m.large().total(), 0);
        let _ = db;
    }
}
