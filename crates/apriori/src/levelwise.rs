//! Level-by-level driver for generalized mining.
//!
//! The paper's *naive* negative-association algorithm interleaves work per
//! level: iteration `k` first mines the generalized large k-itemsets (one
//! pass) and then counts that level's negative candidates (a second pass).
//! [`GenLevelMiner`] exposes exactly that stepping; [`crate::basic`] and
//! [`crate::cumulate`] are thin run-to-completion wrappers around it.

use crate::count::{count_candidates, CountingBackend};
use crate::gen::{apriori_gen, pairs_of};
use crate::generalized::{
    extend_filtered, extend_full, items_of_candidates, prune_ancestor_pairs, AncestorTable,
};
use crate::itemset::{Itemset, LargeItemsets};
use crate::MinSupport;
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::TransactionSource;
use std::io;

/// Which transaction-extension strategy a [`GenLevelMiner`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GenStrategy {
    /// Extend every transaction with all ancestors (the Basic algorithm).
    Basic,
    /// Filter extension to items used by current candidates (Cumulate).
    #[default]
    Cumulate,
}

/// Step-wise generalized large-itemset miner.
pub struct GenLevelMiner<'a, S: TransactionSource + ?Sized> {
    source: &'a S,
    ancestors: AncestorTable,
    strategy: GenStrategy,
    backend: CountingBackend,
    minsup: u64,
    large: LargeItemsets,
    large_1: Vec<ItemId>,
    frontier: Vec<Itemset>,
    next_k: usize,
    done: bool,
}

impl<'a, S: TransactionSource + ?Sized> GenLevelMiner<'a, S> {
    /// Mine level 1 (one pass) and prepare for stepping.
    pub fn new(
        source: &'a S,
        tax: &Taxonomy,
        min_support: MinSupport,
        strategy: GenStrategy,
        backend: CountingBackend,
    ) -> io::Result<Self> {
        let ancestors = AncestorTable::new(tax);
        let mut counts: Vec<u64> = vec![0; tax.len()];
        let mut num_transactions = 0u64;
        let mut buf: Vec<ItemId> = Vec::new();
        source.pass(&mut |t| {
            num_transactions += 1;
            extend_full(t.items(), &ancestors, &mut buf);
            for &it in &buf {
                if let Some(c) = counts.get_mut(it.index()) {
                    *c += 1;
                }
            }
        })?;
        let minsup = min_support.to_count(num_transactions);
        let mut large = LargeItemsets::new(num_transactions, minsup);
        let mut large_1 = Vec::new();
        for (idx, &c) in counts.iter().enumerate() {
            if c >= minsup {
                let item = ItemId(idx as u32);
                large_1.push(item);
                large.insert(Itemset::singleton(item), c);
            }
        }
        let done = large_1.is_empty();
        Ok(Self {
            source,
            ancestors,
            strategy,
            backend,
            minsup,
            large,
            large_1,
            frontier: Vec::new(),
            next_k: 2,
            done,
        })
    }

    /// The level that [`Self::mine_next_level`] would mine next.
    pub fn next_level(&self) -> usize {
        self.next_k
    }

    /// `true` once no further level can contain large itemsets.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Results mined so far.
    pub fn large(&self) -> &LargeItemsets {
        &self.large
    }

    /// The precomputed ancestor table (shared with negative candidate
    /// generation, which needs the same relation).
    pub fn ancestors(&self) -> &AncestorTable {
        &self.ancestors
    }

    /// Mine one more level (one database pass). Returns the number of large
    /// itemsets found at that level, or `None` when mining has finished.
    pub fn mine_next_level(&mut self) -> io::Result<Option<usize>> {
        if self.done {
            return Ok(None);
        }
        let k = self.next_k;
        let candidates = if k == 2 {
            prune_ancestor_pairs(pairs_of(&self.large_1), &self.ancestors)
        } else {
            apriori_gen(&self.frontier)
        };
        if candidates.is_empty() {
            self.done = true;
            return Ok(None);
        }
        let counted = match self.strategy {
            GenStrategy::Basic => {
                let ancestors = &self.ancestors;
                let mut mapper =
                    |items: &[ItemId], out: &mut Vec<ItemId>| extend_full(items, ancestors, out);
                count_candidates(self.source, candidates, self.backend, &mut mapper)?
            }
            GenStrategy::Cumulate => {
                let needed = items_of_candidates(&candidates);
                let ancestors = &self.ancestors;
                let mut mapper = |items: &[ItemId], out: &mut Vec<ItemId>| {
                    extend_filtered(items, ancestors, &needed, out)
                };
                count_candidates(self.source, candidates, self.backend, &mut mapper)?
            }
        };
        self.frontier.clear();
        for (set, count) in counted {
            if count >= self.minsup {
                self.frontier.push(set.clone());
                self.large.insert(set, count);
            }
        }
        let found = self.frontier.len();
        if found == 0 {
            self.done = true;
        } else {
            self.next_k += 1;
        }
        Ok(Some(found))
    }

    /// Run every remaining level and return the complete result.
    pub fn run_to_completion(mut self) -> io::Result<LargeItemsets> {
        while self.mine_next_level()?.is_some() {}
        Ok(self.large)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::tests::sa95;

    #[test]
    fn stepping_matches_run_to_completion() {
        let (tax, db, _) = sa95();
        let stepped = {
            let mut m = GenLevelMiner::new(
                &db,
                &tax,
                MinSupport::Count(2),
                GenStrategy::Cumulate,
                CountingBackend::HashTree,
            )
            .unwrap();
            let mut per_level = Vec::new();
            while let Some(found) = m.mine_next_level().unwrap() {
                per_level.push(found);
            }
            assert!(m.is_done());
            assert_eq!(m.mine_next_level().unwrap(), None);
            (per_level, m.large().total())
        };
        let full = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(2),
            GenStrategy::Cumulate,
            CountingBackend::HashTree,
        )
        .unwrap()
        .run_to_completion()
        .unwrap();
        assert_eq!(stepped.1, full.total());
        assert_eq!(stepped.0, vec![2]); // two large 2-itemsets, then done
    }

    #[test]
    fn no_large_singletons_finishes_immediately() {
        let (tax, db, _) = sa95();
        let m = GenLevelMiner::new(
            &db,
            &tax,
            MinSupport::Count(100),
            GenStrategy::Basic,
            CountingBackend::HashTree,
        )
        .unwrap();
        assert!(m.is_done());
        assert_eq!(m.large().total(), 0);
        let _ = db;
    }
}
