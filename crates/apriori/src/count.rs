//! Support-counting backends.
//!
//! Every pass-based miner in this workspace funnels through
//! [`count_candidates`] (one candidate size) or [`count_mixed`] (candidates
//! of several sizes in a single pass, as the improved negative algorithm
//! requires). The *mapper* hook lets generalized mining extend each
//! transaction with taxonomy ancestors — counting itself is agnostic.
//!
//! Backends:
//!
//! * [`CountingBackend::HashTree`] — the classic hash tree (default; best
//!   for large candidate sets),
//! * [`CountingBackend::SubsetHashMap`] — a hash map keyed by candidate,
//!   probed either by enumerating the transaction's k-subsets or by testing
//!   each candidate, whichever is cheaper per transaction,
//! * [`CountingBackend::TidBitmap`] — vertical counting: the pass builds
//!   one packed bitset row per item the candidates mention, then every
//!   candidate is counted by word-wise AND + popcount (see
//!   [`negassoc_txdb::vertical`]; DESIGN.md §14),
//! * [`crate::count::count_with_tidlists`] — vertical counting against a
//!   prebuilt [`negassoc_txdb::vertical::TidListIndex`] (no database pass at
//!   all).
//!
//! All backends produce identical counts for identical inputs; the choice
//! only moves wall time and memory.

use crate::hash_tree::HashTree;
use crate::itemset::Itemset;
use negassoc_taxonomy::fxhash::{FxHashMap, FxHashSet};
use negassoc_taxonomy::ItemId;
use negassoc_txdb::block::DEFAULT_BLOCK_SIZE;
use negassoc_txdb::vertical::{BitmapChunk, TidListIndex};
use negassoc_txdb::TransactionSource;
use std::io;

/// Pass-based counting strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CountingBackend {
    /// Hash tree subset counting (Agrawal & Srikant).
    #[default]
    HashTree,
    /// Candidate hash map with adaptive probing.
    SubsetHashMap,
    /// Vertical TID-bitmap counting: AND + popcount over per-item bitsets
    /// built during the pass.
    TidBitmap,
}

/// Transforms a transaction's items before counting (e.g. extends them with
/// taxonomy ancestors). Must leave `buf` strictly ascending.
pub type Mapper<'a> = dyn FnMut(&[ItemId], &mut Vec<ItemId>) + 'a;

/// The identity mapper: count over the literal transaction items.
pub fn identity_mapper(items: &[ItemId], buf: &mut Vec<ItemId>) {
    buf.clear();
    buf.extend_from_slice(items);
}

/// Count the supports of same-size `candidates` over one pass of `source`.
///
/// Returns `(candidate, count)` pairs covering every input candidate.
///
/// # Panics
/// Panics when candidates differ in size.
pub fn count_candidates<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
    backend: CountingBackend,
    mapper: &mut Mapper<'_>,
) -> io::Result<Vec<(Itemset, u64)>> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    let k = candidates[0].len();
    assert!(
        candidates.iter().all(|c| c.len() == k),
        "count_candidates requires uniform candidate size"
    );
    if backend == CountingBackend::TidBitmap {
        return count_bitmap(source, candidates, mapper);
    }
    let mut counter = Counter::build(k, candidates, backend);
    let mut buf: Vec<ItemId> = Vec::new();
    source.pass(&mut |t| {
        mapper(t.items(), &mut buf);
        counter.count(&buf);
    })?;
    Ok(counter.into_counts())
}

/// Count supports of mixed-size `candidates` in a *single* pass, grouping
/// them per size internally.
pub fn count_mixed<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
    backend: CountingBackend,
    mapper: &mut Mapper<'_>,
) -> io::Result<Vec<(Itemset, u64)>> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    if backend == CountingBackend::TidBitmap {
        return count_bitmap(source, candidates, mapper);
    }
    let mut by_size: FxHashMap<usize, Vec<Itemset>> = FxHashMap::default();
    for c in candidates {
        by_size.entry(c.len()).or_default().push(c);
    }
    // Each size gets its own counter *and* its own item filter: a size's
    // counting structure only cares about items its candidates mention, and
    // walking it with another size's items inflates the subset search. The
    // filter is a linear scan per transaction — far cheaper than the walk
    // it avoids.
    let mut counters: Vec<(Counter, FxHashSet<ItemId>, Vec<ItemId>)> = by_size
        .into_iter()
        .filter(|(k, _)| *k > 0)
        .map(|(k, cands)| {
            let needed = items_of(&cands);
            (Counter::build(k, cands, backend), needed, Vec::new())
        })
        .collect();
    let single = counters.len() == 1;
    let mut buf: Vec<ItemId> = Vec::new();
    source.pass(&mut |t| {
        mapper(t.items(), &mut buf);
        for (counter, needed, scratch) in &mut counters {
            if single {
                // One size: the caller's mapper already filtered for it.
                counter.count(&buf);
            } else {
                scratch.clear();
                scratch.extend(buf.iter().copied().filter(|i| needed.contains(i)));
                counter.count(scratch);
            }
        }
    })?;
    Ok(counters
        .into_iter()
        .flat_map(|(c, _, _)| c.into_counts())
        .collect())
}

pub(crate) fn items_of(candidates: &[Itemset]) -> FxHashSet<ItemId> {
    let mut s = FxHashSet::default();
    for c in candidates {
        s.extend(c.items().iter().copied());
    }
    s
}

/// The bitmap backend's pass-independent setup, shared by the sequential
/// path here and the worker pool in [`crate::parallel`]: a dense row per
/// item the candidates mention (categories included — the mapper already
/// surfaces them per transaction, so a category row *is* the union of its
/// descendants' occurrences) and each candidate pre-resolved to its rows.
pub(crate) struct BitmapPlan {
    /// Item → dense bitmap row.
    pub(crate) row_of: FxHashMap<ItemId, u32>,
    /// Per candidate (input order), the rows to AND.
    pub(crate) cand_rows: Vec<Vec<u32>>,
    /// Number of rows (distinct items mentioned).
    pub(crate) rows: usize,
}

impl BitmapPlan {
    pub(crate) fn new(candidates: &[Itemset]) -> Self {
        let mut needed: Vec<ItemId> = items_of(candidates).into_iter().collect();
        // Sorted assignment keeps row numbering independent of hash order;
        // counts don't care, debuggability does.
        needed.sort_unstable();
        let row_of: FxHashMap<ItemId, u32> = needed
            .iter()
            .enumerate()
            .map(|(i, &item)| (item, i as u32))
            .collect();
        let cand_rows: Vec<Vec<u32>> = candidates
            .iter()
            .map(|c| c.items().iter().map(|i| row_of[i]).collect())
            .collect();
        Self {
            row_of,
            cand_rows,
            rows: needed.len(),
        }
    }
}

/// One counting unit's bitmap state: chunks of packed presence bits filled
/// one transaction at a time. Each scanned transaction takes exactly one
/// bit slot, so chunk popcounts sum to exact supports no matter how the
/// pass was sliced across workers.
pub(crate) struct BitmapWorker {
    chunks: Vec<BitmapChunk>,
    rows: usize,
    /// Free transaction slots in the last chunk.
    room: usize,
}

impl BitmapWorker {
    pub(crate) fn new(rows: usize) -> Self {
        Self {
            chunks: Vec::new(),
            rows,
            room: 0,
        }
    }

    /// Record one mapped transaction: set the bit for every item that has
    /// a row. Items outside the plan (not mentioned by any candidate) are
    /// simply ignored.
    pub(crate) fn add(&mut self, items: &[ItemId], row_of: &FxHashMap<ItemId, u32>) {
        if self.room == 0 {
            self.chunks
                .push(BitmapChunk::new(self.rows, DEFAULT_BLOCK_SIZE));
            self.room = DEFAULT_BLOCK_SIZE;
        }
        let offset = DEFAULT_BLOCK_SIZE - self.room;
        if let Some(chunk) = self.chunks.last_mut() {
            for item in items {
                if let Some(&row) = row_of.get(item) {
                    chunk.set(row, offset);
                }
            }
        }
        self.room -= 1;
    }

    /// Transactions seen by this worker containing all of `rows`, with the
    /// words visited added to `words_anded`. An empty `rows` slice counts
    /// 0 (the horizontal paths never report the empty itemset either).
    pub(crate) fn count_tracked(&self, rows: &[u32], words_anded: &mut u64) -> u64 {
        if rows.is_empty() {
            return 0;
        }
        let mut total = 0u64;
        for chunk in &self.chunks {
            *words_anded += (chunk.words_per_row() * rows.len()) as u64;
            total += chunk.count(rows);
        }
        total
    }

    /// Total `u64` words this worker's chunks hold.
    pub(crate) fn words_built(&self) -> u64 {
        self.chunks.iter().map(BitmapChunk::total_words).sum()
    }
}

/// The sequential TID-bitmap pass behind [`count_candidates`] and
/// [`count_mixed`] with [`CountingBackend::TidBitmap`]: one streaming pass
/// fills the bitmaps, then every candidate is an AND + popcount. Matching
/// [`count_mixed`], zero-size candidates are dropped from the output.
fn count_bitmap<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
    mapper: &mut Mapper<'_>,
) -> io::Result<Vec<(Itemset, u64)>> {
    let plan = BitmapPlan::new(&candidates);
    let mut worker = BitmapWorker::new(plan.rows);
    let mut buf: Vec<ItemId> = Vec::new();
    source.pass(&mut |t| {
        mapper(t.items(), &mut buf);
        worker.add(&buf, &plan.row_of);
    })?;
    let mut anded = 0u64;
    Ok(candidates
        .into_iter()
        .zip(plan.cand_rows.iter())
        .filter(|(c, _)| !c.is_empty())
        .map(|(c, rows)| {
            let n = worker.count_tracked(rows, &mut anded);
            (c, n)
        })
        .collect())
}

/// One size's counting structure (shared with the parallel counting layer,
/// where every worker owns one per candidate size).
pub(crate) enum Counter {
    Tree(HashTree),
    Map {
        k: usize,
        map: FxHashMap<Itemset, u64>,
    },
}

impl Counter {
    pub(crate) fn build(k: usize, candidates: Vec<Itemset>, backend: CountingBackend) -> Self {
        match backend {
            // The bitmap backend is dispatched to its vertical path before
            // any Counter exists; if a call site ever misses that dispatch
            // the hash tree still produces exact counts (slower, never
            // wrong).
            CountingBackend::HashTree | CountingBackend::TidBitmap => {
                Counter::Tree(HashTree::build(k, candidates))
            }
            CountingBackend::SubsetHashMap => {
                let map = candidates.into_iter().map(|c| (c, 0)).collect();
                Counter::Map { k, map }
            }
        }
    }

    pub(crate) fn count(&mut self, items: &[ItemId]) {
        match self {
            Counter::Tree(t) => t.count_transaction(items),
            Counter::Map { k, map } => count_into_map(items, *k, map),
        }
    }

    pub(crate) fn into_counts(self) -> Vec<(Itemset, u64)> {
        match self {
            Counter::Tree(t) => t.into_counts(),
            Counter::Map { map, .. } => map.into_iter().collect(),
        }
    }
}

/// Adaptive hash-map probing: when the transaction has few k-subsets,
/// enumerate them and look each up; otherwise test every candidate against
/// the transaction.
fn count_into_map(items: &[ItemId], k: usize, map: &mut FxHashMap<Itemset, u64>) {
    if items.len() < k || k == 0 {
        return;
    }
    let n = items.len();
    let subsets = binomial(n, k);
    if subsets <= map.len() as u128 * 4 {
        let mut idx: Vec<usize> = (0..k).collect();
        let mut scratch: Vec<ItemId> = vec![ItemId(0); k];
        loop {
            for (s, &i) in scratch.iter_mut().zip(idx.iter()) {
                *s = items[i];
            }
            // The scratch is ascending because `idx` is ascending over a
            // sorted transaction.
            let key = Itemset::from_sorted(scratch.clone());
            if let Some(c) = map.get_mut(&key) {
                *c += 1;
            }
            // Advance to the next k-combination of 0..n.
            let mut pos = k;
            while pos > 0 && idx[pos - 1] == n - (k - pos) - 1 {
                pos -= 1;
            }
            if pos == 0 {
                return;
            }
            idx[pos - 1] += 1;
            for q in pos..k {
                idx[q] = idx[q - 1] + 1;
            }
        }
    } else {
        for (cand, count) in map.iter_mut() {
            if crate::itemset::is_sorted_subset(cand.items(), items) {
                *count += 1;
            }
        }
    }
}

/// `C(n, k)` saturating at a large cap (only compared against map sizes).
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > 1 << 100 {
            return u128::MAX;
        }
    }
    acc
}

/// Count `candidates` (any sizes) against a prebuilt vertical index; no
/// database pass is made.
pub fn count_with_tidlists(index: &TidListIndex, candidates: Vec<Itemset>) -> Vec<(Itemset, u64)> {
    candidates
        .into_iter()
        .map(|c| {
            let s = index.support(c.items());
            (c, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_txdb::TransactionDbBuilder;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    fn sample_db() -> negassoc_txdb::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1), ItemId(2), ItemId(3)]);
        b.add([ItemId(1), ItemId(2)]);
        b.add([ItemId(2), ItemId(3)]);
        b.add([ItemId(1), ItemId(3), ItemId(4)]);
        b.build()
    }

    fn sorted(mut v: Vec<(Itemset, u64)>) -> Vec<(Itemset, u64)> {
        v.sort();
        v
    }

    #[test]
    fn backends_agree_on_pairs() {
        let db = sample_db();
        let candidates = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 4]), set(&[3, 4])];
        let expected = vec![
            (set(&[1, 2]), 2),
            (set(&[1, 4]), 1),
            (set(&[2, 3]), 2),
            (set(&[3, 4]), 1),
        ];
        for backend in [CountingBackend::HashTree, CountingBackend::SubsetHashMap] {
            let got =
                count_candidates(&db, candidates.clone(), backend, &mut identity_mapper).unwrap();
            assert_eq!(sorted(got), expected, "{backend:?}");
        }
    }

    #[test]
    fn mixed_sizes_single_structure_per_size() {
        let db = sample_db();
        let candidates = vec![set(&[1]), set(&[1, 2]), set(&[1, 2, 3])];
        let got = sorted(
            count_mixed(
                &db,
                candidates,
                CountingBackend::HashTree,
                &mut identity_mapper,
            )
            .unwrap(),
        );
        assert_eq!(
            got,
            vec![(set(&[1]), 3), (set(&[1, 2]), 2), (set(&[1, 2, 3]), 1)]
        );
    }

    #[test]
    fn mapper_can_rewrite_transactions() {
        let db = sample_db();
        // A mapper that drops item 3 from every transaction.
        let mut mapper = |items: &[ItemId], buf: &mut Vec<ItemId>| {
            buf.clear();
            buf.extend(items.iter().copied().filter(|i| i.0 != 3));
        };
        let got = count_candidates(
            &db,
            vec![set(&[2, 3]), set(&[1, 2])],
            CountingBackend::HashTree,
            &mut mapper,
        )
        .unwrap();
        assert_eq!(sorted(got), vec![(set(&[1, 2]), 2), (set(&[2, 3]), 0)]);
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let db = sample_db();
        assert!(count_candidates(
            &db,
            Vec::new(),
            CountingBackend::HashTree,
            &mut identity_mapper
        )
        .unwrap()
        .is_empty());
        assert!(count_mixed(
            &db,
            Vec::new(),
            CountingBackend::HashTree,
            &mut identity_mapper
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn subset_enumeration_path_matches_candidate_scan_path() {
        // Force both code paths of count_into_map and compare.
        let items: Vec<ItemId> = (0..8).map(ItemId).collect();
        let all_pairs: Vec<Itemset> = (0..8u32)
            .flat_map(|a| ((a + 1)..8).map(move |b| set(&[a, b])))
            .collect();

        // Few candidates -> candidate-scan path.
        let mut small: FxHashMap<Itemset, u64> = vec![(set(&[0, 1]), 0), (set(&[6, 7]), 0)]
            .into_iter()
            .collect();
        count_into_map(&items, 2, &mut small);
        assert!(small.values().all(|&v| v == 1));

        // Many candidates -> subset-enumeration path.
        let mut big: FxHashMap<Itemset, u64> = all_pairs.iter().cloned().map(|c| (c, 0)).collect();
        count_into_map(&items, 2, &mut big);
        assert!(big.values().all(|&v| v == 1));
        assert_eq!(big.len(), 28);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn vertical_counting_matches() {
        let db = sample_db();
        let idx = TidListIndex::build(&db).unwrap();
        let got = sorted(count_with_tidlists(
            &idx,
            vec![set(&[1, 2]), set(&[1, 2, 3]), set(&[9])],
        ));
        assert_eq!(
            got,
            vec![(set(&[1, 2]), 2), (set(&[1, 2, 3]), 1), (set(&[9]), 0)]
        );
    }
}
