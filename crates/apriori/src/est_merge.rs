//! The **EstMerge** generalized miner (Srikant & Agrawal, VLDB '95),
//! sampling-based: a random sample of the database, drawn during the first
//! pass, *estimates* each candidate's support. Candidates expected to be
//! large are counted in the current pass; the rest are *deferred* and
//! counted (exactly) one pass later, merged with the next level's expected
//! candidates. Because every candidate is eventually counted exactly, the
//! result is identical to [`crate::basic`] / [`crate::cumulate`]; the
//! payoff is smaller per-pass counting structures when memory is tight.
//!
//! This is a reimplementation from the published description; the original
//! interleaves with the Stratify family, which the paper under reproduction
//! does not use. See DESIGN.md for the exact construction.

use crate::count::CountingBackend;
use crate::gen::{apriori_gen, pairs_of};
use crate::generalized::{extend_full, prune_ancestor_pairs, AncestorTable};
use crate::itemset::{Itemset, LargeItemsets};
use crate::parallel::{count_mixed_parallel_ctrl, Obs, Parallelism, PassStats};
use crate::MinSupport;
use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::obs::{metric, Event};
use negassoc_txdb::{TransactionDb, TransactionDbBuilder, TransactionSource};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::io;

/// Tuning knobs for [`est_merge`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstMergeConfig {
    /// Fraction of transactions drawn into the estimation sample.
    pub sample_fraction: f64,
    /// A candidate is "expected large" when its scaled sample support is at
    /// least `safety_factor * minsup`. Below 1.0 trades a few extra counted
    /// candidates for fewer deferrals.
    pub safety_factor: f64,
    /// RNG seed for the sample (deterministic runs).
    pub seed: u64,
}

impl Default for EstMergeConfig {
    fn default() -> Self {
        Self {
            sample_fraction: 0.1,
            safety_factor: 0.9,
            seed: 0x5eed_e57a,
        }
    }
}

/// Statistics reported alongside the result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EstMergeStats {
    /// Transactions in the sample.
    pub sample_size: u64,
    /// Candidates counted in the pass their level was generated.
    pub counted_immediately: u64,
    /// Candidates deferred to the following pass.
    pub deferred: u64,
    /// Full database passes made (excluding sample scans).
    pub passes: u64,
}

/// Mine all generalized large itemsets with EstMerge.
///
/// Batch-counting passes over the full database use the worker pool
/// `parallelism` selects. The sampling pass (pass 1) always runs
/// sequentially: the sample is drawn by an RNG advanced per transaction,
/// so its contents depend on stream order — which only the sequential
/// scan pins down. Sample-estimation scans are in-memory and cheap, so
/// they stay sequential too. Results are identical for every policy.
pub fn est_merge<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    min_support: MinSupport,
    backend: CountingBackend,
    config: EstMergeConfig,
    parallelism: Parallelism,
) -> io::Result<(LargeItemsets, EstMergeStats)> {
    est_merge_with_ctrl(
        source,
        tax,
        min_support,
        backend,
        config,
        parallelism,
        None,
        &Obs::disabled(),
    )
}

/// [`est_merge`] under an optional cancel token: `ctrl` is checked before
/// each full-database batch pass (and at block boundaries within it); a
/// cancelled run returns the token's [`io::ErrorKind::Interrupted`] error
/// (see [`negassoc_txdb::ctrl`]). The sequential sampling pass is guarded
/// at its boundaries — it is one pass, the same interruption granularity
/// every other miner offers. Pass start/end events for the sampling pass
/// (`"est_sample"`) and every batch pass (`"est_batch"`) flow to `obs`.
#[allow(clippy::too_many_arguments)]
pub fn est_merge_with_ctrl<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    min_support: MinSupport,
    backend: CountingBackend,
    config: EstMergeConfig,
    parallelism: Parallelism,
    ctrl: Option<&negassoc_txdb::ctrl::CancelToken>,
    obs: &Obs,
) -> io::Result<(LargeItemsets, EstMergeStats)> {
    assert!(
        (0.0..=1.0).contains(&config.sample_fraction),
        "sample_fraction must be in [0, 1]"
    );
    if let Some(c) = ctrl {
        c.check()?;
    }
    let ancestors = AncestorTable::new(tax);
    let mut stats = EstMergeStats::default();

    // Pass 1: exact item counts + sample collection.
    let started = std::time::Instant::now();
    obs.emit(|| Event::PassStart {
        label: "est_sample".to_string(),
        candidates: tax.len(),
    });
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut sample_builder = TransactionDbBuilder::new();
    let mut counts: Vec<u64> = vec![0; tax.len()];
    let mut num_transactions = 0u64;
    let mut buf: Vec<ItemId> = Vec::new();
    source.pass(&mut |t| {
        num_transactions += 1;
        extend_full(t.items(), &ancestors, &mut buf);
        for &it in &buf {
            if let Some(c) = counts.get_mut(it.index()) {
                *c += 1;
            }
        }
        if rng.random::<f64>() < config.sample_fraction {
            sample_builder.add(t.items().iter().copied());
        }
    })?;
    stats.passes = 1;
    obs.emit(|| Event::PassEnd {
        stats: PassStats {
            pass: 1,
            label: "est_sample".to_string(),
            candidates: tax.len(),
            transactions: num_transactions,
            threads: 1,
            wall: started.elapsed(),
        },
    });
    obs.bump(metric::PASSES_COMPLETED, 1);
    let sample: TransactionDb = sample_builder.build();
    stats.sample_size = sample.len() as u64;

    let minsup = min_support.to_count(num_transactions);
    let mut large = LargeItemsets::new(num_transactions, minsup);

    let mut large_1: Vec<ItemId> = Vec::new();
    for (idx, &c) in counts.iter().enumerate() {
        if c >= minsup {
            let item = ItemId(idx as u32);
            large_1.push(item);
            large.insert(Itemset::singleton(item), c);
        }
    }

    // Per-level resolved large itemsets, used for incremental apriori_gen.
    let mut resolved: Vec<Vec<Itemset>> = vec![Vec::new(); 2];
    resolved[1] = large_1.iter().map(|&i| Itemset::singleton(i)).collect();

    // Candidates ever generated (so late-resolving deferred itemsets don't
    // regenerate what's already in flight).
    let mut generated: FxHashSet<Itemset> = FxHashSet::default();

    // Level 2 candidates seed the loop.
    let c2 = prune_ancestor_pairs(pairs_of(&large_1), &ancestors);
    generated.extend(c2.iter().cloned());
    let (mut batch, mut deferred_next) = split_by_estimate(
        &sample,
        &ancestors,
        c2,
        backend,
        num_transactions,
        minsup,
        config.safety_factor,
        &mut stats,
    )?;

    while !batch.is_empty() || !deferred_next.is_empty() {
        if let Some(c) = ctrl {
            c.check()?;
        }
        // One full-database pass counts this batch (mixed sizes).
        let counted = if batch.is_empty() {
            Vec::new()
        } else {
            stats.passes += 1;
            let batch_size = batch.len();
            let pass_no = stats.passes;
            obs.emit(|| Event::PassStart {
                label: "est_batch".to_string(),
                candidates: batch_size,
            });
            let pass_started = std::time::Instant::now();
            let mapper =
                |items: &[ItemId], out: &mut Vec<ItemId>| extend_full(items, &ancestors, out);
            let run = count_mixed_parallel_ctrl(
                source,
                std::mem::take(&mut batch),
                backend,
                &mapper,
                parallelism,
                ctrl,
                obs,
            )?;
            obs.emit(|| Event::PassEnd {
                stats: PassStats {
                    pass: pass_no,
                    label: "est_batch".to_string(),
                    candidates: batch_size,
                    transactions: run.transactions,
                    threads: run.threads,
                    wall: pass_started.elapsed(),
                },
            });
            obs.bump(metric::PASSES_COMPLETED, 1);
            run.counts
        };

        let mut levels_with_news: Vec<usize> = Vec::new();
        for (set, count) in counted {
            if count >= minsup {
                let k = set.len();
                if resolved.len() <= k {
                    resolved.resize_with(k + 1, Vec::new);
                }
                resolved[k].push(set.clone());
                if !levels_with_news.contains(&k) {
                    levels_with_news.push(k);
                }
                large.insert(set, count);
            }
        }

        // Generate not-yet-seen candidates one level above each level that
        // gained new large itemsets.
        let mut fresh: Vec<Itemset> = Vec::new();
        for &k in &levels_with_news {
            for cand in apriori_gen(&resolved[k]) {
                if generated.insert(cand.clone()) {
                    fresh.push(cand);
                }
            }
        }
        let (expected, deferred) = split_by_estimate(
            &sample,
            &ancestors,
            fresh,
            backend,
            num_transactions,
            minsup,
            config.safety_factor,
            &mut stats,
        )?;

        // Next pass counts: previously deferred candidates + newly expected
        // ones.
        batch = std::mem::take(&mut deferred_next);
        batch.extend(expected);
        deferred_next = deferred;
    }

    Ok((large, stats))
}

/// Estimate candidate supports on the sample and split into
/// (expected-large, deferred).
#[allow(clippy::too_many_arguments)]
fn split_by_estimate(
    sample: &TransactionDb,
    ancestors: &AncestorTable,
    candidates: Vec<Itemset>,
    backend: CountingBackend,
    num_transactions: u64,
    minsup: u64,
    safety_factor: f64,
    stats: &mut EstMergeStats,
) -> io::Result<(Vec<Itemset>, Vec<Itemset>)> {
    if candidates.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }
    if sample.is_empty() {
        // No information: count everything immediately (degenerates to
        // Basic, which is the safe direction).
        stats.counted_immediately += candidates.len() as u64;
        return Ok((candidates, Vec::new()));
    }
    let mut mapper = |items: &[ItemId], out: &mut Vec<ItemId>| extend_full(items, ancestors, out);
    let counted = crate::count::count_mixed(sample, candidates, backend, &mut mapper)?;
    let scale = num_transactions as f64 / sample.len() as f64;
    // negassoc-lint: allow(L005) -- sample-scaled threshold; supports are exact in f64 up to 2^53
    let threshold = safety_factor * minsup as f64;
    let mut expected = Vec::new();
    let mut deferred = Vec::new();
    for (set, sample_count) in counted {
        if sample_count as f64 * scale >= threshold {
            expected.push(set);
        } else {
            deferred.push(set);
        }
    }
    stats.counted_immediately += expected.len() as u64;
    stats.deferred += deferred.len() as u64;
    Ok((expected, deferred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::basic;
    use crate::basic::tests::sa95;
    use negassoc_txdb::PassCounter;

    fn assert_same_large(a: &LargeItemsets, b: &LargeItemsets) {
        assert_eq!(a.total(), b.total());
        for (set, sup) in a.iter() {
            assert_eq!(b.support_of_set(set), Some(sup), "{set:?}");
        }
    }

    #[test]
    fn matches_basic_regardless_of_sampling() {
        let (tax, db, _) = sa95();
        let reference = basic(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        for (frac, seed) in [(0.0, 1u64), (0.5, 2), (1.0, 3), (0.3, 42)] {
            let (got, _stats) = est_merge(
                &db,
                &tax,
                MinSupport::Count(2),
                CountingBackend::HashTree,
                EstMergeConfig {
                    sample_fraction: frac,
                    safety_factor: 0.9,
                    seed,
                },
                Parallelism::Threads(if seed % 2 == 0 { 3 } else { 1 }),
            )
            .unwrap();
            assert_same_large(&reference, &got);
        }
    }

    #[test]
    fn empty_sample_counts_everything_immediately() {
        let (tax, db, _) = sa95();
        let (_large, stats) = est_merge(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            EstMergeConfig {
                sample_fraction: 0.0,
                ..EstMergeConfig::default()
            },
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(stats.sample_size, 0);
        assert_eq!(stats.deferred, 0);
        assert!(stats.counted_immediately > 0);
    }

    #[test]
    fn full_sample_estimates_exactly() {
        let (tax, db, _) = sa95();
        let (_large, stats) = est_merge(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            EstMergeConfig {
                sample_fraction: 1.0,
                safety_factor: 1.0,
                seed: 7,
            },
            Parallelism::Sequential,
        )
        .unwrap();
        // With the whole database as the sample and safety factor 1, the
        // estimate is exact, so deferred candidates are exactly the
        // not-large ones and every deferred candidate stays small.
        assert_eq!(stats.sample_size, db.len() as u64);
        let _ = stats;
    }

    #[test]
    fn deterministic_under_seed() {
        let (tax, db, _) = sa95();
        let cfg = EstMergeConfig {
            sample_fraction: 0.4,
            safety_factor: 0.9,
            seed: 99,
        };
        let (a, sa) = est_merge(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            cfg,
            Parallelism::Sequential,
        )
        .unwrap();
        let (b, sb) = est_merge(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            cfg,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_same_large(&a, &b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn pass_counter_matches_reported_passes() {
        let (tax, db, _) = sa95();
        let pc = PassCounter::new(db);
        let (_large, stats) = est_merge(
            &pc,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            EstMergeConfig::default(),
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(stats.passes, pc.passes());
    }
}
