//! The classic hash tree of Agrawal & Srikant (VLDB '94) for counting which
//! candidate k-itemsets are contained in each transaction.
//!
//! Interior nodes hash on the candidate's item at the node's depth; leaves
//! hold candidate/count pairs and split when they overflow (unless the tree
//! is already `k` deep). Counting a transaction walks every combination of
//! transaction items that can still reach a candidate, instead of
//! enumerating all `C(|t|, k)` subsets.

use crate::itemset::{is_sorted_subset, Itemset};
use negassoc_taxonomy::ItemId;

const DEFAULT_BRANCH: usize = 8;
const DEFAULT_LEAF_CAP: usize = 16;

enum Node {
    Interior(Vec<Node>),
    Leaf {
        entries: Vec<(Itemset, u64)>,
        /// Tick of the last transaction that visited this leaf. A leaf can
        /// be reached through several hash paths within one transaction
        /// (hash collisions on different item subsequences); the stamp
        /// makes each transaction count a leaf's candidates at most once.
        last_visit: u64,
    },
}

/// A hash tree over candidate itemsets of one fixed size `k`.
pub struct HashTree {
    k: usize,
    branch: usize,
    leaf_cap: usize,
    root: Node,
    len: usize,
    tick: u64,
}

impl HashTree {
    /// An empty tree for candidates of size `k` with default parameters.
    pub fn new(k: usize) -> Self {
        Self::with_params(k, DEFAULT_BRANCH, DEFAULT_LEAF_CAP)
    }

    /// An empty tree with explicit branching factor and leaf capacity.
    ///
    /// # Panics
    /// Panics when `k == 0` or `branch == 0`.
    pub fn with_params(k: usize, branch: usize, leaf_cap: usize) -> Self {
        assert!(k > 0, "hash tree requires k >= 1");
        assert!(branch > 0, "branching factor must be positive");
        Self {
            k,
            branch,
            leaf_cap: leaf_cap.max(1),
            root: Node::Leaf {
                entries: Vec::new(),
                last_visit: 0,
            },
            len: 0,
            tick: 0,
        }
    }

    /// Build a tree holding all `candidates` (each of size `k`) with zeroed
    /// counts.
    pub fn build(k: usize, candidates: impl IntoIterator<Item = Itemset>) -> Self {
        let candidates: Vec<Itemset> = candidates.into_iter().collect();
        // A k-deep tree has at most branch^k leaves; with the default
        // branching a large candidate set (e.g. tens of thousands of
        // pairs) would degenerate into a few enormous leaves that every
        // transaction scans linearly. Size the branching so leaves stay
        // near the target capacity.
        let want_leaves = candidates.len().div_ceil(DEFAULT_LEAF_CAP).max(1);
        let branch = (want_leaves as f64).powf(1.0 / k as f64).ceil() as usize;
        let branch = branch.clamp(DEFAULT_BRANCH, 4096);
        let mut t = Self::with_params(k, branch, DEFAULT_LEAF_CAP);
        for c in candidates {
            t.insert(c);
        }
        t
    }

    /// Number of candidates stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no candidates are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The candidate size this tree was built for.
    #[inline]
    pub fn candidate_len(&self) -> usize {
        self.k
    }

    /// Insert a candidate with a zero count.
    ///
    /// # Panics
    /// Panics when the candidate's size differs from `k`.
    pub fn insert(&mut self, candidate: Itemset) {
        assert_eq!(candidate.len(), self.k, "candidate size mismatch");
        self.len += 1;
        // Manual descent (no recursion) so splitting can borrow freely.
        let mut node = &mut self.root;
        let mut depth = 0;
        loop {
            match node {
                Node::Interior(children) => {
                    let b = candidate.items()[depth].0 as usize % self.branch;
                    node = &mut children[b];
                    depth += 1;
                }
                Node::Leaf { entries, .. } => {
                    entries.push((candidate, 0));
                    if entries.len() > self.leaf_cap && depth < self.k {
                        let moved = std::mem::take(entries);
                        *node = split_leaf(moved, depth, self.branch);
                        // Note: a freshly split child may itself exceed the
                        // cap when many candidates share a hash path; it
                        // will split lazily on the next insert that lands
                        // there, or stay oversized at max depth.
                    }
                    return;
                }
            }
        }
    }

    /// Increment the count of every stored candidate contained in
    /// `transaction` (strictly ascending item ids).
    pub fn count_transaction(&mut self, transaction: &[ItemId]) {
        if transaction.len() < self.k {
            return;
        }
        self.tick += 1;
        count_rec(
            &mut self.root,
            transaction,
            0,
            0,
            self.k,
            self.branch,
            self.tick,
        );
    }

    /// Iterate all `(candidate, count)` pairs, in unspecified order.
    pub fn counts(&self) -> Counts<'_> {
        Counts {
            stack: vec![(&self.root, 0)],
        }
    }

    /// Consume the tree into a vector of `(candidate, count)` pairs.
    pub fn into_counts(self) -> Vec<(Itemset, u64)> {
        let mut out = Vec::with_capacity(self.len);
        collect(self.root, &mut out);
        out
    }
}

/// Split an overfull leaf's entries into a fresh interior node,
/// redistributing every entry by the hash of its item at `depth`.
fn split_leaf(moved: Vec<(Itemset, u64)>, depth: usize, branch: usize) -> Node {
    let mut children: Vec<Node> = (0..branch)
        .map(|_| Node::Leaf {
            entries: Vec::new(),
            last_visit: 0,
        })
        .collect();
    for (set, count) in moved {
        let b = set.items()[depth].0 as usize % branch;
        // `children` was built as all-leaves just above.
        if let Node::Leaf { entries: v, .. } = &mut children[b] {
            v.push((set, count));
        }
    }
    Node::Interior(children)
}

fn collect(node: Node, out: &mut Vec<(Itemset, u64)>) {
    match node {
        Node::Leaf { entries, .. } => out.extend(entries),
        Node::Interior(children) => {
            for c in children {
                collect(c, out);
            }
        }
    }
}

fn count_rec(
    node: &mut Node,
    transaction: &[ItemId],
    start: usize,
    depth: usize,
    k: usize,
    branch: usize,
    tick: u64,
) {
    match node {
        Node::Leaf {
            entries,
            last_visit,
        } => {
            if *last_visit == tick {
                return; // already handled for this transaction
            }
            *last_visit = tick;
            for (set, count) in entries {
                if is_sorted_subset(set.items(), transaction) {
                    *count += 1;
                }
            }
        }
        Node::Interior(children) => {
            // Items still needed below this node: k - depth. Stop early when
            // the remaining transaction suffix is too short.
            let remaining_needed = k - depth;
            if transaction.len() - start < remaining_needed {
                return;
            }
            let last = transaction.len() - remaining_needed;
            for i in start..=last {
                let b = transaction[i].0 as usize % branch;
                count_rec(
                    &mut children[b],
                    transaction,
                    i + 1,
                    depth + 1,
                    k,
                    branch,
                    tick,
                );
            }
        }
    }
}

/// Iterator over `(candidate, count)` pairs. See [`HashTree::counts`].
pub struct Counts<'a> {
    stack: Vec<(&'a Node, usize)>,
}

impl<'a> Iterator for Counts<'a> {
    type Item = (&'a Itemset, u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = self.stack.pop()?;
            match node {
                Node::Leaf { entries, .. } => {
                    if let Some((set, count)) = entries.get(idx) {
                        self.stack.push((node, idx + 1));
                        return Some((set, *count));
                    }
                }
                Node::Interior(children) => {
                    if idx < children.len() {
                        self.stack.push((node, idx + 1));
                        self.stack.push((&children[idx], 0));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn counts_simple_pairs() {
        let mut t = HashTree::build(2, vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.candidate_len(), 2);
        t.count_transaction(&ids(&[1, 2, 3])); // contains all three
        t.count_transaction(&ids(&[1, 2])); // contains {1,2}
        t.count_transaction(&ids(&[3])); // too short, contains none
        let mut got: Vec<(Itemset, u64)> = t.into_counts();
        got.sort();
        assert_eq!(
            got,
            vec![(set(&[1, 2]), 2), (set(&[1, 3]), 1), (set(&[2, 3]), 1)]
        );
    }

    #[test]
    fn splitting_preserves_counts() {
        // Small leaf capacity forces splits; verify against brute force.
        let candidates: Vec<Itemset> = (0..20u32)
            .flat_map(|a| ((a + 1)..20).map(move |b| set(&[a, b])))
            .collect();
        let mut t = HashTree::with_params(2, 4, 2);
        for c in candidates.clone() {
            t.insert(c);
        }
        assert_eq!(t.len(), candidates.len());

        let transactions = [
            ids(&[0, 1, 2, 3]),
            ids(&[5, 9, 13, 17]),
            ids(&[2, 4, 6, 8, 10, 12]),
        ];
        for tx in &transactions {
            t.count_transaction(tx);
        }
        for (cand, count) in t.counts() {
            let brute = transactions
                .iter()
                .filter(|tx| is_sorted_subset(cand.items(), tx))
                .count() as u64;
            assert_eq!(count, brute, "candidate {cand:?}");
        }
    }

    #[test]
    fn triples_with_deep_tree() {
        let mut t = HashTree::with_params(3, 2, 1);
        t.insert(set(&[1, 2, 3]));
        t.insert(set(&[1, 2, 4]));
        t.insert(set(&[2, 3, 4]));
        t.insert(set(&[1, 3, 5]));
        t.count_transaction(&ids(&[1, 2, 3, 4, 5]));
        t.count_transaction(&ids(&[1, 2, 4]));
        let mut got = t.into_counts();
        got.sort();
        assert_eq!(
            got,
            vec![
                (set(&[1, 2, 3]), 1),
                (set(&[1, 2, 4]), 2),
                (set(&[1, 3, 5]), 1),
                (set(&[2, 3, 4]), 1),
            ]
        );
    }

    #[test]
    fn empty_tree_and_short_transactions() {
        let mut t = HashTree::new(2);
        assert!(t.is_empty());
        t.count_transaction(&ids(&[1, 2, 3]));
        assert_eq!(t.counts().count(), 0);
        assert!(t.into_counts().is_empty());
    }

    #[test]
    #[should_panic(expected = "candidate size mismatch")]
    fn wrong_size_candidate_panics() {
        let mut t = HashTree::new(2);
        t.insert(set(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = HashTree::new(0);
    }
}
