//! Positive association-rule generation — the `ap-genrules` procedure of
//! Agrawal & Srikant (VLDB '94).
//!
//! For every large itemset `l` (|l| ≥ 2) and every partition `l = a ∪ c`
//! with nonempty antecedent `a` and consequent `c`, the rule `a ⇒ c` holds
//! when `confidence = support(l) / support(a) ≥ minconf`. Consequents are
//! grown with `apriori-gen`: if `a ⇒ c` fails, every rule with a consequent
//! ⊃ `c` (hence antecedent ⊂ `a`, hence support(antecedent) ≥ support(a),
//! hence confidence no higher) fails too, so failing consequents are pruned
//! before being extended. The paper's negative-rule generator (its Fig. 4)
//! is the same skeleton with the RI measure; see `negassoc::rules`.

use crate::gen::apriori_gen;
use crate::itemset::{Itemset, LargeItemsets};
use std::fmt;

/// A positive association rule `antecedent ⇒ consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The rule's left-hand side (nonempty).
    pub antecedent: Itemset,
    /// The rule's right-hand side (nonempty, disjoint from the antecedent).
    pub consequent: Itemset,
    /// Absolute support count of `antecedent ∪ consequent`.
    pub support: u64,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} => {:?} (sup {}, conf {:.3})",
            self.antecedent, self.consequent, self.support, self.confidence
        )
    }
}

/// Generate all rules with confidence at least `min_confidence` from the
/// mined `large` itemsets.
pub fn generate_rules(large: &LargeItemsets, min_confidence: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be within [0, 1]"
    );
    let mut out = Vec::new();
    for k in 2..=large.max_level() {
        for (itemset, support) in large.level(k) {
            // Seed: all 1-item consequents whose rule passes.
            let h1: Vec<Itemset> = itemset
                .items()
                .iter()
                .map(|&i| Itemset::singleton(i))
                .filter(|c| try_emit(large, itemset, support, c, min_confidence, &mut out))
                .collect();
            grow_consequents(large, itemset, support, h1, min_confidence, &mut out);
        }
    }
    out
}

/// Emit the rule `(itemset − consequent) ⇒ consequent` when confident;
/// returns whether it passed (so the consequent survives for extension).
fn try_emit(
    large: &LargeItemsets,
    itemset: &Itemset,
    support: u64,
    consequent: &Itemset,
    min_confidence: f64,
    out: &mut Vec<Rule>,
) -> bool {
    let antecedent = itemset.minus(consequent);
    if antecedent.is_empty() {
        return false;
    }
    // Every subset of a large itemset is large, so the lookup succeeds;
    // treat a miss (a corrupt store) as "no rule" rather than panicking.
    let Some(asup) = large.support_of_set(&antecedent) else {
        return false;
    };
    // negassoc-lint: allow(L005) -- confidence ratio; supports are exact in f64 up to 2^53
    let confidence = support as f64 / asup as f64;
    if confidence >= min_confidence {
        out.push(Rule {
            antecedent,
            consequent: consequent.clone(),
            support,
            confidence,
        });
        true
    } else {
        false
    }
}

/// Recursively extend passing consequents with `apriori-gen`.
fn grow_consequents(
    large: &LargeItemsets,
    itemset: &Itemset,
    support: u64,
    h_m: Vec<Itemset>,
    min_confidence: f64,
    out: &mut Vec<Rule>,
) {
    if h_m.is_empty() || h_m[0].len() + 1 >= itemset.len() {
        return; // consequent must stay a proper subset
    }
    let h_next: Vec<Itemset> = apriori_gen(&h_m)
        .into_iter()
        .filter(|c| try_emit(large, itemset, support, c, min_confidence, out))
        .collect();
    grow_consequents(large, itemset, support, h_next, min_confidence, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::ItemId;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    /// Supports from the VLDB '94 textbook database:
    /// {1}:2 {2}:3 {3}:3 {5}:3 {1,3}:2 {2,3}:2 {2,5}:3 {3,5}:2 {2,3,5}:2.
    fn textbook_large() -> LargeItemsets {
        let mut l = LargeItemsets::new(4, 2);
        for (items, sup) in [
            (vec![1u32], 2u64),
            (vec![2], 3),
            (vec![3], 3),
            (vec![5], 3),
            (vec![1, 3], 2),
            (vec![2, 3], 2),
            (vec![2, 5], 3),
            (vec![3, 5], 2),
            (vec![2, 3, 5], 2),
        ] {
            l.insert(set(&items), sup);
        }
        l
    }

    fn find<'a>(rules: &'a [Rule], a: &Itemset, c: &Itemset) -> Option<&'a Rule> {
        rules
            .iter()
            .find(|r| &r.antecedent == a && &r.consequent == c)
    }

    #[test]
    fn generates_confident_rules_only() {
        let rules = generate_rules(&textbook_large(), 1.0);
        // conf({1} => {3}) = 2/2 = 1.0; conf({3} => {1}) = 2/3 < 1.
        assert!(find(&rules, &set(&[1]), &set(&[3])).is_some());
        assert!(find(&rules, &set(&[3]), &set(&[1])).is_none());
        // conf({2} => {5}) = conf({5} => {2}) = 1.0.
        assert!(find(&rules, &set(&[2]), &set(&[5])).is_some());
        assert!(find(&rules, &set(&[5]), &set(&[2])).is_some());
        // From {2,3,5}: {2,3} => {5} and {3,5} => {2} have conf 1.0;
        // {2,5} => {3} has 2/3.
        assert!(find(&rules, &set(&[2, 3]), &set(&[5])).is_some());
        assert!(find(&rules, &set(&[3, 5]), &set(&[2])).is_some());
        assert!(find(&rules, &set(&[2, 5]), &set(&[3])).is_none());
        // Multi-item consequents: {3} => {2,5} has conf 2/3 < 1.
        assert!(find(&rules, &set(&[3]), &set(&[2, 5])).is_none());
    }

    #[test]
    fn lower_confidence_admits_more_rules() {
        let strict = generate_rules(&textbook_large(), 1.0);
        let loose = generate_rules(&textbook_large(), 0.5);
        assert!(loose.len() > strict.len());
        // Every strict rule also appears at the looser threshold.
        for r in &strict {
            assert!(find(&loose, &r.antecedent, &r.consequent).is_some());
        }
        // Multi-item consequent appears now: {3} => {2,5} at 2/3.
        let r = find(&loose, &set(&[3]), &set(&[2, 5])).unwrap();
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.support, 2);
    }

    #[test]
    fn confidence_arithmetic_and_display() {
        let rules = generate_rules(&textbook_large(), 0.0);
        let r = find(&rules, &set(&[2]), &set(&[3])).unwrap();
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
        let shown = r.to_string();
        assert!(shown.contains("=>"));
        assert!(shown.contains("0.667"));
    }

    #[test]
    fn no_rules_from_singletons_or_empty() {
        let mut l = LargeItemsets::new(10, 1);
        l.insert(set(&[1]), 5);
        assert!(generate_rules(&l, 0.0).is_empty());
        let empty = LargeItemsets::new(0, 1);
        assert!(generate_rules(&empty, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_confidence_panics() {
        generate_rules(&textbook_large(), 1.5);
    }

    #[test]
    fn rule_consequents_are_disjoint_from_antecedents() {
        for r in generate_rules(&textbook_large(), 0.0) {
            assert!(r.antecedent.minus(&r.consequent) == r.antecedent);
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
        }
    }
}
