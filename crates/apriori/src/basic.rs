//! The **Basic** generalized miner (Srikant & Agrawal, VLDB '95): plain
//! Apriori in which every transaction is extended with *all* ancestors of
//! its items before counting. Correct and simple; the reference point the
//! Cumulate optimizations are measured against.

use crate::count::CountingBackend;
use crate::itemset::LargeItemsets;
use crate::levelwise::{GenLevelMiner, GenStrategy};
use crate::parallel::Parallelism;
use crate::MinSupport;
use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::TransactionSource;
use std::io;

/// Mine all generalized large itemsets with the Basic algorithm. Every
/// counting pass uses the worker pool `parallelism` selects; the result is
/// identical for every policy.
pub fn basic<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    min_support: MinSupport,
    backend: CountingBackend,
    parallelism: Parallelism,
) -> io::Result<LargeItemsets> {
    basic_with_ctrl(source, tax, min_support, backend, parallelism, None)
}

/// [`basic`] under an optional cancel token: every pass checks `ctrl` at
/// block boundaries and a cancelled run returns the token's
/// [`io::ErrorKind::Interrupted`] error (see [`negassoc_txdb::ctrl`]).
pub fn basic_with_ctrl<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    min_support: MinSupport,
    backend: CountingBackend,
    parallelism: Parallelism,
    ctrl: Option<&negassoc_txdb::ctrl::CancelToken>,
) -> io::Result<LargeItemsets> {
    GenLevelMiner::new_with_ctrl(
        source,
        tax,
        min_support,
        GenStrategy::Basic,
        backend,
        parallelism,
        ctrl,
    )?
    .run_to_completion()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use negassoc_taxonomy::{ItemId, TaxonomyBuilder};
    use negassoc_txdb::{TransactionDb, TransactionDbBuilder};

    /// Taxonomy + database used across the generalized-miner tests:
    ///
    /// clothes -> {jackets, ski pants}; footwear -> {shoes, hiking boots}
    /// (the running example of Srikant & Agrawal '95).
    pub(crate) fn sa95() -> (Taxonomy, TransactionDb, [ItemId; 6]) {
        let mut tb = TaxonomyBuilder::new();
        let clothes = tb.add_root("clothes");
        let jackets = tb.add_child(clothes, "jackets").unwrap();
        let ski = tb.add_child(clothes, "ski pants").unwrap();
        let footwear = tb.add_root("footwear");
        let shoes = tb.add_child(footwear, "shoes").unwrap();
        let boots = tb.add_child(footwear, "hiking boots").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        db.add([shoes]);
        db.add([jackets, boots]);
        db.add([ski, boots]);
        db.add([shoes]);
        db.add([shoes]);
        db.add([jackets]);
        (
            tax,
            db.build(),
            [clothes, jackets, ski, footwear, shoes, boots],
        )
    }

    #[test]
    fn sa95_running_example() {
        let (tax, db, [clothes, jackets, _ski, footwear, shoes, boots]) = sa95();
        // minsup = 2 transactions (30% of 6, rounded like the paper).
        let large = basic(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();

        // Singles: jackets(2), clothes(3), shoes(3), boots(2), footwear(5).
        assert_eq!(large.support_of(&[jackets]), Some(2));
        assert_eq!(large.support_of(&[clothes]), Some(3));
        assert_eq!(large.support_of(&[shoes]), Some(3));
        assert_eq!(large.support_of(&[boots]), Some(2));
        assert_eq!(large.support_of(&[footwear]), Some(5));
        assert_eq!(large.level_len(1), 5); // ski pants has support 1

        // Pairs: {clothes, boots} = 2, {clothes, footwear} = 2.
        let mut pair = vec![clothes, boots];
        pair.sort();
        assert_eq!(large.support_of(&pair), Some(2));
        let mut pair2 = vec![clothes, footwear];
        pair2.sort();
        assert_eq!(large.support_of(&pair2), Some(2));
        // Ancestor pairs are pruned: {footwear, boots} never reported.
        let mut anc = vec![footwear, boots];
        anc.sort();
        assert_eq!(large.support_of(&anc), None);
        assert_eq!(large.level_len(2), 2);
        assert_eq!(large.max_level(), 2);
    }

    #[test]
    fn flat_taxonomy_reduces_to_plain_apriori() {
        // With a taxonomy of only roots, Basic must agree with flat Apriori.
        let mut tb = TaxonomyBuilder::new();
        for i in 0..6 {
            tb.add_root(&format!("i{i}"));
        }
        let tax = tb.build();
        let mut db = TransactionDbBuilder::new();
        db.add([ItemId(1), ItemId(3), ItemId(4)]);
        db.add([ItemId(2), ItemId(3), ItemId(5)]);
        db.add([ItemId(1), ItemId(2), ItemId(3), ItemId(5)]);
        db.add([ItemId(2), ItemId(5)]);
        let db = db.build();

        let gen = basic(
            &db,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        let flat =
            crate::apriori::apriori(&db, MinSupport::Count(2), CountingBackend::HashTree).unwrap();
        assert_eq!(gen.total(), flat.total());
        for (set, sup) in flat.iter() {
            assert_eq!(gen.support_of_set(set), Some(sup));
        }
    }

    #[test]
    fn empty_database_yields_nothing() {
        let (tax, _, _) = sa95();
        let db = TransactionDbBuilder::new().build();
        let large = basic(
            &db,
            &tax,
            MinSupport::Fraction(0.5),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(large.total(), 0);
    }
}
