use negassoc_taxonomy::fxhash::FxHashMap;
use negassoc_taxonomy::ItemId;
use std::fmt;

/// An immutable itemset: a strictly ascending, boxed slice of item ids.
///
/// Two words on the stack, one allocation, cheap hashing with the workspace
/// Fx hasher — itemsets are the keys of every support table in the miner.
///
/// ```
/// use negassoc_apriori::Itemset;
/// use negassoc_taxonomy::ItemId;
///
/// let a = Itemset::from_unsorted(vec![ItemId(3), ItemId(1), ItemId(3)]);
/// assert_eq!(a.items(), &[ItemId(1), ItemId(3)]);
/// let b = Itemset::from_unsorted(vec![ItemId(1), ItemId(2), ItemId(3)]);
/// assert!(a.is_subset_of(&b));
/// assert_eq!(b.minus(&a).items(), &[ItemId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Itemset(Box<[ItemId]>);

impl Itemset {
    /// Build from items that are already strictly ascending.
    ///
    /// # Panics
    /// Debug-asserts the ordering invariant.
    pub fn from_sorted<I: Into<Box<[ItemId]>>>(items: I) -> Self {
        let items = items.into();
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "itemset must be strictly ascending"
        );
        Itemset(items)
    }

    /// Build from arbitrary items; sorts and deduplicates.
    pub fn from_unsorted(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset(items.into_boxed_slice())
    }

    /// A single-item set.
    pub fn singleton(item: ItemId) -> Self {
        Itemset(Box::new([item]))
    }

    /// The items, ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.0
    }

    /// Number of items (the itemset's *length* in the paper's terms).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// `true` when `self ⊆ other` (linear merge).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_sorted_subset(&self.0, &other.0)
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Itemset(out.into_boxed_slice())
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &Itemset) -> Itemset {
        let out: Vec<ItemId> = self
            .0
            .iter()
            .copied()
            .filter(|i| !other.contains(*i))
            .collect();
        Itemset(out.into_boxed_slice())
    }

    /// The `len - 1` subsets obtained by dropping one item, in drop-index
    /// order.
    pub fn one_smaller_subsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.0.len()).map(move |skip| {
            let mut v = Vec::with_capacity(self.0.len() - 1);
            v.extend_from_slice(&self.0[..skip]);
            v.extend_from_slice(&self.0[skip + 1..]);
            Itemset(v.into_boxed_slice())
        })
    }

    /// Replace the item at `pos` with `new`, re-sorting. Returns `None`
    /// when `new` already occurs elsewhere in the set (the replacement
    /// would collapse the set).
    pub fn replace(&self, pos: usize, new: ItemId) -> Option<Itemset> {
        if self
            .0
            .iter()
            .enumerate()
            .any(|(i, &it)| i != pos && it == new)
        {
            return None;
        }
        let mut v = self.0.to_vec();
        v[pos] = new;
        v.sort_unstable();
        Some(Itemset(v.into_boxed_slice()))
    }
}

/// `true` when sorted slice `a` is a subset of sorted slice `b`.
pub(crate) fn is_sorted_subset(a: &[ItemId], b: &[ItemId]) -> bool {
    let mut j = 0;
    'outer: for &want in a {
        while j < b.len() {
            match b[j].cmp(&want) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, it) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", it.0)?;
        }
        write!(f, "}}")
    }
}

impl From<Vec<ItemId>> for Itemset {
    fn from(v: Vec<ItemId>) -> Self {
        Itemset::from_unsorted(v)
    }
}

/// The large (frequent) itemsets of a database, stored per level with O(1)
/// support lookup, plus the database size needed to turn counts into
/// fractions.
#[derive(Clone, Debug, Default)]
pub struct LargeItemsets {
    /// `levels[k]` holds the large k-itemsets; `levels[0]` is unused.
    levels: Vec<FxHashMap<Itemset, u64>>,
    num_transactions: u64,
    min_support_count: u64,
}

impl LargeItemsets {
    /// An empty store for a database of `num_transactions`, mined at
    /// `min_support_count`.
    pub fn new(num_transactions: u64, min_support_count: u64) -> Self {
        Self {
            levels: Vec::new(),
            num_transactions,
            min_support_count,
        }
    }

    /// Number of transactions in the mined database.
    #[inline]
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// The absolute minimum-support count used during mining.
    #[inline]
    pub fn min_support_count(&self) -> u64 {
        self.min_support_count
    }

    /// Record a large itemset with its support count.
    pub fn insert(&mut self, itemset: Itemset, support: u64) {
        let k = itemset.len();
        if self.levels.len() <= k {
            self.levels.resize_with(k + 1, FxHashMap::default);
        }
        self.levels[k].insert(itemset, support);
    }

    /// Support count of an itemset given as a sorted slice, if it is large.
    pub fn support_of(&self, items: &[ItemId]) -> Option<u64> {
        let set = Itemset::from_sorted(items.to_vec());
        self.support_of_set(&set)
    }

    /// Support count of an [`Itemset`], if it is large.
    pub fn support_of_set(&self, itemset: &Itemset) -> Option<u64> {
        self.levels.get(itemset.len())?.get(itemset).copied()
    }

    /// `true` when `itemset` was found large.
    pub fn contains(&self, itemset: &Itemset) -> bool {
        self.support_of_set(itemset).is_some()
    }

    /// Support as a fraction of the database.
    pub fn support_fraction(&self, itemset: &Itemset) -> Option<f64> {
        let s = self.support_of_set(itemset)?;
        Some(s as f64 / self.num_transactions.max(1) as f64)
    }

    /// The large k-itemsets.
    pub fn level(&self, k: usize) -> impl Iterator<Item = (&Itemset, u64)> + '_ {
        self.levels
            .get(k)
            .into_iter()
            .flat_map(|m| m.iter().map(|(i, &s)| (i, s)))
    }

    /// Number of large k-itemsets.
    pub fn level_len(&self, k: usize) -> usize {
        self.levels.get(k).map_or(0, |m| m.len())
    }

    /// Largest k with any large k-itemset (0 when empty).
    pub fn max_level(&self) -> usize {
        (0..self.levels.len())
            .rev()
            .find(|&k| !self.levels[k].is_empty())
            .unwrap_or(0)
    }

    /// All large itemsets of every size, level by level.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u64)> + '_ {
        self.levels
            .iter()
            .flat_map(|m| m.iter().map(|(i, &s)| (i, s)))
    }

    /// Total number of large itemsets across all levels.
    pub fn total(&self) -> usize {
        self.levels.iter().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 5, 3]);
        assert_eq!(s.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(format!("{s:?}"), "{1,3,5}");
        assert!(!s.is_empty());
        assert_eq!(Itemset::singleton(ItemId(9)).items(), &[ItemId(9)]);
    }

    #[test]
    fn subset_union_minus() {
        let a = set(&[1, 3]);
        let b = set(&[1, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(set(&[]).is_subset_of(&a));
        assert_eq!(a.union(&set(&[2, 3])), set(&[1, 2, 3]));
        assert_eq!(b.minus(&a), set(&[2, 4]));
        assert_eq!(a.minus(&b), set(&[]));
        assert!(a.contains(ItemId(3)));
        assert!(!a.contains(ItemId(2)));
    }

    #[test]
    fn one_smaller_subsets_enumerates_all() {
        let s = set(&[1, 2, 3]);
        let subs: Vec<Itemset> = s.one_smaller_subsets().collect();
        assert_eq!(subs, vec![set(&[2, 3]), set(&[1, 3]), set(&[1, 2])]);
        assert_eq!(set(&[7]).one_smaller_subsets().next(), Some(set(&[])));
    }

    #[test]
    fn replace_resorts_and_rejects_collisions() {
        let s = set(&[2, 5, 9]);
        assert_eq!(s.replace(0, ItemId(7)), Some(set(&[5, 7, 9])));
        assert_eq!(s.replace(2, ItemId(1)), Some(set(&[1, 2, 5])));
        assert_eq!(s.replace(0, ItemId(5)), None); // collides with existing 5
        assert_eq!(s.replace(1, ItemId(5)), Some(s.clone())); // same value at same pos
    }

    #[test]
    fn large_itemsets_store() {
        let mut l = LargeItemsets::new(100, 10);
        l.insert(set(&[1]), 50);
        l.insert(set(&[2]), 40);
        l.insert(set(&[1, 2]), 30);
        assert_eq!(l.num_transactions(), 100);
        assert_eq!(l.min_support_count(), 10);
        assert_eq!(l.support_of(&[ItemId(1)]), Some(50));
        assert_eq!(l.support_of(&[ItemId(1), ItemId(2)]), Some(30));
        assert_eq!(l.support_of(&[ItemId(3)]), None);
        assert!(l.contains(&set(&[1, 2])));
        assert_eq!(l.support_fraction(&set(&[2])), Some(0.4));
        assert_eq!(l.level_len(1), 2);
        assert_eq!(l.level_len(2), 1);
        assert_eq!(l.level_len(9), 0);
        assert_eq!(l.max_level(), 2);
        assert_eq!(l.total(), 3);
        assert_eq!(l.iter().count(), 3);
        assert_eq!(l.level(1).count(), 2);
    }

    #[test]
    fn empty_store() {
        let l = LargeItemsets::new(0, 1);
        assert_eq!(l.max_level(), 0);
        assert_eq!(l.total(), 0);
        assert_eq!(l.support_of(&[ItemId(0)]), None);
    }
}
