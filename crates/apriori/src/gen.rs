//! The `apriori-gen` candidate generator of Agrawal & Srikant (VLDB '94):
//! a self-join of the large (k−1)-itemsets followed by the downward-closure
//! prune.

use crate::itemset::Itemset;
use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::ItemId;

/// Generate the size-`k` candidates from the large (k−1)-itemsets.
///
/// *Join:* two (k−1)-itemsets sharing their first k−2 items produce one
/// k-candidate. *Prune:* a candidate survives only when **all** of its
/// (k−1)-subsets are large.
///
/// `large_prev` may be in any order; it is indexed internally.
pub fn apriori_gen(large_prev: &[Itemset]) -> Vec<Itemset> {
    if large_prev.is_empty() {
        return Vec::new();
    }
    let k_minus_1 = large_prev[0].len();
    debug_assert!(
        large_prev.iter().all(|s| s.len() == k_minus_1),
        "apriori_gen input must be uniform in size"
    );
    let lookup: FxHashSet<&Itemset> = large_prev.iter().collect();

    // Sort for the prefix join.
    let mut sorted: Vec<&Itemset> = large_prev.iter().collect();
    sorted.sort();

    let mut out = Vec::new();
    let mut joined: Vec<ItemId> = Vec::with_capacity(k_minus_1 + 1);
    for (i, a) in sorted.iter().enumerate() {
        for b in &sorted[i + 1..] {
            let (pa, pb) = (a.items(), b.items());
            // Shared (k-2)-prefix required; `sorted` order means once the
            // prefix differs we can stop extending `a`.
            if pa[..k_minus_1 - 1] != pb[..k_minus_1 - 1] {
                break;
            }
            joined.clear();
            joined.extend_from_slice(pa);
            joined.push(pb[k_minus_1 - 1]);
            let candidate = Itemset::from_sorted(joined.as_slice().to_vec());
            if prune_ok(&candidate, &lookup) {
                out.push(candidate);
            }
        }
    }
    out
}

/// `true` when every (k−1)-subset of `candidate` is in `lookup`.
fn prune_ok(candidate: &Itemset, lookup: &FxHashSet<&Itemset>) -> bool {
    candidate
        .one_smaller_subsets()
        .all(|sub| lookup.contains(&sub))
}

/// Special-cased generation of 2-candidates from large 1-itemsets: all
/// pairs (the join prefix is empty, and every 1-subset is large by
/// construction). `items` must be the large 1-items.
pub fn pairs_of(items: &[ItemId]) -> Vec<Itemset> {
    let mut sorted = items.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = Vec::with_capacity(sorted.len() * sorted.len().saturating_sub(1) / 2);
    for i in 0..sorted.len() {
        for j in i + 1..sorted.len() {
            out.push(Itemset::from_sorted(vec![sorted[i], sorted[j]]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    #[test]
    fn textbook_join_and_prune() {
        // The canonical example from Agrawal & Srikant:
        // L3 = {123, 124, 134, 135, 234} -> join gives {1234, 1345},
        // prune removes 1345 (145 not in L3) leaving {1234}.
        let l3 = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3, 4]),
            set(&[1, 3, 5]),
            set(&[2, 3, 4]),
        ];
        let c4 = apriori_gen(&l3);
        assert_eq!(c4, vec![set(&[1, 2, 3, 4])]);
    }

    #[test]
    fn join_from_pairs() {
        let l2 = vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3]), set(&[2, 4])];
        let mut c3 = apriori_gen(&l2);
        c3.sort();
        // {1,2,3} survives (all 2-subsets large); {2,3,4} pruned (no {3,4}).
        assert_eq!(c3, vec![set(&[1, 2, 3])]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(apriori_gen(&[]).is_empty());
        assert!(apriori_gen(&[set(&[1, 2])]).is_empty());
    }

    #[test]
    fn pairs_of_generates_all_unordered_pairs() {
        let items = vec![ItemId(3), ItemId(1), ItemId(2), ItemId(3)];
        let mut pairs = pairs_of(&items);
        pairs.sort();
        assert_eq!(pairs, vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])]);
        assert!(pairs_of(&[]).is_empty());
        assert!(pairs_of(&[ItemId(1)]).is_empty());
    }

    #[test]
    fn input_order_does_not_matter() {
        let mut l2 = vec![set(&[2, 3]), set(&[1, 2]), set(&[1, 3])];
        let a = apriori_gen(&l2);
        l2.reverse();
        let b = apriori_gen(&l2);
        assert_eq!(a, b);
        assert_eq!(a, vec![set(&[1, 2, 3])]);
    }
}
