//! The **Cumulate** generalized miner (Srikant & Agrawal, VLDB '95):
//! Basic plus three optimizations that all target the cost of transaction
//! extension and candidate counting —
//!
//! 1. *ancestor filtering*: only ancestors that actually occur in some
//!    current candidate are added to a transaction (and items that occur in
//!    no candidate are dropped outright),
//! 2. *ancestor precomputation*: the taxonomy's transitive closure is
//!    materialized once ([`AncestorTable`]),
//! 3. *ancestor-pair pruning*: level-2 candidates containing an item and
//!    its ancestor are deleted (their supports are degenerate; downward
//!    closure removes all supersets).
//!
//! The mined itemsets are identical to [`crate::basic`]; only the work per
//! pass shrinks. The `ablation_cumulate` benchmark measures the difference.

use crate::count::CountingBackend;
use crate::itemset::LargeItemsets;
use crate::levelwise::{GenLevelMiner, GenStrategy};
use crate::parallel::Parallelism;
use crate::MinSupport;
use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::TransactionSource;
use std::io;

/// Mine all generalized large itemsets with the Cumulate algorithm.
///
/// ```
/// use negassoc_apriori::{cumulate::cumulate, count::CountingBackend, MinSupport};
/// use negassoc_apriori::parallel::Parallelism;
/// use negassoc_taxonomy::TaxonomyBuilder;
/// use negassoc_txdb::TransactionDbBuilder;
///
/// let mut tb = TaxonomyBuilder::new();
/// let drinks = tb.add_root("drinks");
/// let cola = tb.add_child(drinks, "cola").unwrap();
/// let juice = tb.add_child(drinks, "juice").unwrap();
/// let tax = tb.build();
///
/// let mut db = TransactionDbBuilder::new();
/// db.add([cola]);
/// db.add([juice]);
/// db.add([cola, juice]);
/// let db = db.build();
///
/// let large = cumulate(
///     &db,
///     &tax,
///     MinSupport::Count(2),
///     CountingBackend::HashTree,
///     Parallelism::Sequential,
/// )
/// .unwrap();
/// // The category "drinks" is supported by every transaction even though
/// // it never appears literally.
/// assert_eq!(large.support_of(&[drinks]), Some(3));
/// assert_eq!(large.support_of(&[cola]), Some(2));
/// ```
pub fn cumulate<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    min_support: MinSupport,
    backend: CountingBackend,
    parallelism: Parallelism,
) -> io::Result<LargeItemsets> {
    cumulate_with_ctrl(source, tax, min_support, backend, parallelism, None)
}

/// [`cumulate`] under an optional cancel token: every pass checks `ctrl`
/// at block boundaries and a cancelled run returns the token's
/// [`io::ErrorKind::Interrupted`] error (see [`negassoc_txdb::ctrl`]).
pub fn cumulate_with_ctrl<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    min_support: MinSupport,
    backend: CountingBackend,
    parallelism: Parallelism,
    ctrl: Option<&negassoc_txdb::ctrl::CancelToken>,
) -> io::Result<LargeItemsets> {
    GenLevelMiner::new_with_ctrl(
        source,
        tax,
        min_support,
        GenStrategy::Cumulate,
        backend,
        parallelism,
        ctrl,
    )?
    .run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::basic;
    use crate::basic::tests::sa95;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    #[test]
    fn matches_basic_on_sa95_example() {
        let (tax, db, _) = sa95();
        for ms in [1u64, 2, 3, 4] {
            let a = basic(
                &db,
                &tax,
                MinSupport::Count(ms),
                CountingBackend::HashTree,
                Parallelism::Sequential,
            )
            .unwrap();
            let b = cumulate(
                &db,
                &tax,
                MinSupport::Count(ms),
                CountingBackend::HashTree,
                Parallelism::Sequential,
            )
            .unwrap();
            assert_eq!(a.total(), b.total(), "minsup {ms}");
            for (set, sup) in a.iter() {
                assert_eq!(b.support_of_set(set), Some(sup), "minsup {ms}, {set:?}");
            }
        }
    }

    #[test]
    fn same_pass_count_as_basic() {
        let (tax, db, _) = sa95();
        let pc = PassCounter::new(db);
        cumulate(
            &pc,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        let cumulate_passes = pc.passes();
        pc.reset();
        basic(
            &pc,
            &tax,
            MinSupport::Count(2),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(cumulate_passes, pc.passes());
    }

    #[test]
    fn category_only_transactions_are_not_required() {
        // Transactions contain only leaves (the paper's setting); category
        // supports must still come out right.
        let (tax, db, [clothes, ..]) = sa95();
        let large = cumulate(
            &db,
            &tax,
            MinSupport::Count(3),
            CountingBackend::SubsetHashMap,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(large.support_of(&[clothes]), Some(3));
        let _ = db;
    }

    #[test]
    fn empty_taxonomy_and_database() {
        let tax = negassoc_taxonomy::TaxonomyBuilder::new().build();
        let db = TransactionDbBuilder::new().build();
        let large = cumulate(
            &db,
            &tax,
            MinSupport::Fraction(0.1),
            CountingBackend::HashTree,
            Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(large.total(), 0);
    }
}
