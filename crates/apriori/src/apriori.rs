//! Flat (taxonomy-less) Apriori — the baseline frequent-itemset miner of
//! Agrawal & Srikant (VLDB '94). One pass per level: level 1 counts item
//! occurrences directly, higher levels count `apriori-gen` candidates with
//! the configured backend.

use crate::count::{count_candidates, identity_mapper, CountingBackend};
use crate::gen::{apriori_gen, pairs_of};
use crate::itemset::{Itemset, LargeItemsets};
use crate::MinSupport;
use negassoc_taxonomy::ItemId;
use negassoc_txdb::TransactionSource;
use std::io;

/// Mine all large itemsets of `source`.
pub fn apriori<S: TransactionSource + ?Sized>(
    source: &S,
    min_support: MinSupport,
    backend: CountingBackend,
) -> io::Result<LargeItemsets> {
    // Pass 1: item counts.
    let mut counts: Vec<u64> = Vec::new();
    let mut num_transactions = 0u64;
    source.pass(&mut |t| {
        num_transactions += 1;
        for &it in t.items() {
            let idx = it.index();
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
    })?;
    let minsup = min_support.to_count(num_transactions);
    let mut large = LargeItemsets::new(num_transactions, minsup);

    let mut frontier: Vec<Itemset> = Vec::new();
    let mut large_1: Vec<ItemId> = Vec::new();
    for (idx, &c) in counts.iter().enumerate() {
        if c >= minsup {
            let item = ItemId(idx as u32);
            large_1.push(item);
            let set = Itemset::singleton(item);
            frontier.push(set.clone());
            large.insert(set, c);
        }
    }

    // Levels >= 2: candidate generation + one counting pass each.
    let mut k = 2;
    loop {
        let candidates = if k == 2 {
            pairs_of(&large_1)
        } else {
            apriori_gen(&frontier)
        };
        if candidates.is_empty() {
            break;
        }
        let counted = count_candidates(source, candidates, backend, &mut identity_mapper)?;
        frontier.clear();
        for (set, count) in counted {
            if count >= minsup {
                frontier.push(set.clone());
                large.insert(set, count);
            }
        }
        if frontier.is_empty() {
            break;
        }
        k += 1;
    }
    Ok(large)
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    /// The worked example of Agrawal & Srikant (VLDB '94), Figure 3-ish:
    /// four transactions, minsup 2.
    fn textbook_db() -> negassoc_txdb::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add(ids(&[1, 3, 4]));
        b.add(ids(&[2, 3, 5]));
        b.add(ids(&[1, 2, 3, 5]));
        b.add(ids(&[2, 5]));
        b.build()
    }

    #[test]
    fn textbook_example() {
        let large = apriori(
            &textbook_db(),
            MinSupport::Count(2),
            CountingBackend::HashTree,
        )
        .unwrap();
        assert_eq!(large.num_transactions(), 4);
        assert_eq!(large.min_support_count(), 2);
        // L1 = {1},{2},{3},{5}; item 4 appears once.
        assert_eq!(large.level_len(1), 4);
        assert_eq!(large.support_of(&ids(&[1])), Some(2));
        assert_eq!(large.support_of(&ids(&[4])), None);
        // L2 = {1,3},{2,3},{2,5},{3,5}.
        assert_eq!(large.level_len(2), 4);
        assert_eq!(large.support_of(&ids(&[2, 5])), Some(3));
        assert_eq!(large.support_of(&ids(&[1, 2])), None);
        // L3 = {2,3,5}.
        assert_eq!(large.level_len(3), 1);
        assert_eq!(large.support_of(&ids(&[2, 3, 5])), Some(2));
        assert_eq!(large.max_level(), 3);
    }

    #[test]
    fn backends_agree() {
        let a = apriori(
            &textbook_db(),
            MinSupport::Fraction(0.5),
            CountingBackend::HashTree,
        )
        .unwrap();
        let b = apriori(
            &textbook_db(),
            MinSupport::Fraction(0.5),
            CountingBackend::SubsetHashMap,
        )
        .unwrap();
        assert_eq!(a.total(), b.total());
        for (set, sup) in a.iter() {
            assert_eq!(b.support_of_set(set), Some(sup));
        }
    }

    #[test]
    fn one_pass_per_level_plus_one() {
        let pc = PassCounter::new(textbook_db());
        let large = apriori(&pc, MinSupport::Count(2), CountingBackend::HashTree).unwrap();
        // Passes: 1 (items) + one per counted level (2, 3) + one for the
        // empty level-4 candidate check? No: level-4 candidates are empty
        // (apriori_gen from a single L3 itemset), so no extra pass.
        assert_eq!(large.max_level(), 3);
        assert_eq!(pc.passes(), 3);
    }

    #[test]
    fn empty_database() {
        let db = TransactionDbBuilder::new().build();
        let large = apriori(&db, MinSupport::Fraction(0.1), CountingBackend::HashTree).unwrap();
        assert_eq!(large.total(), 0);
    }

    #[test]
    fn minsup_equal_to_db_size() {
        let mut b = TransactionDbBuilder::new();
        b.add(ids(&[1, 2]));
        b.add(ids(&[1, 2]));
        let large = apriori(
            &b.build(),
            MinSupport::Fraction(1.0),
            CountingBackend::HashTree,
        )
        .unwrap();
        assert_eq!(large.support_of(&ids(&[1, 2])), Some(2));
        assert_eq!(large.total(), 3);
    }
}
