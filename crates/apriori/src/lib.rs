//! Frequent-itemset mining substrate.
//!
//! The negative-association miner of the paper (Savasere, Omiecinski &
//! Navathe, ICDE 1998) starts from the *generalized large itemsets* of the
//! database — itemsets over leaves **and** taxonomy categories whose support
//! exceeds the user's minimum. The paper defers that step to the algorithms
//! of Srikant & Agrawal's *Mining Generalized Association Rules* (VLDB '95):
//! **Basic**, **Cumulate** and **EstMerge**. This crate reimplements all
//! three from scratch, together with the classic machinery they share:
//!
//! * [`Itemset`] and [`LargeItemsets`] — compact itemset values and the
//!   per-level result store with O(1) support lookup,
//! * [`gen::apriori_gen`] — the join + prune candidate generator
//!   of Agrawal & Srikant (VLDB '94),
//! * [`HashTree`] — the classic hash-tree subset counter,
//! * [`count`] — interchangeable counting backends (hash tree, per-candidate
//!   hash map, vertical TID-lists),
//! * [`apriori`] — flat (taxonomy-less) Apriori,
//! * [`basic`], [`cumulate`], [`est_merge`] — generalized mining,
//! * [`rules`] — positive association rules via ap-genrules.
//!
//! # Example
//!
//! ```
//! use negassoc_apriori::{apriori::apriori, count::CountingBackend, MinSupport};
//! use negassoc_txdb::TransactionDbBuilder;
//! use negassoc_taxonomy::ItemId;
//!
//! let mut b = TransactionDbBuilder::new();
//! for _ in 0..3 { b.add([ItemId(0), ItemId(1)]); }
//! b.add([ItemId(1)]);
//! let db = b.build();
//!
//! let large = apriori(&db, MinSupport::Fraction(0.5), CountingBackend::HashTree).unwrap();
//! assert_eq!(large.support_of(&[ItemId(0), ItemId(1)]), Some(3));
//! ```

pub mod apriori;
pub mod apriori_tid;
pub mod basic;
pub mod count;
pub mod cumulate;
pub mod est_merge;
pub mod gen;
pub mod generalized;
pub mod hash_tree;
pub mod levelwise;
pub mod parallel;
pub mod partition_mine;
pub mod rules;

mod itemset;

pub use hash_tree::HashTree;
pub use itemset::{Itemset, LargeItemsets};

/// Minimum support, either as a fraction of the database or an absolute
/// transaction count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MinSupport {
    /// Fraction of transactions in `0.0 ..= 1.0`.
    Fraction(f64),
    /// Absolute number of transactions.
    Count(u64),
}

impl MinSupport {
    /// Resolve to an absolute count for a database of `num_transactions`,
    /// rounding fractions up (a rule must reach the threshold, not approach
    /// it) and never below 1 so empty itemsets are not "large" in an empty
    /// database.
    pub fn to_count(self, num_transactions: u64) -> u64 {
        match self {
            MinSupport::Count(c) => c.max(1),
            MinSupport::Fraction(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "support fraction must be within [0, 1], got {f}"
                );
                ((f * num_transactions as f64).ceil() as u64).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_support_resolution() {
        assert_eq!(MinSupport::Count(5).to_count(100), 5);
        assert_eq!(MinSupport::Count(0).to_count(100), 1);
        assert_eq!(MinSupport::Fraction(0.015).to_count(1000), 15);
        assert_eq!(MinSupport::Fraction(0.0101).to_count(100), 2); // ceil
        assert_eq!(MinSupport::Fraction(0.0).to_count(100), 1);
        assert_eq!(MinSupport::Fraction(1.0).to_count(100), 100);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn min_support_fraction_out_of_range_panics() {
        MinSupport::Fraction(1.5).to_count(10);
    }
}
