//! **AprioriTid** (Agrawal & Srikant, VLDB '94 — the second algorithm of
//! the paper the whole candidate framework comes from): after the first
//! pass, the raw database is never read again. Instead a per-transaction
//! *candidate-id list* `C̄_k` carries which large k-itemsets each
//! transaction contains; a (k+1)-candidate `c = p ∪ q` (with `p, q` the
//! large k-itemsets that joined into it) is contained in a transaction
//! exactly when both `p` and `q` appear in its `C̄_k` entry. Transactions
//! whose entry empties drop out entirely, so `C̄` shrinks as `k` grows —
//! the algorithm gets *faster* per level while plain Apriori keeps paying
//! full scans.
//!
//! Flat (taxonomy-less) mining, as in the original; the generalized miners
//! live in [`crate::basic`] / [`crate::cumulate`] / [`crate::est_merge`].

use crate::itemset::{Itemset, LargeItemsets};
use crate::MinSupport;
use negassoc_taxonomy::fxhash::{FxHashMap, FxHashSet};
use negassoc_taxonomy::ItemId;
use negassoc_txdb::TransactionSource;
use std::io;

/// A candidate with the two large (k−1)-itemset ids that joined into it.
struct TidCandidate {
    itemset: Itemset,
    gen_a: u32,
    gen_b: u32,
    count: u64,
}

/// Mine all large itemsets with AprioriTid. One database pass total.
///
/// ```
/// use negassoc_apriori::{apriori_tid::apriori_tid, MinSupport};
/// use negassoc_taxonomy::ItemId;
/// use negassoc_txdb::TransactionDbBuilder;
///
/// let mut db = TransactionDbBuilder::new();
/// db.add([ItemId(1), ItemId(2)]);
/// db.add([ItemId(1), ItemId(2)]);
/// db.add([ItemId(2)]);
/// let large = apriori_tid(&db.build(), MinSupport::Count(2)).unwrap();
/// assert_eq!(large.support_of(&[ItemId(1), ItemId(2)]), Some(2));
/// ```
pub fn apriori_tid<S: TransactionSource + ?Sized>(
    source: &S,
    min_support: MinSupport,
) -> io::Result<LargeItemsets> {
    // Pass 1: item counts + the initial candidate-id lists. We need the
    // large items before we can encode lists, so the single pass buffers
    // raw transactions' item ids compactly and encodes afterwards. (The
    // original reads the database twice for this; buffering is equivalent
    // and keeps the "one pass" property for disk sources.)
    let mut counts: Vec<u64> = Vec::new();
    let mut buffered: Vec<Vec<ItemId>> = Vec::new();
    source.pass(&mut |t| {
        for &it in t.items() {
            let idx = it.index();
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        buffered.push(t.items().to_vec());
    })?;
    let num_transactions = buffered.len() as u64;
    let minsup = min_support.to_count(num_transactions);
    let mut large = LargeItemsets::new(num_transactions, minsup);

    // L1 and the id space for level 1.
    let mut large_1: Vec<ItemId> = Vec::new();
    let mut item_id_of: FxHashMap<ItemId, u32> = FxHashMap::default();
    for (idx, &c) in counts.iter().enumerate() {
        if c >= minsup {
            let item = ItemId(idx as u32);
            item_id_of.insert(item, large_1.len() as u32);
            large_1.push(item);
            large.insert(Itemset::singleton(item), c);
        }
    }

    // C̄_1: per transaction, the sorted ids of large items it contains.
    // Empty transactions drop out immediately.
    let mut cbar: Vec<Vec<u32>> = buffered
        .into_iter()
        .filter_map(|items| {
            let entry: Vec<u32> = items
                .iter()
                .filter_map(|it| item_id_of.get(it).copied())
                .collect();
            (entry.len() >= 2).then_some(entry)
        })
        .collect();

    // Current level's large itemsets, indexed by their dense ids.
    let mut current: Vec<Itemset> = large_1.iter().map(|&i| Itemset::singleton(i)).collect();

    let mut k = 2;
    while !current.is_empty() && !cbar.is_empty() {
        let mut candidates = generate_with_generators(&current, k);
        if candidates.is_empty() {
            break;
        }
        // Lookup from generator-id pair to candidate index.
        let by_pair: FxHashMap<(u32, u32), usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.gen_a, c.gen_b), i))
            .collect();

        // Count over C̄, building C̄_{k+1} in candidate-index space.
        let mut next_cbar: Vec<Vec<u32>> = Vec::with_capacity(cbar.len());
        let mut entry_scratch: Vec<u32> = Vec::new();
        for entry in &cbar {
            entry_scratch.clear();
            for (i, &a) in entry.iter().enumerate() {
                for &b in &entry[i + 1..] {
                    if let Some(&ci) = by_pair.get(&(a, b)) {
                        candidates[ci].count += 1;
                        entry_scratch.push(ci as u32);
                    }
                }
            }
            if !entry_scratch.is_empty() {
                entry_scratch.sort_unstable();
                next_cbar.push(entry_scratch.clone());
            }
        }

        // Filter large; remap candidate indices to the next level's dense
        // id space.
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        let mut next_current: Vec<Itemset> = Vec::new();
        for (i, c) in candidates.iter().enumerate() {
            if c.count >= minsup {
                remap.insert(i as u32, next_current.len() as u32);
                next_current.push(c.itemset.clone());
                large.insert(c.itemset.clone(), c.count);
            }
        }
        if next_current.is_empty() {
            break;
        }
        cbar = next_cbar
            .into_iter()
            .filter_map(|entry| {
                let mapped: Vec<u32> = entry
                    .iter()
                    .filter_map(|ci| remap.get(ci).copied())
                    .collect();
                (mapped.len() >= 2).then_some(mapped)
            })
            .collect();
        current = next_current;
        k += 1;
    }
    Ok(large)
}

/// `apriori-gen` that also records which two level-k members joined into
/// each candidate (their dense indices in `current`).
fn generate_with_generators(current: &[Itemset], k: usize) -> Vec<TidCandidate> {
    if current.is_empty() {
        return Vec::new();
    }
    if k == 2 {
        // All pairs of singletons; generator ids are the singleton indices.
        let mut out = Vec::new();
        for a in 0..current.len() {
            for b in (a + 1)..current.len() {
                out.push(TidCandidate {
                    itemset: current[a].union(&current[b]),
                    gen_a: a as u32,
                    gen_b: b as u32,
                    count: 0,
                });
            }
        }
        return out;
    }
    // Join: members sharing their first k-2 items. Sort an index so the
    // dense generator ids stay those of `current`.
    let mut order: Vec<u32> = (0..current.len() as u32).collect();
    order.sort_by(|&a, &b| current[a as usize].cmp(&current[b as usize]));
    let lookup: FxHashSet<&Itemset> = current.iter().collect();
    let prefix = k - 2;
    let mut out = Vec::new();
    for (oi, &ai) in order.iter().enumerate() {
        let a = &current[ai as usize];
        for &bi in &order[oi + 1..] {
            let b = &current[bi as usize];
            if a.items()[..prefix] != b.items()[..prefix] {
                break;
            }
            let joined = a.union(b);
            if joined.len() != k {
                continue;
            }
            // Downward-closure prune.
            if joined
                .one_smaller_subsets()
                .all(|sub| lookup.contains(&sub))
            {
                // Normalize generator order so (a, b) pairs match the
                // entry-scan order (entries are sorted ascending by id).
                let (ga, gb) = if ai < bi { (ai, bi) } else { (bi, ai) };
                out.push(TidCandidate {
                    itemset: joined,
                    gen_a: ga,
                    gen_b: gb,
                    count: 0,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::count::CountingBackend;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    fn textbook_db() -> negassoc_txdb::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add(ids(&[1, 3, 4]));
        b.add(ids(&[2, 3, 5]));
        b.add(ids(&[1, 2, 3, 5]));
        b.add(ids(&[2, 5]));
        b.build()
    }

    #[test]
    fn matches_apriori_on_textbook_db() {
        let db = textbook_db();
        for ms in [1u64, 2, 3, 4] {
            let reference = apriori(&db, MinSupport::Count(ms), CountingBackend::HashTree).unwrap();
            let got = apriori_tid(&db, MinSupport::Count(ms)).unwrap();
            assert_eq!(got.total(), reference.total(), "minsup {ms}");
            for (set, sup) in reference.iter() {
                assert_eq!(got.support_of_set(set), Some(sup), "minsup {ms}, {set:?}");
            }
        }
    }

    #[test]
    fn exactly_one_database_pass() {
        let pc = PassCounter::new(textbook_db());
        apriori_tid(&pc, MinSupport::Count(2)).unwrap();
        assert_eq!(pc.passes(), 1);
    }

    #[test]
    fn empty_database() {
        let db = TransactionDbBuilder::new().build();
        let large = apriori_tid(&db, MinSupport::Fraction(0.5)).unwrap();
        assert_eq!(large.total(), 0);
    }

    #[test]
    fn deep_itemsets() {
        // One dominant 4-itemset: levels must reach 4.
        let mut b = TransactionDbBuilder::new();
        for _ in 0..5 {
            b.add(ids(&[1, 2, 3, 4]));
        }
        b.add(ids(&[1, 2]));
        b.add(ids(&[5]));
        let db = b.build();
        let large = apriori_tid(&db, MinSupport::Count(3)).unwrap();
        assert_eq!(large.support_of(&ids(&[1, 2, 3, 4])), Some(5));
        assert_eq!(large.max_level(), 4);
        assert_eq!(large.support_of(&ids(&[5])), None);
        assert_eq!(large.support_of(&ids(&[1, 2])), Some(6));
    }
}
