//! Shared machinery for mining *generalized* large itemsets — itemsets that
//! may contain taxonomy categories as well as leaf items (Srikant & Agrawal,
//! VLDB '95). A transaction supports a category when it contains any of the
//! category's descendants, so counting works on transactions *extended* with
//! the ancestors of their items.
//!
//! All three drivers in this crate ([`crate::basic`], [`crate::cumulate`],
//! [`crate::est_merge`]) prune candidates that contain both an item and one
//! of its ancestors: `support({x, ancestor(x)} ∪ rest) = support({x} ∪
//! rest)`, so such itemsets are redundant and, per Srikant & Agrawal, can be
//! dropped at level 2 without affecting any other large itemset (downward
//! closure removes their supersets automatically). This also makes the three
//! algorithms' outputs identical, which the cross-algorithm tests pin down.

use crate::itemset::Itemset;
use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::{ItemId, Taxonomy};

/// Precomputed ancestor lists (Cumulate optimization 2): `table[i]` holds
/// the proper ancestors of item `i`, nearest first.
#[derive(Clone, Debug)]
pub struct AncestorTable {
    table: Vec<Vec<ItemId>>,
}

impl AncestorTable {
    /// Precompute ancestors for every item of `tax`.
    pub fn new(tax: &Taxonomy) -> Self {
        let table = tax.items().map(|i| tax.ancestors(i).collect()).collect();
        Self { table }
    }

    /// Proper ancestors of `item`, nearest first. Items outside the
    /// taxonomy (possible when transactions mention unknown ids) have none.
    #[inline]
    pub fn ancestors(&self, item: ItemId) -> &[ItemId] {
        self.table.get(item.index()).map_or(&[], |v| v.as_slice())
    }

    /// `true` when `anc` is a proper ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ItemId, desc: ItemId) -> bool {
        self.ancestors(desc).contains(&anc)
    }

    /// `true` when some pair of `items` is in ancestor/descendant relation.
    pub fn has_related_pair(&self, items: &[ItemId]) -> bool {
        // Itemsets are tiny (k <= ~6), so the quadratic scan beats set
        // machinery.
        for (i, &a) in items.iter().enumerate() {
            for &b in &items[i + 1..] {
                if self.is_ancestor(a, b) || self.is_ancestor(b, a) {
                    return true;
                }
            }
        }
        false
    }
}

/// Extend `items` with all ancestors, producing a strictly ascending `buf`.
/// This is what the **Basic** algorithm does for every transaction.
pub fn extend_full(items: &[ItemId], ancestors: &AncestorTable, buf: &mut Vec<ItemId>) {
    buf.clear();
    buf.extend_from_slice(items);
    for &it in items {
        buf.extend_from_slice(ancestors.ancestors(it));
    }
    buf.sort_unstable();
    buf.dedup();
}

/// Extend `items` with ancestors and then keep only items present in
/// `needed` (Cumulate optimizations 1 — add only ancestors that occur in
/// some candidate — and the transaction-trimming refinement: drop items that
/// cannot contribute to any candidate).
pub fn extend_filtered(
    items: &[ItemId],
    ancestors: &AncestorTable,
    needed: &FxHashSet<ItemId>,
    buf: &mut Vec<ItemId>,
) {
    buf.clear();
    for &it in items {
        if needed.contains(&it) {
            buf.push(it);
        }
        for &anc in ancestors.ancestors(it) {
            if needed.contains(&anc) {
                buf.push(anc);
            }
        }
    }
    buf.sort_unstable();
    buf.dedup();
}

/// The set of items mentioned by any candidate (drives [`extend_filtered`]).
pub fn items_of_candidates(candidates: &[Itemset]) -> FxHashSet<ItemId> {
    let mut s = FxHashSet::default();
    for c in candidates {
        s.extend(c.items().iter().copied());
    }
    s
}

/// Drop candidates containing an item together with one of its ancestors.
pub fn prune_ancestor_pairs(candidates: Vec<Itemset>, ancestors: &AncestorTable) -> Vec<Itemset> {
    candidates
        .into_iter()
        .filter(|c| !ancestors.has_related_pair(c.items()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::TaxonomyBuilder;

    fn fig1() -> (Taxonomy, [ItemId; 6]) {
        // A -> {B, C}; C -> {D, E}; F root leafless sibling structure.
        let mut b = TaxonomyBuilder::new();
        let a = b.add_root("A");
        let bb = b.add_child(a, "B").unwrap();
        let c = b.add_child(a, "C").unwrap();
        let d = b.add_child(c, "D").unwrap();
        let e = b.add_child(c, "E").unwrap();
        let f = b.add_root("F");
        (b.build(), [a, bb, c, d, e, f])
    }

    #[test]
    fn ancestor_table_matches_taxonomy() {
        let (tax, [a, bb, c, d, _e, f]) = fig1();
        let t = AncestorTable::new(&tax);
        assert_eq!(t.ancestors(d), &[c, a]);
        assert_eq!(t.ancestors(a), &[]);
        assert!(t.is_ancestor(a, d));
        assert!(!t.is_ancestor(d, a));
        assert!(!t.is_ancestor(f, d));
        assert!(t.has_related_pair(&[bb, d, c]));
        assert!(!t.has_related_pair(&[bb, d, f]));
        assert!(!t.has_related_pair(&[d]));
        // Unknown item id: no ancestors.
        assert_eq!(t.ancestors(ItemId(99)), &[]);
    }

    #[test]
    fn extend_full_adds_all_ancestors_once() {
        let (tax, [a, _bb, c, d, e, _f]) = fig1();
        let t = AncestorTable::new(&tax);
        let mut buf = Vec::new();
        extend_full(&[d, e], &t, &mut buf);
        let mut expect = vec![a, c, d, e];
        expect.sort();
        assert_eq!(buf, expect);
        extend_full(&[], &t, &mut buf);
        assert!(buf.is_empty());
        let _ = tax;
    }

    #[test]
    fn extend_filtered_respects_needed_set() {
        let (tax, [a, _bb, c, d, e, _f]) = fig1();
        let t = AncestorTable::new(&tax);
        let needed: FxHashSet<ItemId> = [c, d].into_iter().collect();
        let mut buf = Vec::new();
        extend_filtered(&[d, e], &t, &needed, &mut buf);
        // d kept; e dropped (not needed); ancestor c added once (needed via
        // both d and e); a dropped.
        let mut expect = vec![c, d];
        expect.sort();
        assert_eq!(buf, expect);
        let _ = (a, tax);
    }

    #[test]
    fn prune_ancestor_pairs_filters() {
        let (tax, [a, bb, c, d, _e, f]) = fig1();
        let t = AncestorTable::new(&tax);
        let sets = vec![
            Itemset::from_unsorted(vec![a, d]), // related
            Itemset::from_unsorted(vec![bb, d]),
            Itemset::from_unsorted(vec![c, d, f]), // related
            Itemset::from_unsorted(vec![bb, f]),
        ];
        let kept = prune_ancestor_pairs(sets, &t);
        assert_eq!(kept.len(), 2);
        let _ = tax;
    }

    #[test]
    fn items_of_candidates_unions() {
        let s = items_of_candidates(&[
            Itemset::from_unsorted(vec![ItemId(1), ItemId(2)]),
            Itemset::from_unsorted(vec![ItemId(2), ItemId(3)]),
        ]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&ItemId(3)));
    }
}
