use crate::fxhash::FxHashMap;
use crate::{ItemId, Taxonomy};
use std::fmt;

/// Errors reported by [`TaxonomyBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuilderError {
    /// The referenced parent id has not been created by this builder.
    UnknownParent(ItemId),
    /// An item with this name already exists (names must be unique so that
    /// serialized taxonomies and CLI lookups are unambiguous).
    DuplicateName(String),
}

impl fmt::Display for BuilderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuilderError::UnknownParent(id) => write!(f, "unknown parent item id {id}"),
            BuilderError::DuplicateName(n) => write!(f, "duplicate item name {n:?}"),
        }
    }
}

impl std::error::Error for BuilderError {}

/// Incremental, validated construction of a [`Taxonomy`].
///
/// Items receive dense ids in insertion order. Because a child's parent must
/// already exist, cycles are impossible by construction and each item has
/// exactly one parent — the structure is always a forest.
#[derive(Default, Debug)]
pub struct TaxonomyBuilder {
    names: Vec<Box<str>>,
    parent: Vec<Option<ItemId>>,
    children: Vec<Vec<ItemId>>,
    roots: Vec<ItemId>,
    depth: Vec<u32>,
    by_name: FxHashMap<Box<str>, ItemId>,
}

impl TaxonomyBuilder {
    /// A builder with no items.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder pre-sized for `n` items.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            names: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            children: Vec::with_capacity(n),
            roots: Vec::new(),
            depth: Vec::with_capacity(n),
            by_name: FxHashMap::default(),
        }
    }

    /// Number of items added so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no items have been added.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn push(&mut self, name: &str, parent: Option<ItemId>) -> Result<ItemId, BuilderError> {
        if self.by_name.contains_key(name) {
            return Err(BuilderError::DuplicateName(name.to_owned()));
        }
        if let Some(p) = parent {
            if p.index() >= self.names.len() {
                return Err(BuilderError::UnknownParent(p));
            }
        }
        let id = ItemId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.by_name.insert(boxed.clone(), id);
        self.names.push(boxed);
        self.parent.push(parent);
        self.children.push(Vec::new());
        match parent {
            Some(p) => {
                self.children[p.index()].push(id);
                let d = self.depth[p.index()] + 1;
                self.depth.push(d);
            }
            None => {
                self.roots.push(id);
                self.depth.push(0);
            }
        }
        Ok(id)
    }

    /// Add a root item (a top-level category or a flat item).
    ///
    /// # Panics
    /// Panics if the name is already taken; use [`Self::try_add_root`] to
    /// handle that case.
    pub fn add_root(&mut self, name: &str) -> ItemId {
        // negassoc-lint: allow(L001) -- documented panicking convenience; try_add_root is the fallible twin
        self.try_add_root(name).expect("duplicate root name")
    }

    /// Fallible version of [`Self::add_root`].
    pub fn try_add_root(&mut self, name: &str) -> Result<ItemId, BuilderError> {
        self.push(name, None)
    }

    /// Add `name` as a child of `parent`.
    pub fn add_child(&mut self, parent: ItemId, name: &str) -> Result<ItemId, BuilderError> {
        self.push(name, Some(parent))
    }

    /// Look up an already-added item by name.
    pub fn id_of(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// Finish building.
    pub fn build(self) -> Taxonomy {
        let num_leaves = self.children.iter().filter(|c| c.is_empty()).count();
        Taxonomy {
            names: self.names,
            parent: self.parent,
            children: self.children,
            roots: self.roots,
            depth: self.depth,
            by_name: self.by_name,
            num_leaves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let mut b = TaxonomyBuilder::new();
        b.add_root("a");
        assert_eq!(
            b.try_add_root("a"),
            Err(BuilderError::DuplicateName("a".into()))
        );
        let r = b.add_root("b");
        assert_eq!(
            b.add_child(r, "a"),
            Err(BuilderError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn rejects_unknown_parent() {
        let mut b = TaxonomyBuilder::new();
        assert_eq!(
            b.add_child(ItemId(5), "x"),
            Err(BuilderError::UnknownParent(ItemId(5)))
        );
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut b = TaxonomyBuilder::with_capacity(3);
        let a = b.add_root("a");
        let c = b.add_child(a, "c").unwrap();
        let d = b.add_child(c, "d").unwrap();
        assert_eq!((a, c, d), (ItemId(0), ItemId(1), ItemId(2)));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let t = b.build();
        assert_eq!(t.depth(d), 2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuilderError::UnknownParent(ItemId(9));
        assert!(e.to_string().contains('9'));
        let e = BuilderError::DuplicateName("milk".into());
        assert!(e.to_string().contains("milk"));
    }
}
