use std::fmt;

/// Dense identifier of an item (leaf product or internal category).
///
/// Ids are assigned contiguously from zero by [`crate::TaxonomyBuilder`], so
/// they can index plain vectors. `u32` keeps itemsets compact (paper-scale
/// inventories are tens of thousands of items, far below `u32::MAX`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_ordering_follows_raw_value() {
        assert!(ItemId(1) < ItemId(2));
        assert_eq!(ItemId(7).index(), 7);
    }

    #[test]
    fn item_id_debug_is_compact() {
        assert_eq!(format!("{:?}", ItemId(3)), "i3");
        assert_eq!(format!("{}", ItemId(3)), "3");
    }
}
