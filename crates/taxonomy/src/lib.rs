//! Item taxonomy substrate for negative association rule mining.
//!
//! The algorithms of Savasere, Omiecinski & Navathe (ICDE 1998) derive
//! *expected supports* for candidate negative itemsets from an is-a taxonomy
//! over the items: leaf items are concrete products, internal nodes are
//! categories (departments, sub-categories, brands, ...). This crate provides
//!
//! * [`ItemId`] — a dense `u32` item identifier used across the workspace,
//! * [`Taxonomy`] — an immutable forest with parent / children / sibling /
//!   ancestor queries,
//! * [`TaxonomyBuilder`] — validated construction,
//! * [`FilteredTaxonomy`] — the "compressed" taxonomy of paper §2.4 in which
//!   all items below minimum support have been deleted,
//! * [`fxhash`] — the fast hash map used throughout the workspace, and
//! * text serialization plus DOT / ASCII rendering for inspection.
//!
//! # Example
//!
//! ```
//! use negassoc_taxonomy::TaxonomyBuilder;
//!
//! let mut b = TaxonomyBuilder::new();
//! let beverages = b.add_root("beverages");
//! let water = b.add_child(beverages, "bottled water").unwrap();
//! let evian = b.add_child(water, "Evian").unwrap();
//! let perrier = b.add_child(water, "Perrier").unwrap();
//! let tax = b.build();
//!
//! assert!(tax.is_ancestor(beverages, evian));
//! assert_eq!(tax.siblings(evian).collect::<Vec<_>>(), vec![perrier]);
//! assert_eq!(tax.leaves_under(water).count(), 2);
//! ```

/// Incremental construction of taxonomies ([`TaxonomyBuilder`]).
pub mod builder;
pub mod compress;
pub mod fxhash;
pub mod render;
pub mod stats;
pub mod textfmt;

mod item;
mod taxonomy;

pub use builder::{BuilderError, TaxonomyBuilder};
pub use compress::FilteredTaxonomy;
pub use item::ItemId;
pub use taxonomy::Taxonomy;
