//! A line-oriented text serialization for taxonomies.
//!
//! One item per line: `name<TAB>parent-name`, with the literal `-` as the
//! parent of roots. Parents must appear before their children. Blank lines
//! and lines starting with `#` are ignored. This is the format the
//! `negrules` CLI reads and writes.
//!
//! ```text
//! # a tiny retail taxonomy
//! beverages\t-
//! bottled water\tbeverages
//! Evian\tbottled water
//! ```

use crate::{BuilderError, Taxonomy, TaxonomyBuilder};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors from parsing a taxonomy text file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line did not have exactly two tab-separated fields.
    Malformed {
        /// 1-based line number of the malformed line.
        line: usize,
    },
    /// A parent name was referenced before being defined.
    UnknownParent {
        /// 1-based line number of the reference.
        line: usize,
        /// The undefined parent name as written.
        parent: String,
    },
    /// Structural violation reported by the builder (e.g. duplicate name).
    Builder {
        /// 1-based line number of the offending entry.
        line: usize,
        /// The builder's own diagnosis.
        source: BuilderError,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line } => {
                write!(f, "line {line}: expected `name<TAB>parent`")
            }
            ParseError::UnknownParent { line, parent } => {
                write!(f, "line {line}: parent {parent:?} not defined yet")
            }
            ParseError::Builder { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Builder { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse a taxonomy from the text format.
pub fn read_taxonomy<R: BufRead>(reader: R) -> Result<Taxonomy, ParseError> {
    let mut b = TaxonomyBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.splitn(2, '\t');
        let (name, parent) = match (fields.next(), fields.next()) {
            (Some(n), Some(p)) if !n.is_empty() && !p.is_empty() => (n, p.trim()),
            _ => return Err(ParseError::Malformed { line: lineno }),
        };
        let result = if parent == "-" {
            b.try_add_root(name)
        } else {
            match b.id_of(parent) {
                Some(pid) => b.add_child(pid, name),
                None => {
                    return Err(ParseError::UnknownParent {
                        line: lineno,
                        parent: parent.to_owned(),
                    })
                }
            }
        };
        result.map_err(|source| ParseError::Builder {
            line: lineno,
            source,
        })?;
    }
    Ok(b.build())
}

/// Write a taxonomy in the text format, parents before children.
pub fn write_taxonomy<W: Write>(tax: &Taxonomy, mut writer: W) -> io::Result<()> {
    // Emit in depth-first order from each root so parents precede children
    // regardless of original insertion interleaving.
    for &root in tax.roots() {
        for id in tax.subtree(root) {
            match tax.parent(id) {
                None => writeln!(writer, "{}\t-", tax.name(id))?,
                Some(p) => writeln!(writer, "{}\t{}", tax.name(id), tax.name(p))?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    #[test]
    fn round_trip() {
        let mut b = TaxonomyBuilder::new();
        let bev = b.add_root("beverages");
        let water = b.add_child(bev, "bottled water").unwrap();
        b.add_child(water, "Evian").unwrap();
        b.add_child(water, "Perrier").unwrap();
        b.add_root("desserts");
        let t1 = b.build();

        let mut buf = Vec::new();
        write_taxonomy(&t1, &mut buf).unwrap();
        let t2 = read_taxonomy(buf.as_slice()).unwrap();

        assert_eq!(t1.len(), t2.len());
        for id in t1.items() {
            let other = t2.id_of(t1.name(id)).unwrap();
            assert_eq!(
                t1.parent(id).map(|p| t1.name(p).to_owned()),
                t2.parent(other).map(|p| t2.name(p).to_owned())
            );
        }
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nroot\t-\n  \nchild\troot\n";
        let t = read_taxonomy(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.id_of("child").is_some());
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "root\t-\nnotabshere\n";
        match read_taxonomy(text.as_bytes()) {
            Err(ParseError::Malformed { line }) => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn forward_reference_is_an_error() {
        let text = "child\tmissing\n";
        match read_taxonomy(text.as_bytes()) {
            Err(ParseError::UnknownParent { line, parent }) => {
                assert_eq!(line, 1);
                assert_eq!(parent, "missing");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_name_is_a_builder_error() {
        let text = "a\t-\na\t-\n";
        match read_taxonomy(text.as_bytes()) {
            Err(ParseError::Builder { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
