//! Taxonomy compression (paper §2.4).
//!
//! Every 1-item of a candidate negative itemset must itself have minimum
//! support, so the improved algorithm first *deletes all small 1-itemsets
//! from the taxonomy* (paper §2.2.2, optimization 1). Deleting an item
//! shrinks the effective fan-out and therefore the number of candidates
//! generated.
//!
//! Because a category's support counts every transaction containing any of
//! its descendants, `support(child) <= support(parent)`; a set of large
//! items is therefore upward-closed and removing small items removes whole
//! subtrees. [`FilteredTaxonomy`] is defensive about callers passing
//! non-upward-closed keep-sets (which can arise from estimated supports in
//! EstMerge): an item whose ancestor is absent is dropped too, and such
//! drops are reported.

use crate::fxhash::FxHashSet;
use crate::{ItemId, Taxonomy};

/// A view of a [`Taxonomy`] restricted to a set of retained items.
///
/// Item ids are unchanged, so supports and itemsets computed against the
/// full taxonomy remain valid against the filtered one.
#[derive(Clone, Debug)]
pub struct FilteredTaxonomy<'a> {
    tax: &'a Taxonomy,
    present: Vec<bool>,
    children: Vec<Vec<ItemId>>,
    roots: Vec<ItemId>,
    num_present: usize,
    /// Items the caller asked to keep but whose ancestors were absent.
    dropped_for_closure: Vec<ItemId>,
}

impl<'a> FilteredTaxonomy<'a> {
    /// Restrict `tax` to the items in `keep`.
    ///
    /// Items whose ancestor chain is not fully inside `keep` are dropped
    /// (see module docs) and reported via [`Self::dropped_for_closure`].
    pub fn new(tax: &'a Taxonomy, keep: &FxHashSet<ItemId>) -> Self {
        let mut present = vec![false; tax.len()];
        let mut dropped = Vec::new();
        // Top-down: an item is present iff kept and its parent is present.
        // `subtree` is depth-first from each root, so parents precede
        // children.
        for &root in tax.roots() {
            for id in tax.subtree(root) {
                let kept = keep.contains(&id);
                let parent_ok = match tax.parent(id) {
                    Some(p) => present[p.index()],
                    None => true,
                };
                if kept && parent_ok {
                    present[id.index()] = true;
                } else if kept {
                    dropped.push(id);
                }
            }
        }
        let mut children: Vec<Vec<ItemId>> = vec![Vec::new(); tax.len()];
        let mut num_present = 0;
        for id in tax.items() {
            if present[id.index()] {
                num_present += 1;
                children[id.index()] = tax
                    .children(id)
                    .iter()
                    .copied()
                    .filter(|c| present[c.index()])
                    .collect();
            }
        }
        let roots = tax
            .roots()
            .iter()
            .copied()
            .filter(|r| present[r.index()])
            .collect();
        Self {
            tax,
            present,
            children,
            roots,
            num_present,
            dropped_for_closure: dropped,
        }
    }

    /// A view retaining every item (useful as the "no compression" baseline
    /// in ablations).
    pub fn full(tax: &'a Taxonomy) -> Self {
        let keep: FxHashSet<ItemId> = tax.items().collect();
        Self::new(tax, &keep)
    }

    /// The underlying full taxonomy.
    #[inline]
    pub fn base(&self) -> &'a Taxonomy {
        self.tax
    }

    /// `true` when `item` survived the filter.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.present[item.index()]
    }

    /// Number of retained items.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_present
    }

    /// `true` when nothing survived the filter.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_present == 0
    }

    /// Retained roots.
    #[inline]
    pub fn roots(&self) -> &[ItemId] {
        &self.roots
    }

    /// Retained children of a retained `item`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `item` is not retained.
    #[inline]
    pub fn children(&self, item: ItemId) -> &[ItemId] {
        debug_assert!(self.contains(item), "children() of a filtered-out item");
        &self.children[item.index()]
    }

    /// Parent of a retained item. Upward closure guarantees the parent is
    /// retained as well.
    #[inline]
    pub fn parent(&self, item: ItemId) -> Option<ItemId> {
        self.tax.parent(item)
    }

    /// Retained siblings of a retained item.
    pub fn siblings(&self, item: ItemId) -> impl Iterator<Item = ItemId> + '_ {
        let kin: &[ItemId] = match self.tax.parent(item) {
            Some(p) => self.children(p),
            None => &[],
        };
        kin.iter().copied().filter(move |&s| s != item)
    }

    /// Retained items, in id order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.tax.items().filter(|&i| self.contains(i))
    }

    /// Items the caller asked to keep but that were dropped because an
    /// ancestor was absent (see module docs).
    pub fn dropped_for_closure(&self) -> &[ItemId] {
        &self.dropped_for_closure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn small_tax() -> (Taxonomy, [ItemId; 7]) {
        let mut b = TaxonomyBuilder::new();
        let a = b.add_root("A");
        let bb = b.add_child(a, "B").unwrap();
        let c = b.add_child(a, "C").unwrap();
        let d = b.add_child(c, "D").unwrap();
        let e = b.add_child(c, "E").unwrap();
        let f = b.add_root("F");
        let g = b.add_child(f, "G").unwrap();
        (b.build(), [a, bb, c, d, e, f, g])
    }

    #[test]
    fn filters_children_and_siblings() {
        let (t, [a, bb, c, d, e, f, g]) = small_tax();
        let keep: FxHashSet<ItemId> = [a, bb, c, d, f, g].into_iter().collect(); // drop E
        let v = FilteredTaxonomy::new(&t, &keep);

        assert_eq!(v.len(), 6);
        assert!(v.contains(d));
        assert!(!v.contains(e));
        assert_eq!(v.children(c), &[d]);
        assert_eq!(v.children(a), &[bb, c]);
        assert_eq!(v.siblings(d).count(), 0); // E is gone
        assert_eq!(v.siblings(bb).collect::<Vec<_>>(), vec![c]);
        assert_eq!(v.roots(), &[a, f]);
        assert!(v.dropped_for_closure().is_empty());
        assert_eq!(v.items().count(), 6);
    }

    #[test]
    fn dropping_a_category_drops_its_subtree() {
        let (t, [a, bb, c, d, e, f, g]) = small_tax();
        // Keep-set that (incorrectly) keeps D and E but not their parent C.
        let keep: FxHashSet<ItemId> = [a, bb, d, e, f, g].into_iter().collect();
        let v = FilteredTaxonomy::new(&t, &keep);

        assert!(!v.contains(c));
        assert!(!v.contains(d));
        assert!(!v.contains(e));
        let mut dropped = v.dropped_for_closure().to_vec();
        dropped.sort();
        assert_eq!(dropped, vec![d, e]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn full_view_keeps_everything() {
        let (t, ids) = small_tax();
        let v = FilteredTaxonomy::full(&t);
        assert_eq!(v.len(), t.len());
        for id in ids {
            assert!(v.contains(id));
        }
        assert_eq!(v.base().len(), t.len());
        assert!(!v.is_empty());
    }

    #[test]
    fn dropping_a_root_empties_its_tree() {
        let (t, [a, ..]) = small_tax();
        let keep: FxHashSet<ItemId> = [a].into_iter().collect();
        let v = FilteredTaxonomy::new(&t, &keep);
        assert_eq!(v.roots(), &[a]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.children(a), &[] as &[ItemId]);
    }
}
