//! Human-readable renderings of a taxonomy: Graphviz DOT and an ASCII tree.

use crate::{ItemId, Taxonomy};
use std::fmt::Write as _;

/// Render the taxonomy as a Graphviz DOT digraph (edges point from parent to
/// child).
pub fn to_dot(tax: &Taxonomy) -> String {
    let mut out = String::new();
    out.push_str("digraph taxonomy {\n  rankdir=TB;\n  node [shape=box];\n");
    for id in tax.items() {
        let shape = if tax.is_leaf(id) { "ellipse" } else { "box" };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={}];",
            id.0,
            escape(tax.name(id)),
            shape
        );
    }
    for id in tax.items() {
        if let Some(p) = tax.parent(id) {
            let _ = writeln!(out, "  n{} -> n{};", p.0, id.0);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the taxonomy as an indented ASCII tree, one item per line.
pub fn to_ascii(tax: &Taxonomy) -> String {
    let mut out = String::new();
    for &root in tax.roots() {
        ascii_rec(tax, root, 0, &mut out);
    }
    out
}

fn ascii_rec(tax: &Taxonomy, id: ItemId, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    let _ = writeln!(out, "{} ({})", tax.name(id), id.0);
    for &c in tax.children(id) {
        ascii_rec(tax, c, indent + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn tiny() -> Taxonomy {
        let mut b = TaxonomyBuilder::new();
        let r = b.add_root("root \"dept\"");
        b.add_child(r, "leaf").unwrap();
        b.build()
    }

    #[test]
    fn dot_contains_nodes_edges_and_escapes_quotes() {
        let dot = to_dot(&tiny());
        assert!(dot.contains("digraph taxonomy"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("root \\\"dept\\\""));
        assert!(dot.contains("shape=ellipse")); // the leaf
        assert!(dot.contains("shape=box")); // the category
    }

    #[test]
    fn ascii_indents_children() {
        let a = to_ascii(&tiny());
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  leaf"));
    }
}
