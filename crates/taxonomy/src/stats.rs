//! Structural statistics of a taxonomy — the quantities §2.1.4 of the
//! paper argues about (fan-out and granularity drive both rule quality and
//! candidate counts).

use crate::{ItemId, Taxonomy};

/// Summary statistics of a taxonomy's shape.
#[derive(Clone, Debug, PartialEq)]
pub struct TaxonomyStats {
    /// Total items.
    pub items: usize,
    /// Leaf items.
    pub leaves: usize,
    /// Internal (category) items.
    pub categories: usize,
    /// Number of roots.
    pub roots: usize,
    /// Maximum depth (roots at 0).
    pub max_depth: u32,
    /// Mean number of children over internal nodes.
    pub avg_fanout: f64,
    /// Largest number of children of any node.
    pub max_fanout: usize,
    /// Items per depth level (index = depth).
    pub level_sizes: Vec<usize>,
}

/// Compute [`TaxonomyStats`] in one traversal.
pub fn stats(tax: &Taxonomy) -> TaxonomyStats {
    let mut level_sizes: Vec<usize> = Vec::new();
    let mut fanout_sum = 0usize;
    let mut max_fanout = 0usize;
    let mut internal = 0usize;
    for id in tax.items() {
        let depth = tax.depth(id) as usize;
        if level_sizes.len() <= depth {
            level_sizes.resize(depth + 1, 0);
        }
        level_sizes[depth] += 1;
        let f = tax.children(id).len();
        if f > 0 {
            internal += 1;
            fanout_sum += f;
            max_fanout = max_fanout.max(f);
        }
    }
    TaxonomyStats {
        items: tax.len(),
        leaves: tax.num_leaves(),
        categories: tax.num_categories(),
        roots: tax.roots().len(),
        max_depth: tax.max_depth(),
        avg_fanout: if internal == 0 {
            0.0
        } else {
            fanout_sum as f64 / internal as f64
        },
        max_fanout,
        level_sizes,
    }
}

/// The deepest leaf of the taxonomy (useful for sanity checks of generated
/// taxonomies); `None` when empty.
pub fn deepest_leaf(tax: &Taxonomy) -> Option<ItemId> {
    tax.leaves().max_by_key(|&l| tax.depth(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    #[test]
    fn computes_shape() {
        let mut b = TaxonomyBuilder::new();
        let r = b.add_root("r");
        let a = b.add_child(r, "a").unwrap();
        b.add_child(r, "b").unwrap();
        b.add_child(r, "c").unwrap();
        let d = b.add_child(a, "d").unwrap();
        let t = b.build();

        let s = stats(&t);
        assert_eq!(s.items, 5);
        assert_eq!(s.leaves, 3);
        assert_eq!(s.categories, 2);
        assert_eq!(s.roots, 1);
        assert_eq!(s.max_depth, 2);
        // r has 3 children, a has 1: avg (3+1)/2 = 2.
        assert!((s.avg_fanout - 2.0).abs() < 1e-12);
        assert_eq!(s.max_fanout, 3);
        assert_eq!(s.level_sizes, vec![1, 3, 1]);
        assert_eq!(deepest_leaf(&t), Some(d));
    }

    #[test]
    fn empty_and_flat() {
        let t = TaxonomyBuilder::new().build();
        let s = stats(&t);
        assert_eq!(s.items, 0);
        assert_eq!(s.avg_fanout, 0.0);
        assert!(s.level_sizes.is_empty());
        assert_eq!(deepest_leaf(&t), None);

        let mut b = TaxonomyBuilder::new();
        b.add_root("x");
        b.add_root("y");
        let flat = b.build();
        let s = stats(&flat);
        assert_eq!(s.leaves, 2);
        assert_eq!(s.categories, 0);
        assert_eq!(s.avg_fanout, 0.0);
        assert_eq!(s.level_sizes, vec![2]);
    }
}
