use crate::fxhash::FxHashMap;
use crate::ItemId;

/// An immutable is-a taxonomy over items: a forest in which leaves are
/// concrete items appearing in transactions and internal nodes are
/// categories.
///
/// Construct one with [`crate::TaxonomyBuilder`]. Ids are dense (`0..len`),
/// so every per-item attribute is stored in a plain vector.
#[derive(Clone, Debug)]
pub struct Taxonomy {
    pub(crate) names: Vec<Box<str>>,
    pub(crate) parent: Vec<Option<ItemId>>,
    pub(crate) children: Vec<Vec<ItemId>>,
    pub(crate) roots: Vec<ItemId>,
    pub(crate) depth: Vec<u32>,
    pub(crate) by_name: FxHashMap<Box<str>, ItemId>,
    pub(crate) num_leaves: usize,
}

impl Taxonomy {
    /// Total number of items (leaves and categories).
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the taxonomy has no items at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of leaf items (items with no children).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Number of internal (category) items.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.len() - self.num_leaves
    }

    /// All item ids, in id order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.names.len() as u32).map(ItemId)
    }

    /// Ids of all leaf items.
    pub fn leaves(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items().filter(|&i| self.is_leaf(i))
    }

    /// Ids of all category (internal) items.
    pub fn categories(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items().filter(|&i| !self.is_leaf(i))
    }

    /// The forest roots, in insertion order.
    #[inline]
    pub fn roots(&self) -> &[ItemId] {
        &self.roots
    }

    /// Human-readable name of `item`.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    #[inline]
    pub fn name(&self, item: ItemId) -> &str {
        &self.names[item.index()]
    }

    /// Look an item up by its (unique) name.
    pub fn id_of(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// The parent category of `item`, or `None` for roots.
    #[inline]
    pub fn parent(&self, item: ItemId) -> Option<ItemId> {
        self.parent[item.index()]
    }

    /// The immediate children of `item` (empty for leaves).
    #[inline]
    pub fn children(&self, item: ItemId) -> &[ItemId] {
        &self.children[item.index()]
    }

    /// `true` when `item` has no children.
    #[inline]
    pub fn is_leaf(&self, item: ItemId) -> bool {
        self.children[item.index()].is_empty()
    }

    /// Depth of `item` in its tree (roots are at depth 0).
    #[inline]
    pub fn depth(&self, item: ItemId) -> u32 {
        self.depth[item.index()]
    }

    /// Maximum depth over all items; 0 for a flat taxonomy.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The siblings of `item`: the *other* children of its parent, in the
    /// parent's child order. Roots have no siblings (the paper's uniformity
    /// assumption only justifies comparing items grouped under a shared
    /// category, so top-level departments are not treated as substitutes).
    pub fn siblings(&self, item: ItemId) -> impl Iterator<Item = ItemId> + '_ {
        let kin: &[ItemId] = match self.parent(item) {
            Some(p) => self.children(p),
            None => &[],
        };
        kin.iter().copied().filter(move |&s| s != item)
    }

    /// Proper ancestors of `item`, nearest first.
    pub fn ancestors(&self, item: ItemId) -> Ancestors<'_> {
        Ancestors {
            tax: self,
            cur: self.parent(item),
        }
    }

    /// `true` when `anc` is a *proper* ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ItemId, desc: ItemId) -> bool {
        // Walk up from the deeper node; depth makes this O(depth difference).
        if self.depth(anc) >= self.depth(desc) {
            return false;
        }
        self.ancestors(desc).any(|a| a == anc)
    }

    /// `true` when one of `a`, `b` is a proper ancestor of the other.
    pub fn related(&self, a: ItemId, b: ItemId) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// All leaf items in the subtree rooted at `item` (just `item` itself
    /// when it is a leaf), in depth-first order.
    pub fn leaves_under(&self, item: ItemId) -> LeavesUnder<'_> {
        LeavesUnder {
            tax: self,
            stack: vec![item],
        }
    }

    /// All items in the subtree rooted at `item`, including `item`,
    /// depth-first.
    pub fn subtree(&self, item: ItemId) -> Subtree<'_> {
        Subtree {
            tax: self,
            stack: vec![item],
        }
    }

    /// `items` closed under ancestry: every input id plus all its proper
    /// ancestors, sorted and deduplicated. This is the query-time
    /// expansion of a basket — a basket containing an item matches rules
    /// written over any of the item's ancestor categories, the same
    /// closure the paper's extended-transaction counting uses at mine
    /// time.
    ///
    /// Out-of-range ids are passed through unexpanded (no ancestors are
    /// known for them); callers that need strict validation check ids
    /// against [`Taxonomy::len`] first.
    pub fn expand_with_ancestors<I: IntoIterator<Item = ItemId>>(&self, items: I) -> Vec<ItemId> {
        let mut out: Vec<ItemId> = Vec::new();
        for item in items {
            out.push(item);
            if item.index() < self.len() {
                out.extend(self.ancestors(item));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A stable 64-bit digest of the taxonomy's structure: every name and
    /// parent edge, in id order (FNV-1a). Two taxonomies share a digest
    /// exactly when they assign the same names the same ids under the
    /// same hierarchy, so artifacts that bake in item ids (rule-set
    /// snapshots, checkpoints) can detect being replayed against a
    /// different hierarchy.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.len() as u64).to_le_bytes());
        for item in self.items() {
            eat(self.name(item).as_bytes());
            // 0xFF cannot appear in UTF-8, so it unambiguously ends the
            // name before the fixed-width parent id.
            eat(&[0xFF]);
            let parent = self.parent(item).map_or(u32::MAX, |p| p.0);
            eat(&parent.to_le_bytes());
        }
        h
    }
}

/// Iterator over proper ancestors, nearest first. See [`Taxonomy::ancestors`].
pub struct Ancestors<'a> {
    tax: &'a Taxonomy,
    cur: Option<ItemId>,
}

impl Iterator for Ancestors<'_> {
    type Item = ItemId;

    fn next(&mut self) -> Option<ItemId> {
        let cur = self.cur?;
        self.cur = self.tax.parent(cur);
        Some(cur)
    }
}

/// Iterator over the leaves of a subtree. See [`Taxonomy::leaves_under`].
pub struct LeavesUnder<'a> {
    tax: &'a Taxonomy,
    stack: Vec<ItemId>,
}

impl Iterator for LeavesUnder<'_> {
    type Item = ItemId;

    fn next(&mut self) -> Option<ItemId> {
        while let Some(id) = self.stack.pop() {
            let kids = self.tax.children(id);
            if kids.is_empty() {
                return Some(id);
            }
            self.stack.extend(kids.iter().rev());
        }
        None
    }
}

/// Iterator over a whole subtree, depth-first. See [`Taxonomy::subtree`].
pub struct Subtree<'a> {
    tax: &'a Taxonomy,
    stack: Vec<ItemId>,
}

impl Iterator for Subtree<'_> {
    type Item = ItemId;

    fn next(&mut self) -> Option<ItemId> {
        let id = self.stack.pop()?;
        self.stack.extend(self.tax.children(id).iter().rev());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use crate::TaxonomyBuilder;

    /// The taxonomy of the paper's Figure 2:
    ///
    /// beverages -> { bottled water -> {Evian, Perrier}, bottled juices }
    /// desserts  -> { frozen yogurt -> {Bryers, Healthy Choice}, ice creams }
    fn paper_fig2() -> (crate::Taxonomy, Vec<crate::ItemId>) {
        let mut b = TaxonomyBuilder::new();
        let bev = b.add_root("beverages");
        let water = b.add_child(bev, "bottled water").unwrap();
        let evian = b.add_child(water, "Evian").unwrap();
        let perrier = b.add_child(water, "Perrier").unwrap();
        let juice = b.add_child(bev, "bottled juices").unwrap();
        let des = b.add_root("desserts");
        let yog = b.add_child(des, "frozen yogurt").unwrap();
        let bryers = b.add_child(yog, "Bryers").unwrap();
        let hc = b.add_child(yog, "Healthy Choice").unwrap();
        let ice = b.add_child(des, "ice creams").unwrap();
        (
            b.build(),
            vec![bev, water, evian, perrier, juice, des, yog, bryers, hc, ice],
        )
    }

    #[test]
    fn structure_queries() {
        let (t, ids) = paper_fig2();
        let [bev, water, evian, perrier, juice, des, yog, bryers, hc, ice]: [_; 10] =
            ids.try_into().unwrap();

        assert_eq!(t.len(), 10);
        assert_eq!(t.roots(), &[bev, des]);
        assert_eq!(t.num_leaves(), 6);
        assert_eq!(t.num_categories(), 4);
        assert_eq!(t.parent(evian), Some(water));
        assert_eq!(t.parent(bev), None);
        assert_eq!(t.children(water), &[evian, perrier]);
        assert!(t.is_leaf(juice));
        assert!(!t.is_leaf(yog));
        assert_eq!(t.depth(bev), 0);
        assert_eq!(t.depth(water), 1);
        assert_eq!(t.depth(perrier), 2);
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.name(hc), "Healthy Choice");
        assert_eq!(t.id_of("ice creams"), Some(ice));
        assert_eq!(t.id_of("nonexistent"), None);
        assert_eq!(t.leaves().count(), 6);
        assert_eq!(t.categories().count(), 4);
        let _ = bryers;
    }

    #[test]
    fn expand_with_ancestors_closes_sorts_and_dedups() {
        let (t, ids) = paper_fig2();
        let [bev, water, evian, perrier, _juice, _des, yog, bryers, _hc, _ice]: [_; 10] =
            ids.clone().try_into().unwrap();
        // Two leaves under different roots, given out of order, with a
        // duplicate: expansion is the sorted union of each ancestor chain.
        let got = t.expand_with_ancestors([bryers, evian, evian]);
        let mut want = vec![bryers, evian, water, bev, yog, ids[5]];
        want.sort_unstable();
        assert_eq!(got, want);
        // A category expands to itself plus its own ancestors only.
        assert_eq!(t.expand_with_ancestors([water]), vec![bev, water]);
        // Empty in, empty out; out-of-range ids pass through unexpanded.
        assert_eq!(t.expand_with_ancestors([]), Vec::<crate::ItemId>::new());
        let stray = crate::ItemId(999);
        assert_eq!(t.expand_with_ancestors([stray]), vec![stray]);
        let _ = perrier;
    }

    #[test]
    fn digest_is_stable_and_structure_sensitive() {
        let (a, _) = paper_fig2();
        let (b, _) = paper_fig2();
        // Same structure, same digest — across independent builds.
        assert_eq!(a.digest(), b.digest());
        // Renaming one item moves the digest.
        let mut renamed = TaxonomyBuilder::new();
        let bev = renamed.add_root("beverages");
        renamed.add_child(bev, "bottled WATER").unwrap();
        let mut same_names = TaxonomyBuilder::new();
        let bev2 = same_names.add_root("beverages");
        same_names.add_child(bev2, "bottled water").unwrap();
        let same_names = same_names.build();
        assert_ne!(renamed.build().digest(), same_names.digest());
        // Same names under a different hierarchy also move the digest.
        let mut flat = TaxonomyBuilder::new();
        flat.add_root("beverages");
        flat.add_root("bottled water");
        assert_ne!(flat.build().digest(), same_names.digest());
    }

    #[test]
    fn sibling_queries() {
        let (t, ids) = paper_fig2();
        let (water, evian, perrier, juice) = (ids[1], ids[2], ids[3], ids[4]);
        assert_eq!(t.siblings(evian).collect::<Vec<_>>(), vec![perrier]);
        assert_eq!(t.siblings(water).collect::<Vec<_>>(), vec![juice]);
        // Roots have no siblings by design.
        assert_eq!(t.siblings(ids[0]).count(), 0);
    }

    #[test]
    fn ancestor_queries() {
        let (t, ids) = paper_fig2();
        let (bev, water, evian) = (ids[0], ids[1], ids[2]);
        let (des, bryers) = (ids[5], ids[7]);

        assert_eq!(t.ancestors(evian).collect::<Vec<_>>(), vec![water, bev]);
        assert_eq!(t.ancestors(bev).count(), 0);
        assert!(t.is_ancestor(bev, evian));
        assert!(t.is_ancestor(water, evian));
        assert!(!t.is_ancestor(evian, water));
        assert!(!t.is_ancestor(des, evian));
        assert!(!t.is_ancestor(evian, evian));
        assert!(t.related(bev, evian));
        assert!(t.related(evian, bev));
        assert!(!t.related(evian, bryers));
    }

    #[test]
    fn subtree_and_leaves_under() {
        let (t, ids) = paper_fig2();
        let (bev, water, evian, perrier, juice) = (ids[0], ids[1], ids[2], ids[3], ids[4]);

        assert_eq!(
            t.leaves_under(bev).collect::<Vec<_>>(),
            vec![evian, perrier, juice]
        );
        assert_eq!(t.leaves_under(evian).collect::<Vec<_>>(), vec![evian]);
        assert_eq!(
            t.subtree(water).collect::<Vec<_>>(),
            vec![water, evian, perrier]
        );
    }

    #[test]
    fn empty_taxonomy() {
        let t = TaxonomyBuilder::new().build();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.max_depth(), 0);
        assert_eq!(t.roots().len(), 0);
    }
}
