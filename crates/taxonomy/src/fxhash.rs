//! A fast, non-cryptographic hasher for small keys (item ids, itemsets).
//!
//! The standard library's SipHash is DoS-resistant but slow for the short
//! integer keys that dominate itemset mining. This is the well-known "Fx"
//! multiply-rotate hash used by rustc, reimplemented here so the workspace
//! needs no extra dependency. Use it only for in-process tables over trusted
//! data (which is all this workspace does).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio mix, as in rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // negassoc-lint: allow(L001) -- chunks_exact(8) guarantees the [u8; 8] conversion succeeds
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with Fx hashing.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one([1u32, 2, 3]), hash_one([1u32, 2, 3]));
    }

    #[test]
    fn nearby_integers_hash_differently() {
        // Not a cryptographic guarantee, but the mix must spread consecutive
        // keys: the support tables are keyed by dense item ids.
        let hashes: Vec<u64> = (0u32..64).map(hash_one).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn byte_stream_hashing_covers_remainder_path() {
        // 9 bytes exercises both the 8-byte chunk and the tail.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
