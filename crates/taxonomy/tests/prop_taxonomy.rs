//! Property-based tests for taxonomy invariants.

use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::{FilteredTaxonomy, ItemId, Taxonomy, TaxonomyBuilder};
use proptest::prelude::*;

/// Build a random forest: item `i`'s parent is drawn from items `0..i`
/// (or none), which guarantees a valid forest.
fn arb_taxonomy() -> impl Strategy<Value = Taxonomy> {
    prop::collection::vec(prop::option::weighted(0.8, 0u32..1000), 1..60).prop_map(|parents| {
        let mut b = TaxonomyBuilder::new();
        for (i, p) in parents.iter().enumerate() {
            let name = format!("item{i}");
            match p {
                Some(raw) if i > 0 => {
                    let parent = ItemId(raw % i as u32);
                    b.add_child(parent, &name).unwrap();
                }
                _ => {
                    b.add_root(&name);
                }
            }
        }
        b.build()
    })
}

proptest! {
    #[test]
    fn depth_is_parent_depth_plus_one(tax in arb_taxonomy()) {
        for id in tax.items() {
            match tax.parent(id) {
                Some(p) => prop_assert_eq!(tax.depth(id), tax.depth(p) + 1),
                None => prop_assert_eq!(tax.depth(id), 0),
            }
        }
    }

    #[test]
    fn children_and_parent_are_inverse(tax in arb_taxonomy()) {
        for id in tax.items() {
            for &c in tax.children(id) {
                prop_assert_eq!(tax.parent(c), Some(id));
            }
            if let Some(p) = tax.parent(id) {
                prop_assert!(tax.children(p).contains(&id));
            } else {
                prop_assert!(tax.roots().contains(&id));
            }
        }
    }

    #[test]
    fn ancestors_are_strictly_shallower(tax in arb_taxonomy()) {
        for id in tax.items() {
            let mut last_depth = tax.depth(id);
            for anc in tax.ancestors(id) {
                prop_assert!(tax.depth(anc) < last_depth);
                last_depth = tax.depth(anc);
                prop_assert!(tax.is_ancestor(anc, id));
                prop_assert!(!tax.is_ancestor(id, anc));
            }
        }
    }

    #[test]
    fn leaves_partition_by_root(tax in arb_taxonomy()) {
        // Every leaf is reachable from exactly one root.
        let mut seen: Vec<ItemId> = Vec::new();
        for &r in tax.roots() {
            seen.extend(tax.leaves_under(r));
        }
        seen.sort();
        let total = tax.leaves().count();
        prop_assert_eq!(seen.len(), total);
        seen.dedup();
        prop_assert_eq!(seen.len(), total);
    }

    #[test]
    fn subtree_contains_exactly_descendants(tax in arb_taxonomy()) {
        for &r in tax.roots() {
            let sub: FxHashSet<ItemId> = tax.subtree(r).collect();
            for id in tax.items() {
                let is_desc = id == r || tax.is_ancestor(r, id);
                prop_assert_eq!(sub.contains(&id), is_desc);
            }
        }
    }

    #[test]
    fn siblings_share_parent_and_exclude_self(tax in arb_taxonomy()) {
        for id in tax.items() {
            for s in tax.siblings(id) {
                prop_assert_ne!(s, id);
                prop_assert_eq!(tax.parent(s), tax.parent(id));
                prop_assert!(tax.parent(id).is_some());
            }
        }
    }

    /// Filtering with an upward-closed keep-set drops nothing extra, and the
    /// filtered structure agrees with the base taxonomy on retained items.
    #[test]
    fn filtered_view_respects_upward_closure(
        tax in arb_taxonomy(),
        seed in prop::collection::vec(any::<bool>(), 60),
    ) {
        // Make the keep-set upward closed: keep item iff flagged and all
        // ancestors flagged.
        let mut keep: FxHashSet<ItemId> = FxHashSet::default();
        for id in tax.items() {
            let flagged = |i: ItemId| seed.get(i.index()).copied().unwrap_or(false);
            if flagged(id) && tax.ancestors(id).all(flagged) {
                keep.insert(id);
            }
        }
        let v = FilteredTaxonomy::new(&tax, &keep);
        prop_assert!(v.dropped_for_closure().is_empty());
        prop_assert_eq!(v.len(), keep.len());
        for &id in &keep {
            prop_assert!(v.contains(id));
            for &c in v.children(id) {
                prop_assert!(keep.contains(&c));
                prop_assert_eq!(tax.parent(c), Some(id));
            }
            for s in v.siblings(id) {
                prop_assert!(keep.contains(&s));
            }
        }
    }

    /// Text round-trip preserves names and parent relationships.
    #[test]
    fn text_format_round_trips(tax in arb_taxonomy()) {
        let mut buf = Vec::new();
        negassoc_taxonomy::textfmt::write_taxonomy(&tax, &mut buf).unwrap();
        let back = negassoc_taxonomy::textfmt::read_taxonomy(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), tax.len());
        for id in tax.items() {
            let other = back.id_of(tax.name(id)).unwrap();
            let p1 = tax.parent(id).map(|p| tax.name(p).to_owned());
            let p2 = back.parent(other).map(|p| back.name(p).to_owned());
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(tax.depth(id), back.depth(other));
        }
    }
}
