//! Expected supports of candidate negative itemsets (paper §2.1.1).
//!
//! All three generation cases share one shape: the candidate is a large
//! itemset `l` with some members replaced, and
//!
//! ```text
//! E[sup(candidate)] = sup(l) · Π over replaced positions  sup(new) / sup(old)
//! ```
//!
//! * **Case 1** — every member replaced by one of its children; `old` is
//!   the replaced member itself (the parent of `new`):
//!   `E[sup(D,J)] = sup(C,G) · sup(D)/sup(C) · sup(J)/sup(G)`.
//! * **Case 2** — a proper nonempty subset of members replaced by children;
//!   same per-position factor.
//! * **Case 3** — a proper nonempty subset replaced by *siblings*; the
//!   factor is `sup(sibling)/sup(replaced member)`:
//!   `E[sup(C,H)] = sup(C,G) · sup(H)/sup(G)`.
//!
//! The uniformity assumption justifying all three: items under the same
//! parent are expected to associate with other items the way their parent
//! (or sibling) does, scaled by their relative support.
//!
//! # Float-comparison contract
//!
//! Expected supports, deviations and rule-interest values are `f64`
//! products/quotients of `u64` counts. Two mathematically equal quantities
//! can differ in the last bits depending on evaluation order (e.g. the
//! naive and improved drivers multiply ratios in different groupings), so
//! **raw `==`/`!=`/`>=` on these values is a bug** — it makes
//! rule emission depend on the driver. All threshold decisions go through
//! [`approx_eq`]/[`approx_ge`], which treat values within
//! [`SUPPORT_EPSILON`] (scaled by magnitude) as equal. The workspace
//! analyzer enforces this: lint L002 flags raw float comparisons on
//! support expressions (`cargo run -p xtask -- analyze`).

use crate::error::NegAssocError;

/// Relative tolerance for support/RI comparisons.
///
/// Supports are ≤ 2^53 (exact in `f64`), and expectation chains multiply a
/// handful of ratios, so accumulated relative error is well under 1e-12;
/// 1e-9 gives three orders of margin while staying far below any
/// paper-meaningful support difference.
pub const SUPPORT_EPSILON: f64 = 1e-9;

/// The comparison scale for `a` vs `b`: max(1, |a|, |b|).
///
/// Keeps the tolerance relative for large supports (millions of
/// transactions) without collapsing to zero for sub-1 values such as
/// rule-interest thresholds.
fn comparison_scale(a: f64, b: f64) -> f64 {
    a.abs().max(b.abs()).max(1.0)
}

/// `true` when `a` and `b` are equal up to [`SUPPORT_EPSILON`], scaled by
/// magnitude. This is the only sanctioned equality on support/RI values.
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= SUPPORT_EPSILON * comparison_scale(a, b)
}

/// `true` when `a >= b` up to [`SUPPORT_EPSILON`] slack: values within the
/// tolerance band count as "reaching" the threshold. This is the sanctioned
/// form of every `deviation >= threshold` / `ri >= min_ri` test.
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - SUPPORT_EPSILON * comparison_scale(a, b)
}

/// One replacement's contribution: the new item's support over the support
/// of whatever it was derived from (its parent for child-replacements, the
/// replaced member for sibling-replacements).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ratio {
    /// Support of the item placed into the candidate.
    pub new_support: u64,
    /// Support of the item it scales against (> 0 for any large item).
    pub base_support: u64,
}

/// Expected support of a candidate derived from a large itemset with
/// support `large_support` by applying `replacements`.
///
/// Every `base_support` should be the support of a large item and hence
/// positive; a zero base is a caller bug and yields
/// [`NegAssocError::Numeric`] instead of silently poisoning downstream
/// pruning with `NaN`/`inf`.
///
/// ```
/// use negassoc::expected::{expected_support, Ratio};
/// // E[sup(D,J)] = sup(C,G) * sup(D)/sup(C) * sup(J)/sup(G)
/// let e = expected_support(800, &[
///     Ratio { new_support: 1200, base_support: 2500 },
///     Ratio { new_support: 900, base_support: 2000 },
/// ]).unwrap();
/// assert!((e - 172.8).abs() < 1e-9);
/// ```
pub fn expected_support(large_support: u64, replacements: &[Ratio]) -> Result<f64, NegAssocError> {
    let mut e = large_support as f64;
    for r in replacements {
        if r.base_support == 0 {
            return Err(NegAssocError::Numeric(format!(
                "expected_support: zero base support scaling new support {} \
                 (bases must be supports of large items)",
                r.new_support
            )));
        }
        e *= r.new_support as f64 / r.base_support as f64;
    }
    if !e.is_finite() {
        return Err(NegAssocError::Numeric(format!(
            "expected_support: non-finite expectation from large support \
             {large_support} over {} replacements",
            replacements.len()
        )));
    }
    Ok(e)
}

/// The sanctioned support-count → `f64` conversion. Transaction counts are
/// far below 2^53, so the conversion is exact; funnelling every widening
/// through here keeps the L005 lint surface to this one module.
pub fn support_to_f64(support: u64) -> f64 {
    support as f64
}

/// The candidate-admission threshold of §2: a candidate is worth counting
/// only when its expected support is at least `MinSup · MinRI` — otherwise
/// even an actual support of zero cannot produce a rule with interest
/// `MinRI` (the RI numerator is capped by `E` and every antecedent has
/// support ≥ `MinSup`).
pub fn candidate_threshold(min_support_count: u64, min_ri: f64) -> f64 {
    min_support_count as f64 * min_ri
}

/// The negativity test of §2: a counted candidate is a *negative itemset*
/// when its actual support deviates from the expectation by at least
/// `MinSup · MinRI` (compared through [`approx_ge`]; see the module-level
/// float-comparison contract).
///
/// (Figure 3 of the paper prints the condition as `count < MinSup · MinRI`,
/// which contradicts the problem statement and the worked example; see
/// DESIGN.md "Paper ambiguities".)
pub fn is_negative(expected: f64, actual: u64, min_support_count: u64, min_ri: f64) -> bool {
    approx_ge(
        expected - actual as f64,
        candidate_threshold(min_support_count, min_ri),
    )
}

/// Rule interest of `X ≠> Y` for a negative itemset with the given expected
/// and actual supports and antecedent support `sup(X)`.
///
/// A zero antecedent support is a caller bug (antecedents are large);
/// yields [`NegAssocError::Numeric`] rather than `NaN`/`inf`. Compare the
/// returned interest against thresholds with [`approx_ge`], never raw
/// `>=` (module-level contract).
pub fn rule_interest(
    expected: f64,
    actual: u64,
    antecedent_support: u64,
) -> Result<f64, NegAssocError> {
    if antecedent_support == 0 {
        return Err(NegAssocError::Numeric(
            "rule_interest: zero antecedent support (antecedents must be large)".into(),
        ));
    }
    Ok((expected - actual as f64) / antecedent_support as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_formula_case1() {
        // E[sup(D,J)] = sup(CG)·sup(D)/sup(C)·sup(J)/sup(G)
        // with sup(CG)=100, D/C = 40/80, J/G = 30/60 -> 100·0.5·0.5 = 25.
        let e = expected_support(
            100,
            &[
                Ratio {
                    new_support: 40,
                    base_support: 80,
                },
                Ratio {
                    new_support: 30,
                    base_support: 60,
                },
            ],
        )
        .unwrap();
        assert!((e - 25.0).abs() < 1e-12);
    }

    #[test]
    fn unified_formula_case2_and_3_single_replacement() {
        // Case 2: E[sup(C,J)] = sup(CG)·sup(J)/sup(G).
        let e = expected_support(
            100,
            &[Ratio {
                new_support: 30,
                base_support: 60,
            }],
        )
        .unwrap();
        assert!((e - 50.0).abs() < 1e-12);
        // Case 3 has the same arithmetic with sibling/original supports.
        let e3 = expected_support(
            100,
            &[Ratio {
                new_support: 90,
                base_support: 60,
            }],
        )
        .unwrap();
        assert!((e3 - 150.0).abs() < 1e-12);
    }

    #[test]
    fn no_replacements_is_identity() {
        assert_eq!(expected_support(42, &[]).unwrap(), 42.0);
    }

    #[test]
    fn zero_base_support_is_an_explicit_error() {
        let err = expected_support(
            100,
            &[Ratio {
                new_support: 30,
                base_support: 0,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, NegAssocError::Numeric(_)));
        assert!(err.to_string().contains("zero base support"));
    }

    #[test]
    fn zero_antecedent_support_is_an_explicit_error() {
        let err = rule_interest(100.0, 10, 0).unwrap_err();
        assert!(matches!(err, NegAssocError::Numeric(_)));
    }

    #[test]
    fn approx_helpers_honor_the_contract() {
        // Exact equality and tiny perturbations both count as equal.
        assert!(approx_eq(2000.0, 2000.0));
        assert!(approx_eq(2000.0, 2000.0 + 1e-7));
        assert!(!approx_eq(2000.0, 2000.1));
        // Scale-relative: large supports tolerate proportionally more.
        assert!(approx_eq(4.0e12, 4.0e12 + 1.0));
        // approx_ge admits values a hair under the threshold...
        assert!(approx_ge(2000.0 - 1e-7, 2000.0));
        assert!(approx_ge(2500.0, 2000.0));
        // ...but not genuinely smaller ones.
        assert!(!approx_ge(1999.0, 2000.0));
        // Sub-1 thresholds (RI comparisons) still behave.
        assert!(approx_ge(0.5, 0.5));
        assert!(!approx_ge(0.4999, 0.5));
    }

    #[test]
    fn paper_table2_with_corrected_water_supports() {
        // Worked example of §2.1.3 (Evian/Perrier supports 12000/8000 per
        // the reconstruction in DESIGN.md): expected supports 6000, 4000,
        // 3000, 2000.
        let fy_bw = 15_000;
        let (b, hc, fy) = (20_000u64, 10_000u64, 30_000u64);
        let (e, p, bw) = (12_000u64, 8_000u64, 20_000u64);
        let cases = [
            (b, e, 6_000.0),
            (b, p, 4_000.0),
            (hc, e, 3_000.0),
            (hc, p, 2_000.0),
        ];
        for (brand, water, want) in cases {
            let got = expected_support(
                fy_bw,
                &[
                    Ratio {
                        new_support: brand,
                        base_support: fy,
                    },
                    Ratio {
                        new_support: water,
                        base_support: bw,
                    },
                ],
            )
            .unwrap();
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn negativity_threshold() {
        // minsup 4000, minRI 0.5 -> threshold 2000.
        assert_eq!(candidate_threshold(4000, 0.5), 2000.0);
        // Bryers & Perrier: E 4000, actual 500 -> deviation 3500, negative.
        assert!(is_negative(4000.0, 500, 4000, 0.5));
        // Healthy Choice & Perrier: E 2000, actual 2500 -> not negative.
        assert!(!is_negative(2000.0, 2500, 4000, 0.5));
        // Deviation exactly at threshold counts.
        assert!(is_negative(2500.0, 500, 4000, 0.5));
        // Just below does not.
        assert!(!is_negative(2499.0, 500, 4000, 0.5));
    }

    #[test]
    fn rule_interest_is_deviation_over_antecedent() {
        let ri = rule_interest(4000.0, 500, 8000).unwrap();
        assert!((ri - 0.4375).abs() < 1e-12);
        let ri2 = rule_interest(4000.0, 500, 20000).unwrap();
        assert!((ri2 - 0.175).abs() < 1e-12);
        // Zero actual support maximizes RI.
        assert!(rule_interest(4000.0, 0, 8000).unwrap() > ri);
    }
}
