//! The run control plane: cancellation, deadlines, stall detection.
//!
//! The primitives — [`CancelToken`], [`CancelReason`], [`Deadline`],
//! [`Watchdog`] — live in [`negassoc_txdb::ctrl`] (the worker pool at the
//! bottom of the stack needs them) and are re-exported here; this module
//! adds the driver-level glue:
//!
//! * [`RunControl`] — one bundle of token + deadline + stall window +
//!   interrupt flag, with [`RunControl::arm`] spawning the watchdog,
//! * [`Completeness`] — how much durable state a cancelled run left
//!   behind, carried by [`crate::Error::Cancelled`],
//! * [`cancellation_reason`] — recognize a cancellation at any error
//!   layer.
//!
//! The contract: a cancelled run returns `Error::Cancelled { reason,
//! checkpoint, completeness }` and never partial counts. Every completed
//! pass was already checkpointed durably (the PR 2 NACK envelope), so
//! interrupt-to-checkpoint costs nothing extra at cancellation time, and a
//! subsequent [`crate::NegativeMiner::mine_with_recovery`] resumes to
//! byte-identical output.

pub use negassoc_txdb::ctrl::{
    cancellation_of, CancelReason, CancelToken, Cancellation, Deadline, Watchdog,
};

use crate::error::Error;
use negassoc_txdb::obs::Obs;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// How much durable progress a cancelled run left behind — the
/// "explicit completeness status" attached to [`Error::Cancelled`] — or,
/// for [`Completeness::Degraded`], how much of the *database* a finished
/// run actually covered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// Nothing durable: no pass completed under a checkpoint manager (or
    /// none was configured). Resuming restarts from scratch — still to
    /// the identical answer.
    NoCheckpoint,
    /// Positive mining was interrupted; levels below `next_level` are
    /// durable.
    PositivePartial {
        /// The level a resumed run will mine next.
        next_level: usize,
        /// Database passes completed and persisted.
        passes: u64,
    },
    /// Positive mining and negative candidate generation are durable;
    /// only negative confirmation counting remains.
    NegativePending {
        /// Negative candidates awaiting their counting pass.
        candidates: usize,
    },
    /// The run *finished*, but over a sharded source that had to
    /// quarantine unreadable shards: the answer is exact over every
    /// delivered transaction and silent about the quarantined ones.
    Degraded {
        /// Display paths of the shards that were quarantined.
        quarantined_shards: Vec<String>,
    },
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completeness::NoCheckpoint => f.write_str("no durable progress"),
            Completeness::PositivePartial { next_level, passes } => write!(
                f,
                "{passes} passes durable, positive mining resumes at level {next_level}"
            ),
            Completeness::NegativePending { candidates } => write!(
                f,
                "positive phase durable, {candidates} negative candidates await counting"
            ),
            Completeness::Degraded { quarantined_shards } => write!(
                f,
                "complete except {} quarantined shard(s): {}",
                quarantined_shards.len(),
                quarantined_shards.join(", ")
            ),
        }
    }
}

/// Everything a controlled run needs, bundled: the shared token plus the
/// monitor inputs [`RunControl::arm`] hands to the [`Watchdog`].
///
/// [`MinerConfig`](crate::config::MinerConfig) is `Copy` and
/// checkpoint-fingerprinted, so run control deliberately lives *outside*
/// the configuration: two runs that differ only in deadline or interrupt
/// wiring share checkpoints and produce identical output.
///
/// A [`RunControl`] also carries the run's observer ([`Obs`]): trace sinks
/// and metrics attached with [`RunControl::with_observer`] receive every
/// structured event the run emits. The default observer is disabled and
/// costs nothing.
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    token: CancelToken,
    deadline: Option<Deadline>,
    stall_window: Option<Duration>,
    interrupt: Option<Arc<AtomicBool>>,
    obs: Obs,
}

impl RunControl {
    /// A fresh control bundle with a live token and no triggers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The run's cancel token (clone it to share).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Bound the run by wall clock.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cancel the run when no counting progress lands for `window`.
    pub fn with_stall_window(mut self, window: Duration) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Cancel the run when `flag` becomes true (the SIGINT bridge).
    pub fn with_interrupt_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// Attach an observer: its sinks and metrics receive every structured
    /// event the controlled run emits.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The run's observer (disabled unless [`Self::with_observer`] set one).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Spawn the watchdog for the configured triggers. Returns `None`
    /// when there is nothing to monitor (no deadline, stall window or
    /// interrupt flag) — the token can still be cancelled directly. Keep
    /// the returned guard alive for the duration of the run; dropping it
    /// stops the monitor.
    pub fn arm(&self) -> Option<Watchdog> {
        if self.deadline.is_none() && self.stall_window.is_none() && self.interrupt.is_none() {
            return None;
        }
        Some(Watchdog::spawn(
            self.token.clone(),
            self.deadline,
            self.stall_window,
            self.interrupt.clone(),
        ))
    }
}

/// The [`CancelReason`] inside `err`, whether it already surfaced as
/// [`Error::Cancelled`] or still rides the pass boundary as an
/// `Io(Interrupted)` carrying a [`Cancellation`] payload.
pub fn cancellation_reason(err: &Error) -> Option<CancelReason> {
    match err {
        Error::Cancelled { reason, .. } => Some(*reason),
        Error::Io(e) => cancellation_of(e),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_control_defaults_to_unmonitored() {
        let rc = RunControl::new();
        assert!(rc.arm().is_none());
        assert!(!rc.token().is_cancelled());
    }

    #[test]
    fn armed_deadline_zero_cancels_immediately() {
        let rc = RunControl::new().with_deadline(Deadline::after(Duration::ZERO));
        let _w = rc.arm().expect("a deadline needs a watchdog");
        assert_eq!(rc.token().reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn cancellation_reason_sees_both_layers() {
        let token = CancelToken::new();
        token.cancel(CancelReason::Stalled);
        let io_layer = Error::Io(token.check().unwrap_err());
        assert_eq!(cancellation_reason(&io_layer), Some(CancelReason::Stalled));
        let typed = Error::Cancelled {
            reason: CancelReason::UserInterrupt,
            checkpoint: None,
            completeness: Completeness::NoCheckpoint,
        };
        assert_eq!(
            cancellation_reason(&typed),
            Some(CancelReason::UserInterrupt)
        );
        assert_eq!(cancellation_reason(&Error::Config("x".into())), None);
    }

    #[test]
    fn completeness_renders_each_stage() {
        assert!(Completeness::NoCheckpoint
            .to_string()
            .contains("no durable"));
        let p = Completeness::PositivePartial {
            next_level: 3,
            passes: 2,
        };
        assert!(p.to_string().contains("level 3"));
        let n = Completeness::NegativePending { candidates: 17 };
        assert!(n.to_string().contains("17 negative candidates"));
        let d = Completeness::Degraded {
            quarantined_shards: vec!["a-shard-001.nadb".into(), "a-shard-003.nadb".into()],
        };
        let s = d.to_string();
        assert!(s.contains("2 quarantined shard(s)"), "got: {s}");
        assert!(s.contains("a-shard-003.nadb"), "got: {s}");
    }
}
