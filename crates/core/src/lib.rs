//! # negassoc — strong negative association rule mining
//!
//! A from-scratch implementation of *Mining for Strong Negative Associations
//! in a Large Database of Customer Transactions* (Savasere, Omiecinski &
//! Navathe, ICDE 1998).
//!
//! A **negative association rule** `X ≠> Y` says that customers who buy `X`
//! buy `Y` far more rarely than the taxonomy-derived expectation. Naively,
//! almost every pair of items in a large inventory never co-occurs, so naive
//! negative mining drowns in billions of uninteresting rules. The paper's
//! insight: only look where a *high positive* association was expected —
//! candidates are derived from discovered (generalized) large itemsets by
//! substituting taxonomy children or siblings, and each candidate carries an
//! *expected support*. When the actual support falls short of the
//! expectation by at least `MinSup · MinRI`, the itemset is negative and
//! yields rules with **rule interest**
//!
//! ```text
//! RI = (E[support(X ∪ Y)] − support(X ∪ Y)) / support(X)  ≥  MinRI
//! ```
//!
//! ## Quick start
//!
//! ```
//! use negassoc::{MinerConfig, NegativeMiner};
//! use negassoc_apriori::MinSupport;
//! use negassoc_taxonomy::TaxonomyBuilder;
//! use negassoc_txdb::TransactionDbBuilder;
//!
//! // soft drinks -> {Coke, Pepsi}; snacks -> {Ruffles}
//! let mut tb = TaxonomyBuilder::new();
//! let drinks = tb.add_root("soft drinks");
//! let coke = tb.add_child(drinks, "Coke").unwrap();
//! let pepsi = tb.add_child(drinks, "Pepsi").unwrap();
//! let snacks = tb.add_root("snacks");
//! let ruffles = tb.add_child(snacks, "Ruffles").unwrap();
//! let tax = tb.build();
//!
//! // Customers buy Ruffles with Coke — and almost never with Pepsi.
//! let mut db = TransactionDbBuilder::new();
//! for _ in 0..40 { db.add([ruffles, coke]); }
//! for _ in 0..25 { db.add([coke]); }
//! for _ in 0..30 { db.add([pepsi]); }
//! for _ in 0..5  { db.add([ruffles, pepsi]); }
//! let db = db.build();
//!
//! let config = MinerConfig {
//!     min_support: MinSupport::Fraction(0.1),
//!     min_ri: 0.3,
//!     ..MinerConfig::default()
//! };
//! let outcome = NegativeMiner::new(config).mine(&db, &tax).unwrap();
//! assert!(outcome
//!     .rules
//!     .iter()
//!     .any(|r| r.antecedent.contains(ruffles) && r.consequent.contains(pepsi)));
//! ```
//!
//! ## Crate layout
//!
//! * [`expected`] — the Case 1/2/3 expected-support formulas,
//! * [`candidates`] — negative-candidate generation and pruning,
//! * [`naive`] / [`improved`] — the paper's two drivers (`2n` vs `n + 1`
//!   database passes, §2.2), with the §2.5 memory-bounded fallback,
//! * [`rules`] — negative-rule generation (paper Fig. 4),
//! * [`substitutes`] — the §4.1 future-work extension: explicit
//!   substitute-item knowledge beyond the taxonomy,
//! * [`miner`] — the [`NegativeMiner`] facade tying it all together,
//! * [`checkpoint`] — checksummed checkpoint/resume so interrupted runs
//!   restart from the last completed pass,
//! * [`obs`] — structured trace events, metrics, and pluggable sinks
//!   (attach via [`ctrl::RunControl::with_observer`]),
//! * [`audit`] — independent runtime certification of mining output
//!   (feature `audit`, default-on).

#[cfg(feature = "audit")]
pub mod audit;
pub mod candidates;
pub mod checkpoint;
pub mod config;
pub mod ctrl;
pub mod error;
pub mod expected;
pub mod export;
pub mod improved;
pub mod miner;
pub mod naive;
pub mod obs;
pub mod positive;
pub mod rules;
pub mod substitutes;

mod counting;

pub use candidates::{CandidateStats, NegativeCandidate, NegativeItemset};
pub use config::{GenAlgorithm, MinerConfig};
pub use ctrl::{CancelReason, CancelToken, Completeness, Deadline, RunControl, Watchdog};
pub use error::{Error, NegAssocError};
pub use export::RuleSetExport;
pub use miner::{MiningOutcome, MiningReport, NegativeMiner};
pub use negassoc_apriori::parallel::{Parallelism, PassStats};
pub use rules::NegativeRule;
