//! The workspace error type, [`Error`] (aliased as [`NegAssocError`]),
//! covering I/O, configuration, numeric, invariant, audit, and
//! cancellation failures.

use crate::ctrl::{CancelReason, Completeness};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors from the negative-association miner.
///
/// Re-exported as [`crate::NegAssocError`]; library code routes every
/// fallible path through this type instead of panicking (enforced by the
/// workspace analyzer's L001/L003 lints, see `cargo run -p xtask -- analyze`).
#[derive(Debug)]
pub enum Error {
    /// A database pass failed.
    Io(io::Error),
    /// Invalid configuration (message explains which knob).
    Config(String),
    /// Arithmetic that would poison downstream pruning (zero divisor,
    /// non-finite expected support).
    Numeric(String),
    /// An internal invariant did not hold; mining results cannot be
    /// trusted. Carries the broken invariant's description.
    Invariant(String),
    /// The configured memory budget cannot accommodate the run and no
    /// degraded path (chunked counting, partitioned mining) applies. The
    /// message says which structure overflowed and how to proceed.
    Budget(String),
    /// A runtime audit (`negassoc::audit`) refused to certify mining
    /// output; the message pins the first discrepancy found.
    Audit(String),
    /// The run was cancelled cooperatively (see [`crate::ctrl`]): user
    /// interrupt, deadline, or stall. No partial counts escape — the
    /// fields say why it stopped and how much durable, resumable state a
    /// checkpointed run left behind.
    Cancelled {
        /// Why the run's [`crate::ctrl::CancelToken`] was tripped.
        reason: CancelReason,
        /// Directory holding the resumable checkpoint, when one exists
        /// (pass it back to [`crate::NegativeMiner::mine_with_recovery`]).
        checkpoint: Option<PathBuf>,
        /// How far the run's durable state reaches.
        completeness: Completeness,
    },
}

/// The canonical name for [`Error`] across the workspace.
pub type NegAssocError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error during mining: {e}"),
            Error::Config(msg) => write!(f, "invalid miner configuration: {msg}"),
            Error::Numeric(msg) => write!(f, "numeric error during mining: {msg}"),
            Error::Invariant(msg) => write!(f, "broken mining invariant: {msg}"),
            Error::Budget(msg) => write!(f, "memory budget exceeded: {msg}"),
            Error::Audit(msg) => write!(f, "audit failed: {msg}"),
            Error::Cancelled {
                reason,
                checkpoint,
                completeness,
            } => {
                write!(f, "run cancelled ({reason}); {completeness}")?;
                match checkpoint {
                    Some(dir) => write!(f, "; resumable checkpoint at {}", dir.display()),
                    None => Ok(()),
                }
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Config(_)
            | Error::Numeric(_)
            | Error::Invariant(_)
            | Error::Budget(_)
            | Error::Audit(_)
            | Error::Cancelled { .. } => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::from(io::Error::new(io::ErrorKind::Other, "boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let c = Error::Config("min_ri out of range".into());
        assert!(c.to_string().contains("min_ri"));
        assert!(std::error::Error::source(&c).is_none());
    }

    #[test]
    fn new_variants_render_their_context() {
        let n = Error::Numeric("zero base support".into());
        assert!(n.to_string().contains("zero base support"));
        let i = Error::Invariant("itemset out of order".into());
        assert!(i.to_string().contains("itemset out of order"));
        let a = Error::Audit("support mismatch for {1,2}".into());
        assert!(a.to_string().contains("support mismatch"));
        let b = Error::Budget("5000000 candidates need ~800 MB".into());
        assert!(b.to_string().contains("memory budget exceeded"));
        for e in [n, i, a, b] {
            assert!(std::error::Error::source(&e).is_none());
        }
    }

    #[test]
    fn cancelled_renders_reason_checkpoint_and_completeness() {
        let with_ckpt = Error::Cancelled {
            reason: CancelReason::DeadlineExceeded,
            checkpoint: Some(PathBuf::from("/tmp/ckpt")),
            completeness: Completeness::PositivePartial {
                next_level: 3,
                passes: 2,
            },
        };
        let shown = with_ckpt.to_string();
        assert!(shown.contains("deadline exceeded"), "{shown}");
        assert!(shown.contains("level 3"), "{shown}");
        assert!(shown.contains("/tmp/ckpt"), "{shown}");
        assert!(std::error::Error::source(&with_ckpt).is_none());

        let bare = Error::Cancelled {
            reason: CancelReason::UserInterrupt,
            checkpoint: None,
            completeness: Completeness::NoCheckpoint,
        };
        let shown = bare.to_string();
        assert!(shown.contains("user interrupt"), "{shown}");
        assert!(!shown.contains("resumable checkpoint at"), "{shown}");
    }

    #[test]
    fn alias_is_the_same_type() {
        fn takes_alias(_: &NegAssocError) {}
        takes_alias(&Error::Config("x".into()));
    }
}
