use std::fmt;
use std::io;

/// Errors from the negative-association miner.
#[derive(Debug)]
pub enum Error {
    /// A database pass failed.
    Io(io::Error),
    /// Invalid configuration (message explains which knob).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error during mining: {e}"),
            Error::Config(msg) => write!(f, "invalid miner configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Config(_) => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::from(io::Error::new(io::ErrorKind::Other, "boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let c = Error::Config("min_ri out of range".into());
        assert!(c.to_string().contains("min_ri"));
        assert!(std::error::Error::source(&c).is_none());
    }
}
