//! Checkpoint/resume for the improved mining driver.
//!
//! A mining run over a large disk-resident database makes one pass per
//! itemset level plus one negative counting pass; killing the process at
//! pass `k` forfeits `k` full scans. This module persists the run's state
//! after every *completed* unit of work so a restart pays only for the
//! interrupted pass:
//!
//! * after each positive level — the [`GenLevelMiner`] stepping state
//!   ([`MinerState`]) as `pass-NNNN.nack`,
//! * after negative candidate generation — the finished positive state
//!   plus the full candidate set with expected supports, as
//!   `negative.nack`.
//!
//! Files are single-fsync'd, CRC-32-checksummed and carry a fingerprint of
//! the run parameters (config knobs + taxonomy + database size); a
//! checkpoint from a different run, or one damaged on disk, is skipped —
//! never trusted — and mining falls back to the next older checkpoint or a
//! fresh start. Collections inside a checkpoint are sorted, so a resumed
//! run is *equivalent* to an uninterrupted one: it finds the same large
//! itemsets with the same supports and the same negatives, and sorted
//! outputs (e.g. the CLI's rule CSV) are byte-identical.
//!
//! [`GenLevelMiner`]: negassoc_apriori::levelwise::GenLevelMiner

use crate::candidates::{CandidateStats, Derivation, DerivationCase, NegativeCandidate};
use crate::config::{Driver, GenAlgorithm, MinerConfig};
use crate::error::Error;
use negassoc_apriori::levelwise::MinerState;
use negassoc_apriori::{Itemset, MinSupport};
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::crc32::crc32;
use negassoc_txdb::obs::{metric, Event, Obs};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Checkpoint file magic: **N**egative **A**ssociation **C**hec**K**point.
const MAGIC: [u8; 4] = *b"NACK";
/// Current checkpoint format version.
const VERSION: u8 = 1;
/// Phase tag: positive mining in progress.
const TAG_POSITIVE: u8 = 1;
/// Phase tag: positive mining + candidate generation complete.
const TAG_NEGATIVE: u8 = 2;
/// Cap on length-driven pre-reservations while decoding (a corrupted
/// length must not abort the allocator; see the txdb loaders).
const PREALLOC_CAP: usize = 1 << 20;

/// State snapshot after a completed positive level.
#[derive(Clone, Debug, PartialEq)]
pub struct PositiveCheckpoint {
    /// The level miner's stepping state.
    pub state: MinerState,
    /// Database passes made so far.
    pub passes: u64,
    /// Positive levels with at least one large itemset so far.
    pub levels: u64,
}

/// State snapshot after candidate generation: everything but the final
/// counting pass(es).
#[derive(Clone, Debug, PartialEq)]
pub struct NegativeCheckpoint {
    /// The *finished* positive state.
    pub positive: PositiveCheckpoint,
    /// All negative candidates with expected supports, sorted by itemset.
    pub candidates: Vec<NegativeCandidate>,
    /// Candidate-generation counters (for the final report).
    pub stats: CandidateStats,
}

/// What a checkpoint directory offers a restarting run.
#[derive(Debug, PartialEq)]
pub enum Resume {
    /// No usable checkpoint — start fresh.
    Fresh,
    /// Positive mining can continue from this state.
    Positive(PositiveCheckpoint),
    /// Only the negative counting pass remains.
    Negative(NegativeCheckpoint),
}

/// Writes and reads checkpoints in one directory, bound to one run's
/// fingerprint.
#[derive(Clone, Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    fingerprint: u64,
    obs: Obs,
}

impl CheckpointManager {
    /// A manager for `dir` (created if missing), fingerprinted for a run
    /// of `config` over a database of `num_transactions` transactions
    /// under `tax`. Checkpoints written by any *other* combination are
    /// ignored on load.
    pub fn new<P: Into<PathBuf>>(
        dir: P,
        config: &MinerConfig,
        tax: &Taxonomy,
        num_transactions: Option<u64>,
    ) -> Result<Self, Error> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            fingerprint: fingerprint(config, tax, num_transactions),
            dir,
            obs: Obs::disabled(),
        })
    }

    /// Attach an observer: checkpoint writes and loads are reported as
    /// [`Event::CheckpointWrite`] / [`Event::CheckpointLoad`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Mix the source's content digest (e.g. a shard manifest's
    /// order-invariant CRC digest) into the fingerprint. A resume then
    /// survives cosmetic source changes (same shards, different manifest
    /// order) but rejects content drift. `None` leaves the fingerprint
    /// untouched — non-sharded sources keep their existing checkpoints.
    pub fn with_source_digest(mut self, digest: Option<u64>) -> Self {
        if let Some(d) = digest {
            self.fingerprint ^= d.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        self
    }

    /// The directory checkpoints live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persist the state after a completed positive level. The write goes
    /// to a temp file first so a crash mid-write never leaves a truncated
    /// file under a checkpoint name.
    pub fn save_positive(&self, ckpt: &PositiveCheckpoint) -> Result<(), Error> {
        let mut body = vec![TAG_POSITIVE];
        encode_positive(ckpt, &mut body);
        self.write_file(&format!("pass-{:04}.nack", ckpt.state.next_k), &body)
    }

    /// Persist the state after candidate generation.
    pub fn save_negative(&self, ckpt: &NegativeCheckpoint) -> Result<(), Error> {
        let mut body = vec![TAG_NEGATIVE];
        encode_positive(&ckpt.positive, &mut body);
        w_u64(&mut body, ckpt.candidates.len() as u64);
        let mut sorted: Vec<&NegativeCandidate> = ckpt.candidates.iter().collect();
        sorted.sort_unstable_by(|a, b| a.itemset.cmp(&b.itemset));
        for c in sorted {
            w_itemset(&mut body, &c.itemset);
            w_u64(&mut body, c.expected.to_bits());
            w_itemset(&mut body, &c.derivation.seed);
            w_u64(&mut body, c.derivation.seed_support);
            body.push(match c.derivation.case {
                DerivationCase::AllChildren => 0,
                DerivationCase::SomeChildren => 1,
                DerivationCase::Siblings => 2,
            });
        }
        for n in [
            ckpt.stats.seeds,
            ckpt.stats.generated,
            ckpt.stats.rejected_related,
            ckpt.stats.rejected_small_item,
            ckpt.stats.rejected_low_expected,
            ckpt.stats.rejected_large,
            ckpt.stats.merged,
            ckpt.stats.unique,
        ] {
            w_u64(&mut body, n);
        }
        self.write_file("negative.nack", &body)
    }

    /// The most advanced checkpoint this run can trust. Damaged or
    /// foreign (fingerprint-mismatched) files are skipped silently —
    /// resuming from an older checkpoint is always sound, just slower.
    pub fn load_latest(&self) -> Resume {
        if let Some(ckpt) = self.read_file("negative.nack").and_then(|b| {
            let mut r = b.as_slice();
            (r_u8(&mut r)? == TAG_NEGATIVE).then_some(())?;
            decode_negative(&mut r)
        }) {
            self.record_load("negative.nack", "negative");
            return Resume::Negative(ckpt);
        }
        let mut best: Option<(String, PositiveCheckpoint)> = None;
        for name in self.pass_files() {
            let Some(ckpt) = self.read_file(&name).and_then(|b| {
                let mut r = b.as_slice();
                (r_u8(&mut r)? == TAG_POSITIVE).then_some(())?;
                decode_positive(&mut r)
            }) else {
                continue;
            };
            if best
                .as_ref()
                .map_or(true, |(_, b)| ckpt.state.next_k > b.state.next_k)
            {
                best = Some((name, ckpt));
            }
        }
        match best {
            Some((name, c)) => {
                self.record_load(&name, "positive");
                Resume::Positive(c)
            }
            None => Resume::Fresh,
        }
    }

    /// Report a trusted checkpoint this run resumes from.
    fn record_load(&self, name: &str, phase: &str) {
        self.obs.emit(|| Event::CheckpointLoad {
            file: name.to_string(),
            resumed: phase.to_string(),
        });
        self.obs.bump(metric::CHECKPOINTS_LOADED, 1);
    }

    /// Delete this run's checkpoint files (call after a successful run so
    /// a later run with the same parameters starts fresh).
    pub fn clear(&self) -> Result<(), Error> {
        for name in self.pass_files() {
            fs::remove_file(self.dir.join(name))?;
        }
        let neg = self.dir.join("negative.nack");
        if neg.exists() {
            fs::remove_file(neg)?;
        }
        Ok(())
    }

    fn pass_files(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("pass-") && n.ends_with(".nack"))
            .collect();
        names.sort_unstable();
        names
    }

    fn write_file(&self, name: &str, body: &[u8]) -> Result<(), Error> {
        let mut out = Vec::with_capacity(body.len() + 25);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        w_u64(&mut out, self.fingerprint);
        w_u64(&mut out, body.len() as u64);
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out.extend_from_slice(body);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(name);
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        let bytes = out.len() as u64;
        self.obs.emit(|| Event::CheckpointWrite {
            file: name.to_string(),
            bytes,
        });
        self.obs.bump(metric::CHECKPOINTS_WRITTEN, 1);
        Ok(())
    }

    /// Read and validate one checkpoint file; `None` on any damage or
    /// mismatch (the caller falls back).
    fn read_file(&self, name: &str) -> Option<Vec<u8>> {
        let mut raw = Vec::new();
        File::open(self.dir.join(name))
            .ok()?
            .read_to_end(&mut raw)
            .ok()?;
        let mut r = raw.as_slice();
        let mut head = [0u8; 5];
        r.read_exact(&mut head).ok()?;
        (head[..4] == MAGIC && head[4] == VERSION).then_some(())?;
        (r_u64(&mut r)? == self.fingerprint).then_some(())?;
        let len = r_u64(&mut r)? as usize;
        let stored_crc = r_u32(&mut r)?;
        (r.len() == len && crc32(r) == stored_crc).then_some(())?;
        Some(r.to_vec())
    }
}

/// A stable fingerprint of everything that shapes a run's state: the
/// config knobs, the taxonomy's shape, and the database size. Two runs
/// with equal fingerprints produce interchangeable checkpoints.
///
/// [`MinerConfig::parallelism`] and [`MinerConfig::backend`] are
/// deliberately *not* hashed: worker counts and counting strategy change
/// wall time, never counts, so a checkpoint written by a sequential
/// hash-tree run must resume under `--threads N --backend bitmap` (and
/// vice versa).
fn fingerprint(config: &MinerConfig, tax: &Taxonomy, num_transactions: Option<u64>) -> u64 {
    let mut buf = Vec::new();
    match config.min_support {
        MinSupport::Count(c) => {
            buf.push(0);
            w_u64(&mut buf, c);
        }
        MinSupport::Fraction(f) => {
            buf.push(1);
            w_u64(&mut buf, f.to_bits());
        }
    }
    w_u64(&mut buf, config.min_ri.to_bits());
    buf.push(match config.algorithm {
        GenAlgorithm::Basic => 0,
        GenAlgorithm::Cumulate => 1,
        GenAlgorithm::EstMerge(_) => 2,
    });
    buf.push(match config.driver {
        Driver::Naive => 0,
        Driver::Improved => 1,
    });
    w_u64(&mut buf, config.max_candidates_per_pass.unwrap_or(0) as u64);
    buf.push(u8::from(config.compress_taxonomy));
    w_u64(&mut buf, config.max_negative_size.unwrap_or(0) as u64);
    w_u64(&mut buf, config.memory_budget.unwrap_or(0) as u64);
    w_u64(&mut buf, tax.len() as u64);
    w_u64(&mut buf, num_transactions.unwrap_or(u64::MAX));
    // Two independent CRC streams make a 64-bit tag; plenty against
    // accidental reuse (this guards mistakes, not adversaries).
    let lo = crc32(&buf);
    buf.push(0x5A);
    let hi = crc32(&buf);
    (u64::from(hi) << 32) | u64::from(lo)
}

fn encode_positive(ckpt: &PositiveCheckpoint, out: &mut Vec<u8>) {
    w_u64(out, ckpt.passes);
    w_u64(out, ckpt.levels);
    w_u64(out, ckpt.state.num_transactions);
    w_u64(out, ckpt.state.minsup);
    w_u64(out, ckpt.state.next_k as u64);
    out.push(u8::from(ckpt.state.done));
    w_u64(out, ckpt.state.large.len() as u64);
    for (set, support) in &ckpt.state.large {
        w_itemset(out, set);
        w_u64(out, *support);
    }
    w_u64(out, ckpt.state.frontier.len() as u64);
    for set in &ckpt.state.frontier {
        w_itemset(out, set);
    }
}

fn decode_positive(r: &mut &[u8]) -> Option<PositiveCheckpoint> {
    let passes = r_u64(r)?;
    let levels = r_u64(r)?;
    let num_transactions = r_u64(r)?;
    let minsup = r_u64(r)?;
    let next_k = usize::try_from(r_u64(r)?).ok()?;
    let done = r_u8(r)? != 0;
    let n_large = usize::try_from(r_u64(r)?).ok()?;
    let mut large = Vec::with_capacity(n_large.min(PREALLOC_CAP));
    for _ in 0..n_large {
        let set = r_itemset(r)?;
        let support = r_u64(r)?;
        large.push((set, support));
    }
    let n_frontier = usize::try_from(r_u64(r)?).ok()?;
    let mut frontier = Vec::with_capacity(n_frontier.min(PREALLOC_CAP));
    for _ in 0..n_frontier {
        frontier.push(r_itemset(r)?);
    }
    Some(PositiveCheckpoint {
        state: MinerState {
            num_transactions,
            minsup,
            large,
            frontier,
            next_k,
            done,
        },
        passes,
        levels,
    })
}

fn decode_negative(r: &mut &[u8]) -> Option<NegativeCheckpoint> {
    let positive = decode_positive(r)?;
    let n = usize::try_from(r_u64(r)?).ok()?;
    let mut candidates = Vec::with_capacity(n.min(PREALLOC_CAP));
    for _ in 0..n {
        let itemset = r_itemset(r)?;
        let expected = f64::from_bits(r_u64(r)?);
        let seed = r_itemset(r)?;
        let seed_support = r_u64(r)?;
        let case = match r_u8(r)? {
            0 => DerivationCase::AllChildren,
            1 => DerivationCase::SomeChildren,
            2 => DerivationCase::Siblings,
            _ => return None,
        };
        candidates.push(NegativeCandidate {
            itemset,
            expected,
            derivation: Derivation {
                seed,
                seed_support,
                case,
            },
        });
    }
    let mut stats = CandidateStats::default();
    for field in [
        &mut stats.seeds,
        &mut stats.generated,
        &mut stats.rejected_related,
        &mut stats.rejected_small_item,
        &mut stats.rejected_low_expected,
        &mut stats.rejected_large,
        &mut stats.merged,
        &mut stats.unique,
    ] {
        *field = r_u64(r)?;
    }
    r.is_empty().then_some(NegativeCheckpoint {
        positive,
        candidates,
        stats,
    })
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_itemset(out: &mut Vec<u8>, set: &Itemset) {
    w_u64(out, set.len() as u64);
    for item in set.items() {
        out.extend_from_slice(&item.0.to_le_bytes());
    }
}

fn r_u8(r: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = r.split_first()?;
    *r = rest;
    Some(b)
}

fn r_u32(r: &mut &[u8]) -> Option<u32> {
    if r.len() < 4 {
        return None;
    }
    let (head, rest) = r.split_at(4);
    *r = rest;
    Some(u32::from_le_bytes([head[0], head[1], head[2], head[3]]))
}

fn r_u64(r: &mut &[u8]) -> Option<u64> {
    if r.len() < 8 {
        return None;
    }
    let (head, rest) = r.split_at(8);
    *r = rest;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(head);
    Some(u64::from_le_bytes(raw))
}

fn r_itemset(r: &mut &[u8]) -> Option<Itemset> {
    let n = usize::try_from(r_u64(r)?).ok()?;
    let mut items = Vec::with_capacity(n.min(PREALLOC_CAP));
    let mut prev: Option<ItemId> = None;
    for _ in 0..n {
        let item = ItemId(r_u32(r)?);
        // The on-disk order must already be strictly ascending; anything
        // else is corruption that slipped past the CRC.
        if prev.is_some_and(|p| p >= item) {
            return None;
        }
        items.push(item);
        prev = Some(item);
    }
    Some(Itemset::from_sorted(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, self-cleaning checkpoint directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("negassoc-ckpt-{}-{n}-{name}", std::process::id()));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn fingerprint_ignores_parallelism() {
        use negassoc_apriori::parallel::Parallelism;
        let t = tax();
        let base = MinerConfig::default();
        let fp = fingerprint(&base, &t, Some(100));
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Threads(1),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let cfg = MinerConfig {
                parallelism,
                ..base
            };
            assert_eq!(fingerprint(&cfg, &t, Some(100)), fp, "{parallelism:?}");
        }
        // Anything that changes the mined result still changes the tag.
        let other = MinerConfig {
            min_ri: base.min_ri + 0.125,
            ..base
        };
        assert_ne!(fingerprint(&other, &t, Some(100)), fp);
    }

    /// All counting backends produce identical counts, so a checkpoint
    /// written under one backend must resume cleanly under another.
    #[test]
    fn fingerprint_ignores_backend() {
        use negassoc_apriori::count::CountingBackend;
        let t = tax();
        let base = MinerConfig::default();
        let fp = fingerprint(&base, &t, Some(100));
        for backend in [
            CountingBackend::HashTree,
            CountingBackend::SubsetHashMap,
            CountingBackend::TidBitmap,
        ] {
            let cfg = MinerConfig { backend, ..base };
            assert_eq!(fingerprint(&cfg, &t, Some(100)), fp, "{backend:?}");
        }
    }

    #[test]
    fn source_digest_perturbs_the_fingerprint_and_none_is_identity() {
        let t = tax();
        let cfg = MinerConfig::default();
        let dir = TempDir::new("digest");
        let base = CheckpointManager::new(&dir.0, &cfg, &t, Some(100)).unwrap();
        let fp = base.fingerprint;
        let same = CheckpointManager::new(&dir.0, &cfg, &t, Some(100))
            .unwrap()
            .with_source_digest(None);
        assert_eq!(same.fingerprint, fp);
        let a = CheckpointManager::new(&dir.0, &cfg, &t, Some(100))
            .unwrap()
            .with_source_digest(Some(0xABCD));
        let b = CheckpointManager::new(&dir.0, &cfg, &t, Some(100))
            .unwrap()
            .with_source_digest(Some(0xABCE));
        assert_ne!(a.fingerprint, fp);
        assert_ne!(a.fingerprint, b.fingerprint);
        // Same digest → same fingerprint (resume across reordered shards).
        let a2 = CheckpointManager::new(&dir.0, &cfg, &t, Some(100))
            .unwrap()
            .with_source_digest(Some(0xABCD));
        assert_eq!(a.fingerprint, a2.fingerprint);
    }

    fn tax() -> Taxonomy {
        let mut tb = negassoc_taxonomy::TaxonomyBuilder::new();
        let root = tb.add_root("root");
        tb.add_child(root, "a").unwrap();
        tb.add_child(root, "b").unwrap();
        tb.build()
    }

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    fn sample_positive() -> PositiveCheckpoint {
        PositiveCheckpoint {
            state: MinerState {
                num_transactions: 100,
                minsup: 5,
                large: vec![(set(&[1]), 40), (set(&[2]), 30), (set(&[1, 2]), 20)],
                frontier: vec![set(&[1, 2])],
                next_k: 3,
                done: false,
            },
            passes: 2,
            levels: 2,
        }
    }

    fn sample_negative() -> NegativeCheckpoint {
        let mut positive = sample_positive();
        positive.state.done = true;
        NegativeCheckpoint {
            positive,
            candidates: vec![NegativeCandidate {
                itemset: set(&[0, 2]),
                expected: 12.5,
                derivation: Derivation {
                    seed: set(&[1, 2]),
                    seed_support: 20,
                    case: DerivationCase::Siblings,
                },
            }],
            stats: CandidateStats {
                seeds: 3,
                generated: 7,
                unique: 1,
                ..CandidateStats::default()
            },
        }
    }

    #[test]
    fn positive_round_trip() {
        let dir = TempDir::new("pos");
        let mgr =
            CheckpointManager::new(&dir.0, &MinerConfig::default(), &tax(), Some(100)).unwrap();
        assert_eq!(mgr.load_latest(), Resume::Fresh);
        let ckpt = sample_positive();
        mgr.save_positive(&ckpt).unwrap();
        assert_eq!(mgr.load_latest(), Resume::Positive(ckpt));
        assert!(mgr.dir().join("pass-0003.nack").exists());
    }

    #[test]
    fn negative_round_trip_and_precedence() {
        let dir = TempDir::new("neg");
        let mgr =
            CheckpointManager::new(&dir.0, &MinerConfig::default(), &tax(), Some(100)).unwrap();
        mgr.save_positive(&sample_positive()).unwrap();
        let neg = sample_negative();
        mgr.save_negative(&neg).unwrap();
        // The negative checkpoint supersedes any positive one.
        assert_eq!(mgr.load_latest(), Resume::Negative(neg));
        mgr.clear().unwrap();
        assert_eq!(mgr.load_latest(), Resume::Fresh);
    }

    #[test]
    fn later_passes_win() {
        let dir = TempDir::new("latest");
        let mgr =
            CheckpointManager::new(&dir.0, &MinerConfig::default(), &tax(), Some(100)).unwrap();
        let mut early = sample_positive();
        early.state.next_k = 2;
        early.passes = 1;
        mgr.save_positive(&early).unwrap();
        let late = sample_positive();
        mgr.save_positive(&late).unwrap();
        assert_eq!(mgr.load_latest(), Resume::Positive(late));
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_one() {
        let dir = TempDir::new("corrupt");
        let mgr =
            CheckpointManager::new(&dir.0, &MinerConfig::default(), &tax(), Some(100)).unwrap();
        let mut early = sample_positive();
        early.state.next_k = 2;
        mgr.save_positive(&early).unwrap();
        mgr.save_positive(&sample_positive()).unwrap();
        // Flip one byte in the newer file's body.
        let path = dir.0.join("pass-0003.nack");
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(mgr.load_latest(), Resume::Positive(early));
    }

    #[test]
    fn fingerprint_mismatch_is_ignored() {
        let dir = TempDir::new("fp");
        let t = tax();
        let mgr = CheckpointManager::new(&dir.0, &MinerConfig::default(), &t, Some(100)).unwrap();
        mgr.save_positive(&sample_positive()).unwrap();
        // A run over a different database size must not trust it.
        let other = CheckpointManager::new(&dir.0, &MinerConfig::default(), &t, Some(999)).unwrap();
        assert_eq!(other.load_latest(), Resume::Fresh);
        // Different config, same db: also ignored.
        let cfg = MinerConfig {
            min_ri: 0.9,
            ..MinerConfig::default()
        };
        let other = CheckpointManager::new(&dir.0, &cfg, &t, Some(100)).unwrap();
        assert_eq!(other.load_latest(), Resume::Fresh);
    }

    #[test]
    fn truncated_and_garbage_files_are_skipped() {
        let dir = TempDir::new("garbage");
        let mgr =
            CheckpointManager::new(&dir.0, &MinerConfig::default(), &tax(), Some(100)).unwrap();
        std::fs::write(dir.0.join("pass-0002.nack"), b"NACK").unwrap();
        std::fs::write(dir.0.join("pass-0004.nack"), vec![0u8; 64]).unwrap();
        std::fs::write(dir.0.join("negative.nack"), b"not a checkpoint").unwrap();
        assert_eq!(mgr.load_latest(), Resume::Fresh);
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let dir = TempDir::new("atomic");
        let mgr =
            CheckpointManager::new(&dir.0, &MinerConfig::default(), &tax(), Some(100)).unwrap();
        mgr.save_positive(&sample_positive()).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
    }
}
