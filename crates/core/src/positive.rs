//! The baseline the paper positions itself against (§1.2): Srikant &
//! Agrawal's *R-interest* pruning of generalized **positive** rules
//! (VLDB '95). A rule over specific items is uninteresting when an
//! ancestor rule already predicts its support: if `clothes ⇒ footwear` is
//! known, `jackets ⇒ shoes` carries no news unless its support deviates
//! from the taxonomy-scaled expectation by at least a factor `R`.
//!
//! The expectation is the same Case-1/2 scaling the negative miner uses
//! ([`crate::expected`]); the two techniques are duals — R-interest keeps
//! positive rules that *beat* the expectation, the negative miner keeps
//! itemsets that *fall short* of it. Implementing both makes the
//! comparison concrete (see the `retail_taxonomy` example and the
//! `ablation` benches).

use crate::error::NegAssocError;
use crate::expected::{approx_ge, expected_support, support_to_f64, Ratio};
use negassoc_apriori::rules::Rule;
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::{ItemId, Taxonomy};

/// A rule together with the verdict of the R-interest filter.
#[derive(Clone, Debug)]
pub struct JudgedRule {
    /// The positive rule.
    pub rule: Rule,
    /// The tightest (smallest) ancestor-predicted expected support, when
    /// any ancestor itemset of the rule's union is large.
    pub closest_expectation: Option<f64>,
    /// `true` when no large ancestor predicts the rule within factor `R`.
    pub interesting: bool,
}

/// Filter `rules` to the R-interesting ones: a rule survives when its
/// actual support is at least `r` times the expected support derived from
/// *every* large ancestor itemset of its union (rules with no large
/// ancestor are trivially interesting — there is nothing to predict them
/// from).
///
/// # Errors
/// [`NegAssocError::Config`] when `r < 1.0` (a factor below 1 would prune
/// rules for merely meeting expectations).
pub fn r_interesting(
    rules: Vec<Rule>,
    large: &LargeItemsets,
    tax: &Taxonomy,
    r: f64,
) -> Result<Vec<JudgedRule>, NegAssocError> {
    if !(r >= 1.0) {
        return Err(NegAssocError::Config(format!(
            "interest factor must be at least 1, got {r}"
        )));
    }
    Ok(rules
        .into_iter()
        .map(|rule| {
            let union = rule.antecedent.union(&rule.consequent);
            let closest = closest_ancestor_expectation(&union, large, tax);
            let interesting = match closest {
                None => true,
                Some(e) => approx_ge(support_to_f64(rule.support), r * e),
            };
            JudgedRule {
                rule,
                closest_expectation: closest,
                interesting,
            }
        })
        .collect())
}

/// The smallest expected support over all "close ancestors" of `itemset`:
/// itemsets obtained by replacing a nonempty subset of members with their
/// immediate parents, kept only when large. Smallest is the binding
/// prediction — a rule must beat the *best-informed* ancestor.
fn closest_ancestor_expectation(
    itemset: &Itemset,
    large: &LargeItemsets,
    tax: &Taxonomy,
) -> Option<f64> {
    let items = itemset.items();
    let k = items.len();
    let mut best: Option<f64> = None;
    // Masks select which members to lift to their parent.
    for mask in 1u32..(1 << k) {
        let mut lifted: Vec<ItemId> = Vec::with_capacity(k);
        let mut ratios: Vec<Ratio> = Vec::new();
        let mut ok = true;
        for (pos, &item) in items.iter().enumerate() {
            if mask & (1 << pos) == 0 {
                lifted.push(item);
                continue;
            }
            let Some(parent) = tax.parent(item) else {
                ok = false;
                break;
            };
            let (Some(child_sup), Some(parent_sup)) =
                (large.support_of(&[item]), large.support_of(&[parent]))
            else {
                ok = false;
                break;
            };
            lifted.push(parent);
            ratios.push(Ratio {
                new_support: child_sup,
                base_support: parent_sup,
            });
        }
        if !ok {
            continue;
        }
        let ancestor = Itemset::from_unsorted(lifted);
        if ancestor.len() != k {
            continue; // lifting collapsed two members into one ancestor
        }
        let Some(ancestor_sup) = large.support_of_set(&ancestor) else {
            continue;
        };
        // Parent supports come from the large store, so they are positive;
        // a failure here would be a corrupt store — skip the mask rather
        // than poison the minimum with NaN.
        let Ok(e) = expected_support(ancestor_sup, &ratios) else {
            continue;
        };
        best = Some(match best {
            None => e,
            Some(b) => b.min(e),
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::TaxonomyBuilder;

    /// clothes -> {jackets, ski pants}; footwear -> {shoes, boots}.
    fn world() -> (Taxonomy, LargeItemsets, [ItemId; 6]) {
        let mut b = TaxonomyBuilder::new();
        let clothes = b.add_root("clothes");
        let jackets = b.add_child(clothes, "jackets").unwrap();
        let ski = b.add_child(clothes, "ski pants").unwrap();
        let footwear = b.add_root("footwear");
        let shoes = b.add_child(footwear, "shoes").unwrap();
        let boots = b.add_child(footwear, "boots").unwrap();
        let tax = b.build();

        let mut large = LargeItemsets::new(1000, 10);
        for (i, s) in [
            (clothes, 200u64),
            (jackets, 100),
            (ski, 100),
            (footwear, 200),
            (shoes, 100),
            (boots, 100),
        ] {
            large.insert(Itemset::singleton(i), s);
        }
        // Ancestor rule basis: {clothes, footwear} support 80.
        large.insert(Itemset::from_unsorted(vec![clothes, footwear]), 80);
        // Exactly as predicted: E[{jackets, shoes}] = 80·(1/2)·(1/2) = 20.
        large.insert(Itemset::from_unsorted(vec![jackets, shoes]), 20);
        // Far above prediction: {ski, boots} = 60 >> 20.
        large.insert(Itemset::from_unsorted(vec![ski, boots]), 60);
        (tax, large, [clothes, jackets, ski, footwear, shoes, boots])
    }

    fn rule(a: ItemId, c: ItemId, support: u64, large: &LargeItemsets) -> Rule {
        let asup = large.support_of(&[a]).unwrap();
        Rule {
            antecedent: Itemset::singleton(a),
            consequent: Itemset::singleton(c),
            support,
            confidence: support as f64 / asup as f64,
        }
    }

    #[test]
    fn predicted_rule_is_pruned_surprising_rule_survives() {
        let (tax, large, [_, jackets, ski, _, shoes, boots]) = world();
        let rules = vec![
            rule(jackets, shoes, 20, &large),
            rule(ski, boots, 60, &large),
        ];
        let judged = r_interesting(rules, &large, &tax, 1.5).unwrap();
        assert_eq!(judged.len(), 2);
        let by = |a: ItemId| {
            judged
                .iter()
                .find(|j| j.rule.antecedent.contains(a))
                .unwrap()
        };

        let predicted = by(jackets);
        assert!(!predicted.interesting); // 20 < 1.5·20
        assert!((predicted.closest_expectation.unwrap() - 20.0).abs() < 1e-9);

        let surprising = by(ski);
        assert!(surprising.interesting); // 60 >= 1.5·20
    }

    #[test]
    fn ancestorless_rules_are_trivially_interesting() {
        let (tax, large, [clothes, _, _, footwear, _, _]) = world();
        // The top-level rule itself has no large ancestor (its members are
        // roots).
        let rules = vec![rule(clothes, footwear, 80, &large)];
        let judged = r_interesting(rules, &large, &tax, 2.0).unwrap();
        assert!(judged[0].interesting);
        assert!(judged[0].closest_expectation.is_none());
    }

    #[test]
    fn partial_lift_uses_case2_expectation() {
        let (tax, mut large, [clothes, jackets, _, _, shoes, _]) = world();
        // Make {clothes, shoes} large too: lifting only `jackets` gives
        // E[{jackets, shoes}] = sup({clothes, shoes})·(100/200) = 30,
        // SMALLER than the both-lifted expectation 20? No: 60·0.5 = 30 >
        // 20, so the binding (minimum) stays 20.
        large.insert(Itemset::from_unsorted(vec![clothes, shoes]), 60);
        let rules = vec![rule(jackets, shoes, 25, &large)];
        let judged = r_interesting(rules, &large, &tax, 1.0).unwrap();
        assert!((judged[0].closest_expectation.unwrap() - 20.0).abs() < 1e-9);
        // At R = 1.0, 25 >= 20 -> interesting.
        assert!(judged[0].interesting);
    }

    #[test]
    fn r_below_one_is_a_config_error() {
        let (tax, large, _) = world();
        let err = r_interesting(Vec::new(), &large, &tax, 0.5).unwrap_err();
        assert!(matches!(err, NegAssocError::Config(_)));
        assert!(err.to_string().contains("at least 1"));
        // NaN factors are rejected the same way.
        assert!(r_interesting(Vec::new(), &large, &tax, f64::NAN).is_err());
    }
}
