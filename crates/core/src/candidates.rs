//! Candidate negative itemsets (paper §2.1.1).
//!
//! Candidates of size `k` are derived from each generalized large k-itemset
//! `l` by substituting members:
//!
//! * **Case 1** — every member replaced by one of its immediate children,
//! * **Case 2** — a proper nonempty subset of members replaced by children,
//! * **Case 3** — a proper nonempty subset replaced by siblings.
//!
//! Both substitution kinds scale the expectation by
//! `sup(new)/sup(replaced)` per position (see [`crate::expected`]), so the
//! implementation iterates over nonempty position masks and, per mask, over
//! the cartesian products of child options and (for proper masks) sibling
//! options. The excluded shapes (§2.1.1: all-siblings, ancestors, mixed
//! children+siblings) never arise by construction.
//!
//! A candidate is admitted only when (checked in this order):
//!
//! 1. its items are distinct and contain no ancestor/descendant pair,
//! 2. every 1-item is large (pre-guaranteed when generating against a
//!    compressed taxonomy; checked explicitly otherwise),
//! 3. its expected support reaches `MinSup · MinRI`,
//! 4. it is not itself a large itemset (then it is positively, not
//!    negatively, interesting — see the paper's worked example).
//!
//! The same candidate can arise from different large itemsets with
//! different expectations; the **largest** expected support wins (§2.1.1).

use crate::error::NegAssocError;
use crate::expected::{candidate_threshold, expected_support, Ratio};
use crate::substitutes::SubstituteKnowledge;
use negassoc_apriori::generalized::AncestorTable;
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::fxhash::FxHashMap;
use negassoc_taxonomy::{FilteredTaxonomy, ItemId, Taxonomy};

/// Which of the paper's generation cases produced a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DerivationCase {
    /// Case 1: every member of the seed replaced by a child.
    AllChildren,
    /// Case 2: a proper subset of members replaced by children.
    SomeChildren,
    /// Case 3: a proper subset of members replaced by siblings (or
    /// declared substitutes).
    Siblings,
}

/// Where a candidate's (winning) expected support came from: the large
/// itemset it was derived from and the substitution case used.
#[derive(Clone, Debug, PartialEq)]
pub struct Derivation {
    /// The large itemset that seeded the candidate.
    pub seed: Itemset,
    /// The seed's support.
    pub seed_support: u64,
    /// The substitution case.
    pub case: DerivationCase,
}

/// A candidate negative itemset with its (max) expected support.
#[derive(Clone, Debug, PartialEq)]
pub struct NegativeCandidate {
    /// The itemset.
    pub itemset: Itemset,
    /// Taxonomy-derived expected support (absolute transactions).
    pub expected: f64,
    /// Provenance of the winning expectation (for auditability).
    pub derivation: Derivation,
}

/// A confirmed negative itemset: counted support fell short of the
/// expectation by at least `MinSup · MinRI`.
#[derive(Clone, Debug, PartialEq)]
pub struct NegativeItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Expected support.
    pub expected: f64,
    /// Actual counted support.
    pub actual: u64,
    /// Provenance of the expectation, when tracked (itemsets built by the
    /// miners always carry it; hand-built ones may not).
    pub derivation: Option<Derivation>,
}

/// Counters describing one candidate-generation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CandidateStats {
    /// Large itemsets that seeded generation.
    pub seeds: u64,
    /// Raw substitution combinations produced.
    pub generated: u64,
    /// Rejected: duplicate members or ancestor/descendant pair.
    pub rejected_related: u64,
    /// Rejected: some 1-item not large (only possible without taxonomy
    /// compression).
    pub rejected_small_item: u64,
    /// Rejected: expected support below `MinSup · MinRI`.
    pub rejected_low_expected: u64,
    /// Rejected: the candidate is itself a large itemset.
    pub rejected_large: u64,
    /// Duplicates merged into an existing candidate (max expectation kept).
    pub merged: u64,
    /// Final number of distinct candidates.
    pub unique: u64,
}

/// Accumulates candidates across levels with max-expectation deduplication.
pub struct CandidateSet {
    map: FxHashMap<Itemset, (f64, Derivation)>,
    stats: CandidateStats,
}

impl CandidateSet {
    /// An empty set.
    pub fn new() -> Self {
        Self {
            map: FxHashMap::default(),
            stats: CandidateStats::default(),
        }
    }

    /// Number of distinct candidates so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no candidates have been admitted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Generation counters.
    pub fn stats(&self) -> &CandidateStats {
        &self.stats
    }

    /// Finish: the candidates, in unspecified order.
    pub fn into_candidates(mut self) -> (Vec<NegativeCandidate>, CandidateStats) {
        self.stats.unique = self.map.len() as u64;
        let v = self
            .map
            .into_iter()
            .map(|(itemset, (expected, derivation))| NegativeCandidate {
                itemset,
                expected,
                derivation,
            })
            .collect();
        (v, self.stats)
    }
}

impl Default for CandidateSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Generates negative candidates from large itemsets and a taxonomy.
pub struct CandidateGenerator<'a> {
    tax: &'a Taxonomy,
    /// When present, children/sibling options come pre-filtered to large
    /// items (the improved algorithm compresses the taxonomy, §2.2.2).
    filtered: Option<&'a FilteredTaxonomy<'a>>,
    ancestors: AncestorTable,
    large: &'a LargeItemsets,
    threshold: f64,
    substitutes: Option<&'a SubstituteKnowledge>,
}

impl<'a> CandidateGenerator<'a> {
    /// A generator that checks 1-item largeness per candidate (the naive
    /// algorithm's behaviour).
    pub fn new(tax: &'a Taxonomy, large: &'a LargeItemsets, min_ri: f64) -> Self {
        Self {
            tax,
            filtered: None,
            ancestors: AncestorTable::new(tax),
            large,
            threshold: candidate_threshold(large.min_support_count(), min_ri),
            substitutes: None,
        }
    }

    /// A generator over a compressed taxonomy (every retained item is
    /// large), skipping the per-candidate 1-item check.
    pub fn with_compressed(
        filtered: &'a FilteredTaxonomy<'a>,
        large: &'a LargeItemsets,
        min_ri: f64,
    ) -> Self {
        Self {
            tax: filtered.base(),
            filtered: Some(filtered),
            ancestors: AncestorTable::new(filtered.base()),
            large,
            threshold: candidate_threshold(large.min_support_count(), min_ri),
            substitutes: None,
        }
    }

    /// Attach explicit substitute-item knowledge (§4.1 extension): members
    /// of a substitute group act as additional "siblings" in Case 3.
    pub fn with_substitutes(mut self, subs: &'a SubstituteKnowledge) -> Self {
        self.substitutes = Some(subs);
        self
    }

    fn support_1(&self, item: ItemId) -> Option<u64> {
        self.large.support_of(&[item])
    }

    fn is_retained(&self, item: ItemId) -> bool {
        match self.filtered {
            Some(f) => f.contains(item),
            None => self.support_1(item).is_some(),
        }
    }

    /// Large children of `item`.
    fn child_options(&self, item: ItemId, out: &mut Vec<ItemId>) {
        out.clear();
        match self.filtered {
            Some(f) => out.extend_from_slice(f.children(item)),
            None => out.extend(
                self.tax
                    .children(item)
                    .iter()
                    .copied()
                    .filter(|&c| self.is_retained(c)),
            ),
        }
    }

    /// Large siblings of `item`, plus substitute-group members when
    /// configured.
    fn sibling_options(&self, item: ItemId, out: &mut Vec<ItemId>) {
        out.clear();
        match self.filtered {
            Some(f) => out.extend(f.siblings(item)),
            None => out.extend(self.tax.siblings(item).filter(|&s| self.is_retained(s))),
        }
        if let Some(subs) = self.substitutes {
            for s in subs.substitutes_of(item) {
                if s != item && self.is_retained(s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
    }

    /// Generate all candidates seeded by the large k-itemsets into `set`.
    pub fn extend_from_level(&self, k: usize, set: &mut CandidateSet) -> Result<(), NegAssocError> {
        debug_assert!(k >= 2);
        let mut seeds: Vec<(&Itemset, u64)> = self.large.level(k).collect();
        // Deterministic order keeps stats and iteration reproducible.
        seeds.sort_by(|a, b| a.0.cmp(b.0));
        for (itemset, support) in seeds {
            // A seed whose members are not all retained can still be large;
            // its members ARE large by downward closure, so retention can
            // only fail for out-of-taxonomy items. Skip those seeds.
            if !itemset.items().iter().all(|&i| self.is_retained(i)) {
                continue;
            }
            set.stats.seeds += 1;
            self.extend_from_itemset(itemset, support, set)?;
        }
        Ok(())
    }

    /// Generate all candidates seeded by one large itemset.
    pub fn extend_from_itemset(
        &self,
        itemset: &Itemset,
        support: u64,
        set: &mut CandidateSet,
    ) -> Result<(), NegAssocError> {
        let k = itemset.len();
        debug_assert!(k >= 2, "negative candidates need seeds of size >= 2");
        let full_mask: u32 = (1 << k) - 1;
        let mut options: Vec<Vec<ItemId>> = Vec::with_capacity(k);
        for mask in 1..=full_mask {
            // Children substitutions: any nonempty mask (cases 1 & 2).
            if self.collect_options(itemset, mask, &mut options, OptionKind::Children) {
                let case = if mask == full_mask {
                    DerivationCase::AllChildren
                } else {
                    DerivationCase::SomeChildren
                };
                self.emit_products(itemset, support, mask, &options, case, set)?;
            }
            // Sibling substitutions: proper nonempty masks only (case 3).
            if mask != full_mask
                && self.collect_options(itemset, mask, &mut options, OptionKind::Siblings)
            {
                self.emit_products(
                    itemset,
                    support,
                    mask,
                    &options,
                    DerivationCase::Siblings,
                    set,
                )?;
            }
        }
        Ok(())
    }

    /// Fill `options[j]` for each masked position; `false` when some masked
    /// position has no option (no product exists).
    fn collect_options(
        &self,
        itemset: &Itemset,
        mask: u32,
        options: &mut Vec<Vec<ItemId>>,
        kind: OptionKind,
    ) -> bool {
        options.clear();
        for (pos, &member) in itemset.items().iter().enumerate() {
            if mask & (1 << pos) == 0 {
                continue;
            }
            let mut opts = Vec::new();
            match kind {
                OptionKind::Children => self.child_options(member, &mut opts),
                OptionKind::Siblings => self.sibling_options(member, &mut opts),
            }
            if opts.is_empty() {
                return false;
            }
            options.push(opts);
        }
        true
    }

    /// Emit every combination of the masked positions' options.
    #[allow(clippy::too_many_arguments)]
    fn emit_products(
        &self,
        itemset: &Itemset,
        support: u64,
        mask: u32,
        options: &[Vec<ItemId>],
        case: DerivationCase,
        set: &mut CandidateSet,
    ) -> Result<(), NegAssocError> {
        let masked_positions: Vec<usize> = (0..itemset.len())
            .filter(|&p| mask & (1 << p) != 0)
            .collect();
        debug_assert_eq!(masked_positions.len(), options.len());
        let mut choice = vec![0usize; options.len()];
        let mut items: Vec<ItemId> = Vec::with_capacity(itemset.len());
        let mut ratios: Vec<Ratio> = Vec::with_capacity(options.len());
        loop {
            // Assemble the candidate for the current choice vector.
            items.clear();
            items.extend_from_slice(itemset.items());
            ratios.clear();
            let mut valid = true;
            for (slot, (&pos, opts)) in masked_positions.iter().zip(options).enumerate() {
                let replacement = opts[choice[slot]];
                let member = itemset.items()[pos];
                items[pos] = replacement;
                // Supports of the replacement and the replaced member; both
                // are large items, so the lookups succeed.
                match (self.support_1(replacement), self.support_1(member)) {
                    (Some(new_support), Some(base_support)) => ratios.push(Ratio {
                        new_support,
                        base_support,
                    }),
                    _ => {
                        valid = false;
                        break;
                    }
                }
            }
            set.stats.generated += 1;
            if !valid {
                set.stats.rejected_small_item += 1;
            } else {
                self.admit(&items, itemset, support, &ratios, case, set)?;
            }
            // Advance the mixed-radix choice counter.
            let mut slot = options.len();
            loop {
                if slot == 0 {
                    return Ok(());
                }
                slot -= 1;
                choice[slot] += 1;
                if choice[slot] < options[slot].len() {
                    break;
                }
                choice[slot] = 0;
            }
        }
    }

    /// Validate one assembled candidate and insert it (max expectation).
    fn admit(
        &self,
        items: &[ItemId],
        seed: &Itemset,
        support: u64,
        ratios: &[Ratio],
        case: DerivationCase,
        set: &mut CandidateSet,
    ) -> Result<(), NegAssocError> {
        let candidate = Itemset::from_unsorted(items.to_vec());
        if candidate.len() != items.len() || self.ancestors.has_related_pair(candidate.items()) {
            set.stats.rejected_related += 1;
            return Ok(());
        }
        // Ratio bases are supports of large items (positive), so this only
        // errors on a genuine upstream bug — surfaced, not unwrapped.
        let expected = expected_support(support, ratios)?;
        if !crate::expected::approx_ge(expected, self.threshold) {
            set.stats.rejected_low_expected += 1;
            return Ok(());
        }
        if self.large.contains(&candidate) {
            set.stats.rejected_large += 1;
            return Ok(());
        }
        let derivation = || Derivation {
            seed: seed.clone(),
            seed_support: support,
            case,
        };
        match set.map.entry(candidate) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                set.stats.merged += 1;
                if expected > e.get().0 {
                    e.insert((expected, derivation()));
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((expected, derivation()));
            }
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum OptionKind {
    Children,
    Siblings,
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::TaxonomyBuilder;

    /// The paper's Figure 1 taxonomy:
    /// A -> {B, C}, C -> {D, E}; F -> {G, H, I}, G -> {J, K}.
    fn fig1() -> (Taxonomy, FxHashMap<&'static str, ItemId>) {
        let mut b = TaxonomyBuilder::new();
        let a = b.add_root("A");
        let bb = b.add_child(a, "B").unwrap();
        let c = b.add_child(a, "C").unwrap();
        let d = b.add_child(c, "D").unwrap();
        let e = b.add_child(c, "E").unwrap();
        let f = b.add_root("F");
        let g = b.add_child(f, "G").unwrap();
        let h = b.add_child(f, "H").unwrap();
        let i = b.add_child(f, "I").unwrap();
        let j = b.add_child(g, "J").unwrap();
        let kk = b.add_child(g, "K").unwrap();
        let tax = b.build();
        let names: FxHashMap<&'static str, ItemId> = [
            ("A", a),
            ("B", bb),
            ("C", c),
            ("D", d),
            ("E", e),
            ("F", f),
            ("G", g),
            ("H", h),
            ("I", i),
            ("J", j),
            ("K", kk),
        ]
        .into_iter()
        .collect();
        (tax, names)
    }

    /// Large itemsets for the Figure 1 discussion: {C, G} is large, every
    /// single item is large with round supports.
    fn fig1_large(names: &FxHashMap<&'static str, ItemId>) -> LargeItemsets {
        let mut l = LargeItemsets::new(10_000, 100);
        for (name, sup) in [
            ("A", 4000u64),
            ("B", 1500),
            ("C", 2500),
            ("D", 1200),
            ("E", 1300),
            ("F", 5000),
            ("G", 2000),
            ("H", 1600),
            ("I", 1400),
            ("J", 900),
            ("K", 1100),
        ] {
            l.insert(Itemset::singleton(names[name]), sup);
        }
        l.insert(Itemset::from_unsorted(vec![names["C"], names["G"]]), 800);
        l
    }

    fn candidates_of(
        tax: &Taxonomy,
        large: &LargeItemsets,
        min_ri: f64,
    ) -> (Vec<NegativeCandidate>, CandidateStats) {
        let gene = CandidateGenerator::new(tax, large, min_ri);
        let mut set = CandidateSet::new();
        gene.extend_from_level(2, &mut set).unwrap();
        set.into_candidates()
    }

    fn names_of(tax: &Taxonomy, c: &NegativeCandidate) -> Vec<String> {
        let mut v: Vec<String> = c
            .itemset
            .items()
            .iter()
            .map(|&i| tax.name(i).to_owned())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn fig1_cases_all_present() {
        let (tax, names) = fig1();
        let large = fig1_large(&names);
        // Tiny threshold admits every structurally valid candidate.
        let (cands, stats) = candidates_of(&tax, &large, 1e-9);
        let sets: Vec<Vec<String>> = cands.iter().map(|c| names_of(&tax, c)).collect();
        let has = |a: &str, b: &str| {
            let mut want = vec![a.to_string(), b.to_string()];
            want.sort();
            sets.contains(&want)
        };
        // Case 1 (children of both C and G): {D,J},{D,K},{E,J},{E,K}.
        assert!(has("D", "J") && has("D", "K") && has("E", "J") && has("E", "K"));
        // Case 2 (one side's children): {C,J},{C,K},{G,D},{G,E}.
        assert!(has("C", "J") && has("C", "K") && has("G", "D") && has("G", "E"));
        // Case 3 (siblings): {C,H},{C,I},{B,G}.
        assert!(has("C", "H") && has("C", "I") && has("B", "G"));
        // Excluded shapes: all-sibling {B,H}, ancestor {A,G}, child+sibling
        // mixes like {D,H}.
        assert!(!has("B", "H"));
        assert!(!has("A", "G"));
        assert!(!has("D", "H"));
        // Exactly the 11 candidates above.
        assert_eq!(cands.len(), 11);
        assert_eq!(stats.seeds, 1);
        assert_eq!(stats.unique, 11);
        assert_eq!(stats.rejected_small_item, 0);
    }

    #[test]
    fn fig1_expected_support_formulas() {
        let (tax, names) = fig1();
        let large = fig1_large(&names);
        let (cands, _) = candidates_of(&tax, &large, 1e-9);
        let expected_of = |a: &str, b: &str| {
            cands
                .iter()
                .find(|c| {
                    let mut want = vec![a.to_string(), b.to_string()];
                    want.sort();
                    names_of(&tax, c) == want
                })
                .map(|c| c.expected)
                .unwrap()
        };
        // Case 1: E[DJ] = sup(CG)·sup(D)/sup(C)·sup(J)/sup(G)
        //              = 800·(1200/2500)·(900/2000) = 172.8.
        assert!((expected_of("D", "J") - 172.8).abs() < 1e-9);
        // Case 2: E[CJ] = sup(CG)·sup(J)/sup(G) = 800·0.45 = 360.
        assert!((expected_of("C", "J") - 360.0).abs() < 1e-9);
        // Case 3: E[CH] = sup(CG)·sup(H)/sup(G) = 800·0.8 = 640.
        assert!((expected_of("C", "H") - 640.0).abs() < 1e-9);
        // Case 3 other side: E[BG] = 800·sup(B)/sup(C) = 800·0.6 = 480.
        assert!((expected_of("B", "G") - 480.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_prunes_low_expectation_candidates() {
        let (tax, names) = fig1();
        let large = fig1_large(&names);
        // minsup 100 · min_ri 4.0 -> threshold 400: keeps only E >= 400.
        let (cands, stats) = candidates_of(&tax, &large, 4.0);
        for c in &cands {
            assert!(c.expected >= 400.0);
        }
        assert!(stats.rejected_low_expected > 0);
        assert!(cands.len() < 11);
    }

    #[test]
    fn large_candidates_are_rejected() {
        let (tax, names) = fig1();
        let mut large = fig1_large(&names);
        // Make {C, H} itself large: it must disappear from the candidates.
        large.insert(Itemset::from_unsorted(vec![names["C"], names["H"]]), 700);
        let (cands, stats) = candidates_of(&tax, &large, 1e-9);
        let sets: Vec<Vec<String>> = cands.iter().map(|c| names_of(&tax, c)).collect();
        let mut ch = vec!["C".to_string(), "H".to_string()];
        ch.sort();
        assert!(!sets.contains(&ch));
        assert!(stats.rejected_large >= 1);
        // {C,H} large also seeds its own candidates (children of H? none;
        // siblings of C -> {B,H}? that's case 3 on seed {C,H}).
        assert!(stats.seeds == 2);
    }

    #[test]
    fn small_items_block_candidates_without_compression() {
        let (tax, names) = fig1();
        let mut large = LargeItemsets::new(10_000, 100);
        // Only C, G, J large among the relevant items; D, E, K, B, H, I small.
        for (name, sup) in [("C", 2500u64), ("G", 2000), ("J", 900)] {
            large.insert(Itemset::singleton(names[name]), sup);
        }
        large.insert(Itemset::from_unsorted(vec![names["C"], names["G"]]), 800);
        let (cands, _) = candidates_of(&tax, &large, 1e-9);
        // Only {C, J} survives: every other option involves a small item.
        assert_eq!(cands.len(), 1);
        assert_eq!(names_of(&tax, &cands[0]), vec!["C", "J"]);
    }

    #[test]
    fn compressed_and_uncompressed_generation_agree() {
        let (tax, names) = fig1();
        let mut large = fig1_large(&names);
        // Drop two items from large to make compression meaningful.
        let mut pruned = LargeItemsets::new(10_000, 100);
        for (set, sup) in large.iter() {
            let drop = set.contains(names["K"]) || set.contains(names["I"]);
            if !drop {
                pruned.insert(set.clone(), sup);
            }
        }
        large = pruned;

        let (mut a, _) = candidates_of(&tax, &large, 1e-9);

        let keep: negassoc_taxonomy::fxhash::FxHashSet<ItemId> = tax
            .items()
            .filter(|&i| large.support_of(&[i]).is_some())
            .collect();
        let filtered = FilteredTaxonomy::new(&tax, &keep);
        let gene = CandidateGenerator::with_compressed(&filtered, &large, 1e-9);
        let mut set = CandidateSet::new();
        gene.extend_from_level(2, &mut set).unwrap();
        let (mut b, stats_b) = set.into_candidates();
        assert_eq!(stats_b.rejected_small_item, 0);

        let key = |c: &NegativeCandidate| c.itemset.clone();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.itemset, y.itemset);
            assert!((x.expected - y.expected).abs() < 1e-9);
        }
    }

    #[test]
    fn dedup_keeps_max_expectation() {
        // Two seeds produce the same candidate with different expectations:
        // seed {C,G} yields {C,H} via case 3; seed {A,F} (parents) yields
        // {C,H} via case 1.
        let (tax, names) = fig1();
        let mut large = fig1_large(&names);
        large.insert(Itemset::from_unsorted(vec![names["A"], names["F"]]), 3000);
        let (cands, stats) = candidates_of(&tax, &large, 1e-9);
        let ch = cands
            .iter()
            .find(|c| names_of(&tax, c) == vec!["C".to_string(), "H".to_string()])
            .unwrap();
        // Via {C,G}: 800·sup(H)/sup(G) = 640.
        // Via {A,F}: 3000·(sup(C)/sup(A))·(sup(H)/sup(F))
        //          = 3000·0.625·0.32 = 600.
        // Max kept: 640.
        assert!((ch.expected - 640.0).abs() < 1e-9);
        assert!(stats.merged > 0);
    }

    #[test]
    fn sibling_replacement_colliding_with_member_is_rejected() {
        // Seed {G, H}: replacing H by its sibling G collides with the other
        // member -> candidate of reduced size must be rejected.
        let (tax, names) = fig1();
        let mut large = fig1_large(&names);
        large.insert(Itemset::from_unsorted(vec![names["G"], names["H"]]), 500);
        let (cands, stats) = candidates_of(&tax, &large, 1e-9);
        for c in &cands {
            assert_eq!(c.itemset.len(), 2);
        }
        assert!(stats.rejected_related > 0);
    }
}
