//! The **naive** negative-mining driver (paper §2.2.1).
//!
//! Iteration `k` has two phases: phase one mines the generalized large
//! k-itemsets (one database pass); phase two generates that level's
//! negative candidates and counts them (a second pass). Over `n` levels
//! this makes `2n` passes — the improved driver (see [`crate::improved`])
//! gets the same answer in `n + 1`.

use crate::candidates::{CandidateGenerator, CandidateSet, CandidateStats, NegativeItemset};
use crate::config::{GenAlgorithm, MinerConfig};
use crate::counting::confirm_negatives;
use crate::error::Error;
use negassoc_apriori::levelwise::{GenLevelMiner, GenStrategy};
use negassoc_apriori::parallel::{CancelToken, Obs, PassStats};
use negassoc_apriori::LargeItemsets;
use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::TransactionSource;
use std::time::{Duration, Instant};

/// Outcome of a driver run, before rule generation.
pub(crate) struct DriverOutcome {
    pub large: LargeItemsets,
    pub negatives: Vec<NegativeItemset>,
    pub candidate_stats: CandidateStats,
    /// Database passes made by this driver.
    pub passes: u64,
    /// Positive levels mined (the paper's `n`).
    pub levels: u64,
    /// Wall time spent mining positive (generalized large) itemsets.
    pub positive_time: Duration,
    /// Wall time spent generating and counting negative candidates.
    pub negative_time: Duration,
    /// Per-pass counting telemetry, in execution order with 1-based pass
    /// numbers. May be empty for paths that do not stream through the
    /// instrumented counter (EstMerge positive phase, checkpoint-resumed
    /// work already paid for).
    pub pass_stats: Vec<PassStats>,
}

/// Renumber `stats` 1..=n in place (drivers splice together stats from
/// sub-phases whose local numbering restarts).
pub(crate) fn renumber(stats: &mut [PassStats]) {
    for (i, s) in stats.iter_mut().enumerate() {
        s.pass = i as u64 + 1;
    }
}

/// Run the naive driver. `ctrl` (when given) is checked at every pass and
/// level boundary; a cancelled run errors without partial results. Every
/// counting pass reports to `obs`.
pub(crate) fn run_naive<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> Result<DriverOutcome, Error> {
    let strategy = match config.algorithm {
        GenAlgorithm::Basic => GenStrategy::Basic,
        GenAlgorithm::Cumulate => GenStrategy::Cumulate,
        GenAlgorithm::EstMerge(_) => {
            return Err(Error::Config(
                "EstMerge cannot drive the naive algorithm".into(),
            ))
        }
    };
    let positive_start = Instant::now();
    let mut miner = GenLevelMiner::new_observed(
        source,
        tax,
        config.min_support,
        strategy,
        config.backend,
        config.parallelism,
        ctrl,
        obs.clone(),
    )?;
    let mut positive_time = positive_start.elapsed();
    let mut pass_stats: Vec<PassStats> = miner.take_pass_stats();
    let mut negative_time = Duration::ZERO;
    let mut passes = 1u64; // level-1 pass
    let mut levels = 1u64;
    let mut negatives = Vec::new();
    let mut candidate_stats = CandidateStats::default();
    let max_size = config.max_negative_size.unwrap_or(usize::MAX);

    loop {
        let level = miner.next_level();
        let positive_start = Instant::now();
        let found = miner.mine_next_level()?;
        positive_time += positive_start.elapsed();
        pass_stats.extend(miner.take_pass_stats());
        let found = match found {
            // No pass is made when no positive candidates exist.
            None => break,
            Some(found) => {
                passes += 1;
                found
            }
        };
        if found == 0 {
            break;
        }
        levels += 1;
        if level > max_size {
            continue;
        }
        // Phase two: this level's negative candidates, then one counting
        // pass. The naive algorithm does not compress the taxonomy; the
        // generator filters small 1-items per candidate instead.
        let negative_start = Instant::now();
        let generator = CandidateGenerator::new(tax, miner.large(), config.min_ri);
        let mut set = CandidateSet::new();
        generator.extend_from_level(level, &mut set)?;
        let (cands, stats) = set.into_candidates();
        merge_stats(&mut candidate_stats, &stats);
        let (mut negs, neg_passes, neg_stats) = confirm_negatives(
            source,
            miner.ancestors(),
            cands,
            config.backend,
            config.max_candidates_per_pass,
            miner.large().min_support_count(),
            config.min_ri,
            config.parallelism,
            ctrl,
            obs,
        )?;
        passes += neg_passes;
        pass_stats.extend(neg_stats);
        negatives.append(&mut negs);
        negative_time += negative_start.elapsed();
    }

    renumber(&mut pass_stats);
    Ok(DriverOutcome {
        large: miner.large().clone(),
        negatives,
        candidate_stats,
        passes,
        levels,
        positive_time,
        negative_time,
        pass_stats,
    })
}

pub(crate) fn merge_stats(into: &mut CandidateStats, from: &CandidateStats) {
    into.seeds += from.seeds;
    into.generated += from.generated;
    into.rejected_related += from.rejected_related;
    into.rejected_small_item += from.rejected_small_item;
    into.rejected_low_expected += from.rejected_low_expected;
    into.rejected_large += from.rejected_large;
    into.merged += from.merged;
    into.unique += from.unique;
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    /// Two categories with two children each; one cross pair is common,
    /// the "parallel" pair almost never happens.
    fn scenario() -> (Taxonomy, negassoc_txdb::TransactionDb) {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("drinks");
        let coke = tb.add_child(drinks, "coke").unwrap();
        let pepsi = tb.add_child(drinks, "pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let chips = tb.add_child(snacks, "chips").unwrap();
        let nuts = tb.add_child(snacks, "nuts").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for _ in 0..30 {
            db.add([coke, chips]);
        }
        for _ in 0..20 {
            db.add([pepsi, nuts]);
        }
        for _ in 0..10 {
            db.add([pepsi]);
        }
        for _ in 0..10 {
            db.add([nuts]);
        }
        (tax, db.build())
    }

    #[test]
    fn finds_negative_itemsets_and_counts_2n_passes() {
        let (tax, db) = scenario();
        let pc = PassCounter::new(db);
        let config = MinerConfig {
            min_support: MinSupport::Fraction(0.15),
            min_ri: 0.3,
            driver: crate::config::Driver::Naive,
            ..MinerConfig::default()
        };
        let out = run_naive(&pc, &tax, &config, None, &Obs::disabled()).unwrap();

        // Levels: 1-itemsets and 2-itemsets are large; no level-3 positive
        // candidates survive apriori-gen, so no third positive pass.
        assert_eq!(out.levels, 2);
        assert_eq!(out.passes, pc.passes());
        // 2n shape: item pass + (positive pass + negative pass) for level 2.
        assert_eq!(out.passes, 3);
        // Telemetry mirrors the pass ledger exactly: L1, L2, negative.
        assert_eq!(out.pass_stats.len(), 3);
        let labels: Vec<&str> = out.pass_stats.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["L1", "L2", "negative"]);
        for (i, s) in out.pass_stats.iter().enumerate() {
            assert_eq!(s.pass, i as u64 + 1);
            assert_eq!(s.transactions, 70);
            assert_eq!(s.threads, 1);
        }

        // {pepsi, chips} (or {coke, nuts}) should be negative: expectation
        // from {drinks, snacks} or sibling substitution is high, actual 0.
        assert!(!out.negatives.is_empty());
        for n in &out.negatives {
            assert!(n.expected - n.actual as f64 >= 0.0);
        }
        assert!(out.candidate_stats.generated > 0);
        assert!(out.candidate_stats.unique > 0);
    }

    #[test]
    fn est_merge_is_rejected() {
        let (tax, db) = scenario();
        let config = MinerConfig {
            algorithm: GenAlgorithm::EstMerge(Default::default()),
            ..MinerConfig::default()
        };
        assert!(matches!(
            run_naive(&db, &tax, &config, None, &Obs::disabled()),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn max_negative_size_skips_larger_levels() {
        let (tax, db) = scenario();
        let config = MinerConfig {
            min_support: MinSupport::Fraction(0.15),
            min_ri: 0.3,
            max_negative_size: Some(2),
            ..MinerConfig::default()
        };
        let out = run_naive(&db, &tax, &config, None, &Obs::disabled()).unwrap();
        for n in &out.negatives {
            assert!(n.itemset.len() <= 2);
        }
    }

    #[test]
    fn empty_database() {
        let (tax, _) = scenario();
        let db = TransactionDbBuilder::new().build();
        let out = run_naive(&db, &tax, &MinerConfig::default(), None, &Obs::disabled()).unwrap();
        assert_eq!(out.large.total(), 0);
        assert!(out.negatives.is_empty());
        assert_eq!(out.passes, 1);
    }
}
