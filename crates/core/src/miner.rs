//! The [`NegativeMiner`] facade: configuration in, positive itemsets +
//! negative itemsets + negative rules + a run report out.

use crate::candidates::{CandidateStats, NegativeItemset};
use crate::checkpoint::{CheckpointManager, Resume};
use crate::config::{Driver, MinerConfig};
use crate::ctrl::{cancellation_reason, CancelToken, Completeness, RunControl};
use crate::error::Error;
use crate::improved::run_improved_with_checkpoints;
use crate::naive::run_naive;
use crate::rules::{generate_negative_rules, NegativeRule};
use crate::substitutes::SubstituteKnowledge;
use negassoc_apriori::parallel::{Obs, PassStats};
use negassoc_apriori::LargeItemsets;
use negassoc_taxonomy::Taxonomy;
use negassoc_txdb::obs::Event;
use negassoc_txdb::TransactionSource;
use std::path::Path;
use std::time::{Duration, Instant};

/// Everything a mining run produces.
#[derive(Debug)]
pub struct MiningOutcome {
    /// The generalized large itemsets (step 1 of the pipeline).
    pub large: LargeItemsets,
    /// Confirmed negative itemsets (expected − actual ≥ MinSup · MinRI).
    pub negatives: Vec<NegativeItemset>,
    /// Negative association rules with RI ≥ MinRI.
    pub rules: Vec<NegativeRule>,
    /// Run accounting.
    pub report: MiningReport,
}

/// Accounting for one mining run.
#[derive(Clone, Debug, Default)]
pub struct MiningReport {
    /// Database passes made in total.
    pub passes: u64,
    /// Positive levels mined (the paper's `n`).
    pub levels: u64,
    /// Number of generalized large itemsets.
    pub large_itemsets: usize,
    /// Candidate-generation counters.
    pub candidates: CandidateStats,
    /// Confirmed negative itemsets.
    pub negative_itemsets: usize,
    /// Emitted rules.
    pub rules: usize,
    /// Wall time of positive mining + candidate generation + counting.
    pub mining_time: Duration,
    /// Wall time of the positive (generalized large itemset) phase alone.
    pub positive_time: Duration,
    /// Wall time of negative candidate generation + counting alone.
    pub negative_time: Duration,
    /// Wall time of rule generation.
    pub rule_time: Duration,
    /// Per-pass counting telemetry in execution order (candidates counted,
    /// transactions scanned, worker threads used, wall time). Empty for
    /// phases that do not decompose into per-level passes (EstMerge
    /// positive mining, the partition fallback) and for passes a resumed
    /// run skipped thanks to a checkpoint.
    pub pass_stats: Vec<PassStats>,
    /// Degraded-coverage marker: `Some(Completeness::Degraded { .. })`
    /// when the source quarantined shards (the answer is exact over the
    /// delivered transactions only), `None` for full-coverage runs.
    pub completeness: Option<Completeness>,
}

impl std::fmt::Display for MiningReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "passes: {} ({} positive levels)",
            self.passes, self.levels
        )?;
        writeln!(f, "large itemsets: {}", self.large_itemsets)?;
        writeln!(
            f,
            "negative candidates: {} unique of {} generated \
             (rejected: {} related, {} low-E, {} already-large; {} merged)",
            self.candidates.unique,
            self.candidates.generated,
            self.candidates.rejected_related,
            self.candidates.rejected_low_expected,
            self.candidates.rejected_large,
            self.candidates.merged
        )?;
        writeln!(
            f,
            "negative itemsets: {}   rules: {}",
            self.negative_itemsets, self.rules
        )?;
        write!(
            f,
            "time: {:?} total ({:?} positive, {:?} negative, {:?} rules)",
            self.mining_time + self.rule_time,
            self.positive_time,
            self.negative_time,
            self.rule_time
        )?;
        if let Some(c) = &self.completeness {
            write!(f, "\ncompleteness: {c}")?;
        }
        Ok(())
    }
}

/// The negative association rule miner (see crate docs for the algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct NegativeMiner {
    config: MinerConfig,
}

impl NegativeMiner {
    /// A miner with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Mine `source` with taxonomy `tax`.
    pub fn mine<S: TransactionSource + ?Sized>(
        &self,
        source: &S,
        tax: &Taxonomy,
    ) -> Result<MiningOutcome, Error> {
        self.mine_with_substitutes(source, tax, None)
    }

    /// Mine with additional substitute-item knowledge (§4.1 extension).
    /// Only the improved driver consults it.
    pub fn mine_with_substitutes<S: TransactionSource + ?Sized>(
        &self,
        source: &S,
        tax: &Taxonomy,
        substitutes: Option<&SubstituteKnowledge>,
    ) -> Result<MiningOutcome, Error> {
        self.mine_inner(source, tax, substitutes, None, None, &Obs::disabled())
    }

    /// Mine with checkpoint/resume: after every completed database pass
    /// the run's state is persisted (checksummed) under `checkpoint_dir`,
    /// and a previous interrupted run with the same configuration,
    /// taxonomy and database resumes from its last completed pass instead
    /// of starting over. On success the directory's checkpoint files are
    /// removed.
    ///
    /// Damaged or parameter-mismatched checkpoint files are never trusted:
    /// the run silently falls back to an older checkpoint or a fresh
    /// start. Requires the improved driver; with EstMerge only the
    /// negative phase (candidates awaiting their counting pass) is
    /// checkpointed, because EstMerge has no per-level stepping.
    pub fn mine_with_recovery<S: TransactionSource + ?Sized>(
        &self,
        source: &S,
        tax: &Taxonomy,
        substitutes: Option<&SubstituteKnowledge>,
        checkpoint_dir: &Path,
    ) -> Result<MiningOutcome, Error> {
        self.config.validate()?;
        if self.config.driver != Driver::Improved {
            return Err(Error::Config(
                "checkpoint/resume requires the improved driver \
                 (the naive driver interleaves phases per level)"
                    .into(),
            ));
        }
        let manager = CheckpointManager::new(checkpoint_dir, &self.config, tax, source.len_hint())?
            .with_source_digest(source.content_digest());
        let outcome = self.mine_inner(
            source,
            tax,
            substitutes,
            Some(&manager),
            None,
            &Obs::disabled(),
        )?;
        manager.clear()?;
        Ok(outcome)
    }

    /// Mine under a [`RunControl`]: the run stops cooperatively — at the
    /// next pass, level, or block boundary — when the control's token is
    /// cancelled by a user interrupt, an expired deadline, or the stall
    /// watchdog, and returns [`Error::Cancelled`] carrying the reason, the
    /// checkpoint directory (when one survives) and an explicit
    /// [`Completeness`] status. No partial counts escape a cancelled run.
    ///
    /// With `checkpoint_dir` set this behaves like
    /// [`Self::mine_with_recovery`] (improved driver required): every
    /// completed pass is durably checkpointed, so a cancelled run can be
    /// resumed — by calling this again or `mine_with_recovery` with the
    /// same directory — to byte-identical output. Without a directory,
    /// cancellation simply abandons the run
    /// ([`Completeness::NoCheckpoint`]).
    pub fn mine_with_controls<S: TransactionSource + ?Sized>(
        &self,
        source: &S,
        tax: &Taxonomy,
        substitutes: Option<&SubstituteKnowledge>,
        checkpoint_dir: Option<&Path>,
        ctrl: &RunControl,
    ) -> Result<MiningOutcome, Error> {
        self.config.validate()?;
        let manager = match checkpoint_dir {
            Some(dir) => {
                if self.config.driver != Driver::Improved {
                    return Err(Error::Config(
                        "checkpoint/resume requires the improved driver \
                         (the naive driver interleaves phases per level)"
                            .into(),
                    ));
                }
                Some(
                    CheckpointManager::new(dir, &self.config, tax, source.len_hint())?
                        .with_source_digest(source.content_digest())
                        .with_obs(ctrl.obs().clone()),
                )
            }
            None => None,
        };
        // Keep the guard alive for the whole run; dropping it joins the
        // monitor thread.
        let _watchdog = ctrl.arm();
        let obs = ctrl.obs();
        // Pre-flight: a token already tripped (an expired deadline, a
        // Ctrl-C during argument parsing) must cancel before the first
        // pass ever touches the source.
        if let Err(e) = ctrl.token().check() {
            let err = decorate_cancellation(Error::Io(e), manager.as_ref(), obs);
            obs.flush();
            return Err(err);
        }
        let started = Instant::now();
        match self.mine_inner(
            source,
            tax,
            substitutes,
            manager.as_ref(),
            Some(ctrl.token()),
            obs,
        ) {
            Ok(outcome) => {
                if let Some(m) = &manager {
                    m.clear()?;
                }
                obs.emit(|| Event::RunEnd {
                    passes: outcome.report.passes,
                    wall: started.elapsed(),
                });
                obs.flush();
                Ok(outcome)
            }
            Err(err) => {
                let err = decorate_cancellation(err, manager.as_ref(), obs);
                obs.flush();
                Err(err)
            }
        }
    }

    fn mine_inner<S: TransactionSource + ?Sized>(
        &self,
        source: &S,
        tax: &Taxonomy,
        substitutes: Option<&SubstituteKnowledge>,
        checkpoints: Option<&CheckpointManager>,
        ctrl: Option<&CancelToken>,
        obs: &Obs,
    ) -> Result<MiningOutcome, Error> {
        self.config.validate()?;
        let start = Instant::now();
        let outcome = match self.config.driver {
            Driver::Naive => run_naive(source, tax, &self.config, ctrl, obs)?,
            Driver::Improved => run_improved_with_checkpoints(
                source,
                tax,
                &self.config,
                substitutes,
                checkpoints,
                ctrl,
                obs,
            )?,
        };
        let mining_time = start.elapsed();

        let rule_start = Instant::now();
        let rules =
            generate_negative_rules(&outcome.negatives, &outcome.large, self.config.min_ri)?;
        let rule_time = rule_start.elapsed();

        let quarantined = source.quarantined_shards();
        let report = MiningReport {
            passes: outcome.passes,
            levels: outcome.levels,
            large_itemsets: outcome.large.total(),
            candidates: outcome.candidate_stats,
            negative_itemsets: outcome.negatives.len(),
            rules: rules.len(),
            mining_time,
            positive_time: outcome.positive_time,
            negative_time: outcome.negative_time,
            rule_time,
            pass_stats: outcome.pass_stats,
            completeness: if quarantined.is_empty() {
                None
            } else {
                Some(Completeness::Degraded {
                    quarantined_shards: quarantined,
                })
            },
        };
        Ok(MiningOutcome {
            large: outcome.large,
            negatives: outcome.negatives,
            rules,
            report,
        })
    }
}

/// Turn a cancellation riding the error chain into the typed
/// [`Error::Cancelled`], attaching whatever durable state the checkpoint
/// manager can vouch for, and record the cancellation with `obs`.
/// Non-cancellation errors pass through untouched.
fn decorate_cancellation(err: Error, manager: Option<&CheckpointManager>, obs: &Obs) -> Error {
    let Some(reason) = cancellation_reason(&err) else {
        return err;
    };
    obs.emit(|| Event::Cancelled {
        reason: reason.to_string(),
    });
    let (checkpoint, completeness) = match manager {
        None => (None, Completeness::NoCheckpoint),
        Some(m) => match m.load_latest() {
            Resume::Fresh => (None, Completeness::NoCheckpoint),
            Resume::Positive(p) => (
                Some(m.dir().to_path_buf()),
                Completeness::PositivePartial {
                    next_level: p.state.next_k,
                    passes: p.passes,
                },
            ),
            Resume::Negative(n) => (
                Some(m.dir().to_path_buf()),
                Completeness::NegativePending {
                    candidates: n.candidates.len(),
                },
            ),
        },
    };
    Error::Cancelled {
        reason,
        checkpoint,
        completeness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenAlgorithm;
    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::{ItemId, TaxonomyBuilder};
    use negassoc_txdb::TransactionDbBuilder;

    fn scenario() -> (Taxonomy, negassoc_txdb::TransactionDb, [ItemId; 4]) {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("drinks");
        let coke = tb.add_child(drinks, "coke").unwrap();
        let pepsi = tb.add_child(drinks, "pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let chips = tb.add_child(snacks, "chips").unwrap();
        let nuts = tb.add_child(snacks, "nuts").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for _ in 0..30 {
            db.add([coke, chips]);
        }
        for _ in 0..20 {
            db.add([pepsi, nuts]);
        }
        for _ in 0..20 {
            db.add([pepsi]);
        }
        (tax, db.build(), [coke, pepsi, chips, nuts])
    }

    #[test]
    fn end_to_end_produces_rules_and_report() {
        let (tax, db, [_coke, pepsi, chips, _nuts]) = scenario();
        let miner = NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.2),
            min_ri: 0.25,
            ..MinerConfig::default()
        });
        let out = miner.mine(&db, &tax).unwrap();
        assert!(out.large.total() > 0);
        assert_eq!(out.report.large_itemsets, out.large.total());
        assert_eq!(out.report.negative_itemsets, out.negatives.len());
        assert_eq!(out.report.rules, out.rules.len());
        assert!(out.report.passes > 0);
        // {pepsi, chips} never co-occur but both sides are popular.
        assert!(out.rules.iter().any(|r| (r.antecedent.contains(pepsi)
            && r.consequent.contains(chips))
            || (r.antecedent.contains(chips) && r.consequent.contains(pepsi))));
        // Every rule clears the configured threshold.
        for r in &out.rules {
            assert!(r.ri >= 0.25);
        }
    }

    #[test]
    fn invalid_config_is_rejected_before_any_pass() {
        let (tax, db, _) = scenario();
        let miner = NegativeMiner::new(MinerConfig {
            min_ri: -0.5,
            ..MinerConfig::default()
        });
        assert!(matches!(miner.mine(&db, &tax), Err(Error::Config(_))));
    }

    #[test]
    fn drivers_agree_end_to_end() {
        let (tax, db, _) = scenario();
        let mk = |driver| {
            NegativeMiner::new(MinerConfig {
                min_support: MinSupport::Fraction(0.2),
                min_ri: 0.25,
                driver,
                algorithm: GenAlgorithm::Cumulate,
                ..MinerConfig::default()
            })
            .mine(&db, &tax)
            .unwrap()
        };
        let a = mk(Driver::Improved);
        let b = mk(Driver::Naive);
        assert_eq!(a.negatives.len(), b.negatives.len());
        assert_eq!(a.rules.len(), b.rules.len());
    }

    #[test]
    fn recovery_after_interruption_matches_uninterrupted_run() {
        use negassoc_txdb::fault::{FaultPlan, FaultySource, SourceFault, SourceFaultKind};

        let (tax, db, _) = scenario();
        let miner = NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.2),
            min_ri: 0.25,
            ..MinerConfig::default()
        });
        let clean = miner.mine(&db, &tax).unwrap();

        let dir =
            std::env::temp_dir().join(format!("negassoc-miner-recovery-{}", std::process::id()));
        // "Kill" the run during its second pass with a permanent fault.
        let faulty = FaultySource::new(
            &db,
            FaultPlan::new(vec![SourceFault {
                pass: 1,
                at_transaction: 5,
                kind: SourceFaultKind::PermanentError,
            }]),
        );
        let interrupted = miner.mine_with_recovery(&faulty, &tax, None, &dir);
        assert!(interrupted.is_err());
        // The level-1 checkpoint survived the crash.
        assert!(dir.join("pass-0002.nack").exists());

        // Restart against the healthy database: resumes, finishes, and
        // agrees with the uninterrupted run in full.
        let resumed = miner.mine_with_recovery(&db, &tax, None, &dir).unwrap();
        let norm_rules = |out: &MiningOutcome| {
            let mut v: Vec<(
                Vec<negassoc_taxonomy::ItemId>,
                Vec<negassoc_taxonomy::ItemId>,
                u64,
            )> = out
                .rules
                .iter()
                .map(|r| {
                    (
                        r.antecedent.items().to_vec(),
                        r.consequent.items().to_vec(),
                        r.ri.to_bits(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm_rules(&resumed), norm_rules(&clean));
        assert_eq!(resumed.large.total(), clean.large.total());
        assert_eq!(resumed.negatives.len(), clean.negatives.len());
        // Success cleared the checkpoint files.
        assert!(!dir.join("pass-0002.nack").exists());
        assert!(!dir.join("negative.nack").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rejects_the_naive_driver() {
        let (tax, db, _) = scenario();
        let miner = NegativeMiner::new(MinerConfig {
            driver: crate::config::Driver::Naive,
            ..MinerConfig::default()
        });
        let dir =
            std::env::temp_dir().join(format!("negassoc-miner-naive-ckpt-{}", std::process::id()));
        assert!(matches!(
            miner.mine_with_recovery(&db, &tax, None, &dir),
            Err(Error::Config(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_miner_is_constructible() {
        let m = NegativeMiner::default();
        assert!(m.config().validate().is_ok());
    }

    #[test]
    fn report_renders_every_headline_number() {
        let (tax, db, _) = scenario();
        let out = NegativeMiner::new(MinerConfig {
            min_support: MinSupport::Fraction(0.2),
            min_ri: 0.25,
            ..MinerConfig::default()
        })
        .mine(&db, &tax)
        .unwrap();
        let shown = out.report.to_string();
        assert!(shown.contains(&format!("passes: {}", out.report.passes)));
        assert!(shown.contains(&format!("large itemsets: {}", out.report.large_itemsets)));
        assert!(shown.contains(&format!("rules: {}", out.report.rules)));
        assert!(shown.contains("time:"));
    }
}
