//! Negative-rule generation — the paper's Figure 4, an extension of
//! `ap-genrules`.
//!
//! From every negative itemset `n` (with expected support `E` and actual
//! support `s`) and every partition `n = a ∪ h` into a large antecedent `a`
//! and large consequent `h`, emit `a ≠> h` when
//!
//! ```text
//! RI = (E − s) / sup(a)  ≥  MinRI.
//! ```
//!
//! Pruning (both monotone):
//!
//! * a consequent that is not large is deleted before extension — none of
//!   its supersets can be large;
//! * a consequent whose rule fails the RI test is deleted before extension
//!   — a larger consequent means a smaller antecedent, whose support can
//!   only be *higher*, so RI can only fall.

use crate::candidates::{Derivation, NegativeItemset};
use crate::error::NegAssocError;
use crate::expected::{approx_ge, rule_interest};
use negassoc_apriori::gen::apriori_gen;
use negassoc_apriori::{Itemset, LargeItemsets};
use std::fmt;

/// A negative association rule `antecedent ≠> consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct NegativeRule {
    /// Left-hand side; large, nonempty.
    pub antecedent: Itemset,
    /// Right-hand side; large, nonempty, disjoint from the antecedent.
    pub consequent: Itemset,
    /// Expected support of `antecedent ∪ consequent`.
    pub expected: f64,
    /// Actual support of `antecedent ∪ consequent`.
    pub actual: u64,
    /// Rule interest `(expected − actual) / sup(antecedent)`.
    pub ri: f64,
    /// Provenance of the expectation: which large itemset and substitution
    /// case induced it (inherited from the negative itemset).
    pub derivation: Option<Derivation>,
}

impl NegativeRule {
    /// Convenience: `true` when `item` occurs in the antecedent.
    pub fn antecedent_contains(&self, item: negassoc_taxonomy::ItemId) -> bool {
        self.antecedent.contains(item)
    }
}

impl fmt::Display for NegativeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} =/=> {:?} (E {:.1}, actual {}, RI {:.3})",
            self.antecedent, self.consequent, self.expected, self.actual, self.ri
        )
    }
}

/// Generate all negative rules with interest at least `min_ri` from the
/// confirmed negative itemsets.
pub fn generate_negative_rules(
    negatives: &[NegativeItemset],
    large: &LargeItemsets,
    min_ri: f64,
) -> Result<Vec<NegativeRule>, NegAssocError> {
    let mut out = Vec::new();
    for n in negatives {
        if n.itemset.len() < 2 {
            continue;
        }
        // H1: single-item consequents that produce a rule.
        let mut h1 = Vec::new();
        for &i in n.itemset.items() {
            let h = Itemset::singleton(i);
            if try_emit(n, large, &h, min_ri, &mut out)? {
                h1.push(h);
            }
        }
        grow(n, large, h1, min_ri, &mut out)?;
    }
    Ok(out)
}

/// Emit `(n − h) ≠> h` when all constraints pass; returns whether it did.
fn try_emit(
    n: &NegativeItemset,
    large: &LargeItemsets,
    consequent: &Itemset,
    min_ri: f64,
    out: &mut Vec<NegativeRule>,
) -> Result<bool, NegAssocError> {
    // Consequent must be large.
    let Some(_) = large.support_of_set(consequent) else {
        return Ok(false);
    };
    let antecedent = n.itemset.minus(consequent);
    if antecedent.is_empty() {
        return Ok(false);
    }
    // Antecedent must be large too.
    let Some(asup) = large.support_of_set(&antecedent) else {
        return Ok(false);
    };
    // `asup` is a large-item support, so a zero here means the large-itemset
    // store is corrupt; surface it instead of unwrapping.
    let ri = rule_interest(n.expected, n.actual, asup)?;
    if approx_ge(ri, min_ri) {
        out.push(NegativeRule {
            antecedent,
            consequent: consequent.clone(),
            expected: n.expected,
            actual: n.actual,
            ri,
            derivation: n.derivation.clone(),
        });
        Ok(true)
    } else {
        Ok(false)
    }
}

/// Extend surviving consequents with `apriori-gen`.
fn grow(
    n: &NegativeItemset,
    large: &LargeItemsets,
    h_m: Vec<Itemset>,
    min_ri: f64,
    out: &mut Vec<NegativeRule>,
) -> Result<(), NegAssocError> {
    if h_m.is_empty() || h_m[0].len() + 1 >= n.itemset.len() {
        return Ok(());
    }
    let mut next = Vec::new();
    for h in apriori_gen(&h_m) {
        if try_emit(n, large, &h, min_ri, out)? {
            next.push(h);
        }
    }
    grow(n, large, next, min_ri, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::ItemId;

    fn set(v: &[u32]) -> Itemset {
        Itemset::from_unsorted(v.iter().map(|&i| ItemId(i)).collect())
    }

    fn neg(items: &[u32], expected: f64, actual: u64) -> NegativeItemset {
        NegativeItemset {
            itemset: set(items),
            expected,
            actual,
            derivation: None,
        }
    }

    /// Supports mirroring the paper's worked example (DESIGN.md corrected
    /// values): Bryers=1 (20000), Perrier=2 (8000).
    fn example_large() -> LargeItemsets {
        let mut l = LargeItemsets::new(100_000, 4000);
        l.insert(set(&[1]), 20_000); // Bryers
        l.insert(set(&[2]), 8_000); // Perrier
        l
    }

    #[test]
    fn paper_rule_direction() {
        // Negative itemset {Bryers, Perrier}: E 4000, actual 500.
        let negatives = vec![neg(&[1, 2], 4000.0, 500)];
        let large = example_large();
        // RI(Perrier => not Bryers) = 3500/8000 = 0.4375;
        // RI(Bryers => not Perrier) = 3500/20000 = 0.175.
        let rules = generate_negative_rules(&negatives, &large, 0.4).unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.antecedent, set(&[2]));
        assert_eq!(r.consequent, set(&[1]));
        assert!((r.ri - 0.4375).abs() < 1e-12);
        assert_eq!(r.actual, 500);
        assert!(r.antecedent_contains(ItemId(2)));
        assert!(!r.antecedent_contains(ItemId(1)));
        assert!(r.to_string().contains("=/=>"));
    }

    #[test]
    fn high_threshold_kills_both_directions() {
        let negatives = vec![neg(&[1, 2], 4000.0, 500)];
        let rules = generate_negative_rules(&negatives, &example_large(), 0.5).unwrap();
        assert!(rules.is_empty());
    }

    #[test]
    fn non_large_antecedent_blocks_rule() {
        // {3} never inserted as large.
        let negatives = vec![neg(&[1, 3], 4000.0, 0)];
        let rules = generate_negative_rules(&negatives, &example_large(), 0.0).unwrap();
        // Antecedent {3} not large -> only the direction with antecedent
        // {1} could fire, but consequent {3} is not large either.
        assert!(rules.is_empty());
    }

    #[test]
    fn triples_grow_multi_item_consequents() {
        let mut large = LargeItemsets::new(10_000, 100);
        for i in [1u32, 2, 3] {
            large.insert(set(&[i]), 1000);
        }
        for pair in [[1u32, 2], [1, 3], [2, 3]] {
            large.insert(set(&pair), 400);
        }
        // Negative triple with huge deviation: everything passes at low RI.
        let negatives = vec![neg(&[1, 2, 3], 900.0, 0)];
        let rules = generate_negative_rules(&negatives, &large, 0.1).unwrap();
        // 3 single-consequent + 3 double-consequent rules.
        assert_eq!(rules.len(), 6);
        let doubles: Vec<&NegativeRule> =
            rules.iter().filter(|r| r.consequent.len() == 2).collect();
        assert_eq!(doubles.len(), 3);
        for r in &rules {
            // RI uses the antecedent's support.
            let asup = large.support_of_set(&r.antecedent).unwrap();
            assert!((r.ri - 900.0 / asup as f64).abs() < 1e-12);
            assert!(r.antecedent.minus(&r.consequent) == r.antecedent);
        }
    }

    #[test]
    fn monotone_pruning_of_consequents() {
        // Same triple, but RI threshold passes only for pair antecedents
        // (sup 400 -> RI = 900/400 = 2.25) and fails for single antecedents
        // (sup 1000 -> RI = 0.9). With min_ri = 1.0, only single-item
        // consequents (pair antecedents) fire, and growth stops because
        // every single-consequent... actually all 3 singles fire.
        let mut large = LargeItemsets::new(10_000, 100);
        for i in [1u32, 2, 3] {
            large.insert(set(&[i]), 1000);
        }
        for pair in [[1u32, 2], [1, 3], [2, 3]] {
            large.insert(set(&pair), 400);
        }
        let negatives = vec![neg(&[1, 2, 3], 900.0, 0)];
        let rules = generate_negative_rules(&negatives, &large, 1.0).unwrap();
        assert_eq!(rules.len(), 3);
        assert!(rules.iter().all(|r| r.consequent.len() == 1));
    }

    #[test]
    fn missing_large_pair_blocks_that_branch_only() {
        // {2,3} not large: the rule {2,3} =/=> {1} cannot fire (antecedent
        // not large) and consequents {2,3} cannot fire either.
        let mut large = LargeItemsets::new(10_000, 100);
        for i in [1u32, 2, 3] {
            large.insert(set(&[i]), 1000);
        }
        large.insert(set(&[1, 2]), 400);
        large.insert(set(&[1, 3]), 400);
        let negatives = vec![neg(&[1, 2, 3], 900.0, 0)];
        let rules = generate_negative_rules(&negatives, &large, 0.1).unwrap();
        for r in &rules {
            assert_ne!(r.antecedent, set(&[2, 3]));
            assert_ne!(r.consequent, set(&[2, 3]));
        }
        // Singles with large antecedents: consequent {2} (ante {1,3}),
        // consequent {3} (ante {1,2}); consequent {1} blocked.
        // Doubles: consequent {1,2} (ante {3})? apriori_gen needs both
        // {1},{2} in H1 -> {1} failed, so H1 = [{2},{3}] -> gen {2,3},
        // which is not large -> blocked.
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn undersized_negative_itemsets_are_skipped() {
        let negatives = vec![neg(&[1], 500.0, 0)];
        assert!(generate_negative_rules(&negatives, &example_large(), 0.0)
            .unwrap()
            .is_empty());
    }
}
